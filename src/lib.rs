//! # climate-adaptive
//!
//! Facade crate for the reproduction of *"An Adaptive Framework for
//! Simulation and Online Remote Visualization of Critical Climate
//! Applications in Resource-constrained Environments"* (SC 2010).
//!
//! The workspace implements the full coupled system from scratch:
//!
//! - [`wrf`] — a reduced mesoscale dynamical core (shallow-water equations
//!   with moving nests) standing in for WRF,
//! - [`resources`] — disk / network / cluster substrate models,
//! - [`lp`] — a simplex linear-programming solver standing in for GLPK,
//! - [`perfmodel`] — scaling-model curve fitting standing in for LAB Fit,
//! - [`ncdf`] — a NetCDF-like self-describing output format,
//! - [`viz`] — a software visualization engine standing in for VisIt,
//! - [`cyclone`] — the cyclone-Aila tracking scenario,
//! - [`adaptive`] — the adaptive framework itself: application manager,
//!   greedy-threshold and LP-optimization decision algorithms, job handler,
//!   frame transport, and the closed-loop orchestrator.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use climate_adaptive::prelude::*;
//!
//! // Run a scaled-down inter-department experiment with the optimization
//! // decision algorithm and inspect the outcome.
//! let site = Site::inter_department();
//! let mission = Mission::aila().with_duration_hours(6.0);
//! let outcome = Orchestrator::new(site, mission, AlgorithmKind::Optimization)
//!     .run();
//! assert!(outcome.completed);
//! ```

pub use adaptive_core as adaptive;
pub use cyclone;
pub use des;
pub use lp;
pub use ncdf;
pub use perfmodel;
pub use resources;
pub use viz;
pub use wrf;

/// Convenience re-exports covering the common entry points.
pub mod prelude {
    pub use adaptive_core::config::ApplicationConfig;
    pub use adaptive_core::decision::{AlgorithmKind, DecisionAlgorithm};
    pub use adaptive_core::orchestrator::{Orchestrator, RunOutcome};
    pub use cyclone::{Mission, Site};
    pub use des::{Series, SeriesSet, SimTime};
}
