//! Integration tests asserting the paper's §V claims hold, qualitatively,
//! on scaled-down missions (full-mission numbers are recorded by the
//! `repro-bench` binaries and EXPERIMENTS.md; these tests guard the
//! *shapes* in CI time).

use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::metrics;
use climate_adaptive::adaptive::orchestrator::{Orchestrator, RunOptions, RunOutcome};
use climate_adaptive::prelude::*;

fn run(site: Site, hours: f64, algo: AlgorithmKind) -> RunOutcome {
    Orchestrator::new(site, Mission::aila().with_duration_hours(hours), algo).run()
}

#[test]
fn both_algorithms_complete_on_the_fast_link() {
    for algo in AlgorithmKind::both() {
        let out = run(Site::inter_department(), 8.0, algo);
        assert!(out.completed, "{:?} failed to complete", algo);
        assert!(!out.ended_stalled);
        assert!(out.frames_rendered > 0);
    }
}

#[test]
fn greedy_overflows_cross_continent_while_optimization_survives() {
    // The full 60-hour mission: the 60 Kbps link cannot drain the greedy
    // method's output, so it hits CRITICAL; the optimization method plans
    // around the starved link from epoch zero. (A capped wall clock keeps
    // the stalled greedy run short — the paper's dotted line.)
    let opts = RunOptions {
        wall_cap_hours: 60.0,
        ..Default::default()
    };
    let greedy = Orchestrator::new(
        Site::cross_continent(),
        Mission::aila(),
        AlgorithmKind::GreedyThreshold,
    )
    .with_options(opts.clone())
    .run();
    let opt = Orchestrator::new(
        Site::cross_continent(),
        Mission::aila(),
        AlgorithmKind::Optimization,
    )
    .with_options(opts)
    .run();

    assert!(
        greedy.stalls > 0 || !greedy.completed,
        "greedy should hit CRITICAL on the starved link (stalls = {}, completed = {})",
        greedy.stalls,
        greedy.completed
    );
    assert!(opt.completed, "optimization must finish the mission");
    assert!(
        opt.min_free_disk_pct > greedy.min_free_disk_pct,
        "optimization keeps more free disk: {:.1}% vs {:.1}%",
        opt.min_free_disk_pct,
        greedy.min_free_disk_pct
    );
    assert!(
        opt.min_free_disk_pct > 15.0,
        "optimization stays clear of overflow ({:.1}%)",
        opt.min_free_disk_pct
    );
}

#[test]
fn optimization_uses_less_storage_on_every_site() {
    for site_f in [Site::inter_department, Site::intra_country] {
        let greedy = run(site_f(), 24.0, AlgorithmKind::GreedyThreshold);
        let opt = run(site_f(), 24.0, AlgorithmKind::Optimization);
        let c = metrics::compare(&greedy, &opt);
        assert!(
            c.storage_saving_pct > 0.0,
            "{}: optimization should save storage, got {:+.1}%",
            greedy.site_label,
            c.storage_saving_pct
        );
    }
}

#[test]
fn optimization_leads_visualization_at_mid_run() {
    let greedy = run(Site::intra_country(), 24.0, AlgorithmKind::GreedyThreshold);
    let opt = run(Site::intra_country(), 24.0, AlgorithmKind::Optimization);
    let c = metrics::compare(&greedy, &opt);
    assert!(
        c.viz_progress_gain_min > 0.0,
        "optimization should lead mid-run visualization, got {:+.1} sim-min",
        c.viz_progress_gain_min
    );
}

#[test]
fn frames_ship_in_simulated_time_order_everywhere() {
    for kind_f in [
        Site::inter_department,
        Site::intra_country,
        Site::cross_continent,
    ] {
        for algo in AlgorithmKind::both() {
            let out = run(kind_f(), 6.0, algo);
            let viz = out.series.get("viz_progress").expect("series exists");
            assert!(
                viz.is_monotone_non_decreasing(),
                "{} {:?}: visualization must replay frames in order",
                out.site_label,
                algo
            );
        }
    }
}

#[test]
fn output_interval_respects_mission_bounds() {
    for algo in AlgorithmKind::both() {
        let out = run(Site::intra_country(), 24.0, algo);
        let oi = out.series.get("output_interval").expect("series exists");
        assert!(oi.min_value().expect("non-empty") >= 3.0 - 1e-9);
        assert!(oi.max_value().expect("non-empty") <= 25.0 + 1e-9);
        let procs = out.series.get("procs").expect("series exists");
        assert!(procs.max_value().expect("non-empty") <= 90.0);
        assert!(procs.min_value().expect("non-empty") >= 1.0);
    }
}

#[test]
fn disk_accounting_is_conserved() {
    let out = run(
        Site::inter_department(),
        10.0,
        AlgorithmKind::GreedyThreshold,
    );
    // Everything written was either shipped, dropped, or still on disk.
    assert!(out.frames_shipped + out.frames_dropped <= out.frames_written);
    assert!(out.frames_rendered <= out.frames_shipped);
    let disk = out.series.get("free_disk_pct").expect("series exists");
    assert!(disk.min_value().expect("non-empty") >= 0.0);
    assert!(disk.max_value().expect("non-empty") <= 100.0);
}

#[test]
fn non_adaptive_baseline_stalls_before_greedy_cross_continent() {
    // "A non-adaptive solution would result in stalling of the simulation
    // much earlier than in the greedy algorithm."
    let opts = RunOptions {
        wall_cap_hours: 24.0,
        ..Default::default()
    };
    let run = |algo| {
        Orchestrator::new(Site::cross_continent(), Mission::aila(), algo)
            .with_options(opts.clone())
            .run()
    };
    let baseline = run(AlgorithmKind::StaticBaseline);
    let greedy = run(AlgorithmKind::GreedyThreshold);
    let b_stall = baseline
        .first_stall_wall_hours
        .expect("non-adaptive run must stall on the starved link");
    let g_stall = greedy
        .first_stall_wall_hours
        .expect("greedy also stalls, later");
    assert!(
        b_stall < g_stall,
        "baseline stalls at {b_stall:.2} h, greedy at {g_stall:.2} h"
    );
    // And the baseline makes less simulation progress for the same wall.
    assert!(baseline.sim_minutes < greedy.sim_minutes);
}

#[test]
fn wall_cap_produces_the_papers_dotted_line() {
    let opts = RunOptions {
        wall_cap_hours: 2.0,
        ..Default::default()
    };
    let out = Orchestrator::new(
        Site::cross_continent(),
        Mission::aila(),
        AlgorithmKind::GreedyThreshold,
    )
    .with_options(opts)
    .run();
    assert!(!out.completed);
    assert!(out.sim_minutes > 0.0, "made progress before the cap");
    assert!(out.wall_hours <= 2.0 + 1e-9);
}
