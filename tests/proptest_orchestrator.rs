//! Property tests over the full closed loop: for any site, algorithm,
//! seed and (short) mission length, the orchestrator's accounting and
//! series invariants must hold.

use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::orchestrator::{Orchestrator, RunOptions};
use climate_adaptive::prelude::*;
use proptest::prelude::*;

fn site_of(idx: usize) -> Site {
    match idx % 3 {
        0 => Site::inter_department(),
        1 => Site::intra_country(),
        _ => Site::cross_continent(),
    }
}

fn algo_of(idx: usize) -> AlgorithmKind {
    AlgorithmKind::all()[idx % 3]
}

proptest! {
    // Each case runs a full DES experiment; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn closed_loop_invariants_hold(
        site_idx in 0usize..3,
        algo_idx in 0usize..3,
        seed in 0u64..1000,
        hours in 2.0f64..10.0,
    ) {
        let opts = RunOptions {
            wall_cap_hours: 24.0,
            seed,
            ..Default::default()
        };
        let out = Orchestrator::new(
            site_of(site_idx),
            Mission::aila().with_duration_hours(hours),
            algo_of(algo_idx),
        )
        .with_options(opts)
        .run();

        // Frame conservation (shared engine-level helper).
        climate_adaptive::adaptive::engine::assert_frame_conservation(&out);

        // Disk bounds.
        prop_assert!((0.0..=100.0).contains(&out.min_free_disk_pct));
        prop_assert!((0.0..=100.0).contains(&out.final_free_disk_pct));
        prop_assert!(out.final_free_disk_pct >= out.min_free_disk_pct - 1e-9);

        // Wall/sim sanity.
        prop_assert!(out.wall_hours <= 24.0 + 1e-9);
        if out.completed {
            prop_assert!(out.sim_minutes >= hours * 60.0 - 1e-6);
            prop_assert!(!out.ended_stalled);
        }

        // Series invariants.
        let sim = out.series.get("sim_progress").expect("recorded");
        prop_assert!(sim.is_monotone_non_decreasing());
        let viz = out.series.get("viz_progress").expect("recorded");
        prop_assert!(viz.is_monotone_non_decreasing(), "FIFO shipping order");
        let oi = out.series.get("output_interval").expect("recorded");
        prop_assert!(oi.min_value().unwrap_or(3.0) >= 3.0 - 1e-9);
        prop_assert!(oi.max_value().unwrap_or(25.0) <= 25.0 + 1e-9);
        let procs = out.series.get("procs").expect("recorded");
        prop_assert!(procs.min_value().unwrap_or(1.0) >= 1.0);

        // Stall bookkeeping.
        if out.stalls > 0 {
            prop_assert!(out.first_stall_wall_hours.is_some());
        } else {
            prop_assert!(out.first_stall_wall_hours.is_none());
        }
    }

    #[test]
    fn runs_are_reproducible_per_seed(
        site_idx in 0usize..3,
        algo_idx in 0usize..3,
        seed in 0u64..100,
    ) {
        let run = || {
            Orchestrator::new(
                site_of(site_idx),
                Mission::aila().with_duration_hours(4.0),
                algo_of(algo_idx),
            )
            .with_options(RunOptions { seed, wall_cap_hours: 24.0, ..Default::default() })
            .run()
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.frames_written, b.frames_written);
        prop_assert_eq!(a.sim_minutes, b.sim_minutes);
        prop_assert_eq!(a.restarts, b.restarts);
        prop_assert_eq!(
            a.series.get("free_disk_pct").unwrap().points.len(),
            b.series.get("free_disk_pct").unwrap().points.len()
        );
    }
}
