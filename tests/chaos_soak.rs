//! Chaos-soak: seeded composed fault storms through the DES with the
//! degradation ladder engaged, every invariant checked on every storm,
//! and failures shrunk to minimal replayable schedules (ISSUE 6).

use climate_adaptive::adaptive::broker::{run_broker, LoadEvent};
use climate_adaptive::adaptive::chaos::{
    check_broker_invariants, check_invariants, run_storm, shrink, shrink_broker, soak,
    BrokerStormSpec, ChaosConfig, InvariantBudgets, ShrunkStorm, StormSpec, Violation,
};
use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::orchestrator::{Fault, FaultPlan, Orchestrator};
use climate_adaptive::adaptive::qos::{QosConfig, QosRung};
use climate_adaptive::prelude::*;

/// The CI soak corpus: 50 seeded storms, determinism double-runs on,
/// every invariant green. Thousands of simulated hours in aggregate.
#[test]
fn fifty_seeded_storms_soak_green() {
    let cfg = ChaosConfig {
        storms: 50,
        seed0: 0xC1A05,
        artifact_dir: Some(std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("chaos")),
        ..ChaosConfig::default()
    };
    let out = soak(&cfg);
    assert!(out.green(), "soak failures:\n{}", out.failure_reports());
    assert_eq!(out.storms_run, 50);
    // The broker load storms (thundering herds, mass disconnects, sags,
    // flap squads) soak green alongside the fault storms.
    assert_eq!(out.broker_storms_run, 50);
    assert!(out.broker_failures.is_empty());
    assert!(
        out.sim_hours > 1_000.0,
        "corpus should cover >1000 simulated hours, got {:.0}",
        out.sim_hours
    );
    // The corpus actually exercises the ladder: some storms stay shallow,
    // some hit the deep rungs.
    let deep: u64 = out.deepest_rung_histogram[2..].iter().sum();
    assert!(
        deep > 0,
        "no storm reached the deep rungs: {:?}",
        out.deepest_rung_histogram
    );
}

/// A deliberately broken invariant (rung cap 0 under a WAN collapse) is
/// caught, shrunk to a minimal schedule, and the shrunk schedule is
/// replayable: running it again reproduces the same violation kind.
#[test]
fn broken_invariant_is_caught_and_shrunk_to_a_replayable_schedule() {
    let budgets = InvariantBudgets {
        max_rung: Some(0),
        ..InvariantBudgets::default()
    };
    // A collapse storm padded with events that are irrelevant to the cap
    // violation — the shrinker should strip them.
    let spec = StormSpec {
        seed: 99,
        mission_hours: 24.0,
        events: vec![
            (0.10, Fault::SimCrash),
            (0.25, Fault::LinkDegradation { factor: 0.001 }),
            (0.60, Fault::LinkDegradation { factor: 1.0 }),
            (
                0.70,
                Fault::ReceiverOutage {
                    duration_hours: 0.05,
                },
            ),
        ],
        disk_capacity: 100_000,
        bandwidth_bps: 30_000.0,
        qos: true,
    };
    let baseline_wall = run_storm(&spec.baseline()).wall_hours;
    let out = run_storm(&spec);
    let violations = check_invariants(&spec, &out, baseline_wall, &budgets);
    assert!(
        violations.iter().any(|v| v.kind() == "rung-cap"),
        "the capped ladder should violate under a collapse: {violations:?}"
    );

    let ShrunkStorm {
        spec: shrunk,
        violations: shrunk_violations,
    } = shrink(&spec, &budgets, &["rung-cap"]);
    assert!(
        shrunk.events.len() < spec.events.len(),
        "irrelevant events should be stripped: {:?}",
        shrunk.events
    );
    assert!(shrunk_violations.iter().any(|v| v.kind() == "rung-cap"));
    // The shrunk schedule must still contain a collapse (the actual
    // cause) and be replayable: a fresh run reproduces the violation.
    assert!(shrunk
        .events
        .iter()
        .any(|(_, f)| matches!(f, Fault::LinkDegradation { factor } if *factor < 0.5)));
    let replay = run_storm(&shrunk);
    let replay_violations = check_invariants(&shrunk, &replay, baseline_wall, &budgets);
    assert!(
        replay_violations.iter().any(|v| v.kind() == "rung-cap"),
        "shrunk schedule must replay the violation"
    );
    assert!(shrunk.replay_line().contains("seed=99"));
    // 1-minimality: removing any single surviving event clears it.
    for i in 0..shrunk.events.len() {
        let mut fewer = shrunk.clone();
        fewer.events.remove(i);
        let out = run_storm(&fewer);
        let v = check_invariants(&fewer, &out, baseline_wall, &budgets);
        assert!(
            !v.iter().any(|v| v.kind() == "rung-cap"),
            "shrunk schedule is not minimal: event {i} is removable"
        );
    }
}

/// The broker side of the harness catches and shrinks too: under a
/// deliberately tight staleness budget, a storm with a deep link sag
/// (padded with an irrelevant flap squad) violates `broker-staleness`,
/// and the shrinker strips the padding down to a 1-minimal replayable
/// schedule.
#[test]
fn broken_broker_invariant_is_caught_and_shrunk() {
    let budgets = InvariantBudgets {
        broker_staleness_secs: 120.0,
        ..InvariantBudgets::default()
    };
    let spec = BrokerStormSpec {
        seed: 77,
        fleet: 100,
        events: vec![
            (
                0.0,
                LoadEvent::ArrivalRamp {
                    clients: 100,
                    over_secs: 300.0,
                },
            ),
            (
                300.0,
                LoadEvent::FlapSquad {
                    clients: 5,
                    period_secs: 120.0,
                },
            ),
            (
                900.0,
                LoadEvent::LinkSag {
                    factor: 1e-6,
                    for_secs: 1200.0,
                },
            ),
        ],
    };
    let out = run_broker(spec.to_config());
    let violations = check_broker_invariants(&spec, &out, &budgets);
    assert!(
        violations.iter().any(|v| v.kind() == "broker-staleness"),
        "a 20-minute near-collapse must blow a 2-minute staleness budget: {violations:?}"
    );

    let shrunk = shrink_broker(&spec, &budgets, &["broker-staleness"]);
    assert!(
        shrunk.spec.events.len() < spec.events.len(),
        "padding should be stripped: {:?}",
        shrunk.spec.events
    );
    assert!(shrunk
        .violations
        .iter()
        .any(|v| v.kind() == "broker-staleness"));
    // The actual cause survives, and the schedule replays.
    assert!(shrunk
        .spec
        .events
        .iter()
        .any(|(_, ev)| matches!(ev, LoadEvent::LinkSag { .. })));
    let replay = run_broker(shrunk.spec.to_config());
    let replay_violations = check_broker_invariants(&shrunk.spec, &replay, &budgets);
    assert!(replay_violations
        .iter()
        .any(|v| v.kind() == "broker-staleness"));
    // 1-minimality: removing any single surviving event clears it.
    for i in 0..shrunk.spec.events.len() {
        let mut fewer = shrunk.spec.clone();
        fewer.events.remove(i);
        let out = run_broker(fewer.to_config());
        let v = check_broker_invariants(&fewer, &out, &budgets);
        assert!(
            !v.iter().any(|v| v.kind() == "broker-staleness"),
            "shrunk broker schedule is not minimal: event {i} is removable"
        );
    }
}

/// Shared scripted bandwidth collapse for the acceptance comparison:
/// the WAN drops to 0.05% at wall 0.25 h and restores at 0.9 h.
fn collapse_outcome(qos: bool) -> climate_adaptive::adaptive::orchestrator::RunOutcome {
    let mut mission = Mission::aila()
        .with_duration_hours(60.0)
        .with_decimation(16);
    mission.decision_interval_hours = 0.1;
    let plan = FaultPlan::from_events(vec![
        (0.25, Fault::LinkDegradation { factor: 0.0005 }),
        (0.9, Fault::LinkDegradation { factor: 1.0 }),
    ]);
    let mut orch = Orchestrator::new(
        Site::inter_department(),
        mission,
        AlgorithmKind::Optimization,
    )
    .with_fault_plan(plan)
    .with_live_emission(50_000, 30_000.0);
    if qos {
        orch = orch.with_qos(QosConfig::default());
    }
    orch.run()
}

/// The acceptance scenario: under a scripted bandwidth collapse the
/// ladder walks down to store-and-forward pause, holds through the
/// outage, then climbs back one hysteresis dwell at a time — and the
/// controller-on run takes strictly fewer CRITICAL stalls than the
/// controller-off baseline. Values are pinned (the run is
/// deterministic); `results/qos_ladder.csv` carries the same row.
#[test]
fn bandwidth_collapse_descends_the_ladder_and_recovers_with_fewer_stalls() {
    let base = collapse_outcome(false);
    let qos = collapse_outcome(true);
    assert!(base.completed && qos.completed);

    // Strictly fewer CRITICAL stalls and no more dropped frames.
    assert!(
        qos.stalls < base.stalls,
        "controller must reduce stalls: qos {} vs baseline {}",
        qos.stalls,
        base.stalls
    );
    assert!(qos.frames_dropped <= base.frames_dropped);

    // Pinned outcome of the deterministic scenario.
    assert_eq!((base.stalls, qos.stalls), (3, 2));
    assert_eq!((base.frames_dropped, qos.frames_dropped), (3, 2));
    assert_eq!(qos.deepest_rung, QosRung::Pause.as_byte());
    assert_eq!((qos.qos_demotions, qos.qos_promotions), (4, 4));

    // Ladder shape: monotone descent to Pause during the collapse, a
    // hold, then a monotone climb home after restoration.
    let rungs: Vec<i64> = qos
        .series
        .get("qos_rung")
        .expect("qos_rung series")
        .points
        .iter()
        .map(|p| p.1 as i64)
        .collect();
    let deepest_at = rungs.iter().position(|&r| r == 4).expect("reaches Pause");
    assert!(
        rungs[..deepest_at].windows(2).all(|w| w[1] >= w[0]),
        "descent is monotone"
    );
    let back_home = rungs[deepest_at..]
        .iter()
        .position(|&r| r == 0)
        .expect("climbs back to full resolution")
        + deepest_at;
    assert!(
        rungs[deepest_at..back_home]
            .windows(2)
            .all(|w| w[1] <= w[0]),
        "climb is monotone"
    );
    assert_eq!(rungs[rungs.len() - 1], 0, "ends at full resolution");

    // Hysteresis: successive promotions are separated by at least the
    // promote dwell (3 epochs) — the climb is deliberate, not a snap.
    let cfg = QosConfig::default();
    let mut last_promotion: Option<usize> = None;
    for i in 1..=back_home {
        if rungs[i] < rungs[i - 1] {
            if let Some(prev) = last_promotion {
                assert!(
                    i - prev >= cfg.promote_dwell as usize,
                    "promotions at epochs {prev} and {i} closer than the dwell"
                );
            }
            last_promotion = Some(i);
        }
    }
    assert!(last_promotion.is_some());
}

/// A controller-off run keeps its report entirely qos-silent, and the
/// qos run's invariants hold under the chaos checker too.
#[test]
fn collapse_scenario_passes_the_chaos_invariants() {
    let spec = StormSpec {
        seed: 0,
        mission_hours: 60.0,
        events: vec![
            (0.25, Fault::LinkDegradation { factor: 0.0005 }),
            (0.9, Fault::LinkDegradation { factor: 1.0 }),
        ],
        disk_capacity: 50_000,
        bandwidth_bps: 30_000.0,
        qos: true,
    };
    let baseline_wall = run_storm(&spec.baseline()).wall_hours;
    let out = run_storm(&spec);
    let violations = check_invariants(&spec, &out, baseline_wall, &InvariantBudgets::default());
    assert!(
        violations.is_empty(),
        "{:?}",
        violations
            .iter()
            .map(Violation::to_string)
            .collect::<Vec<_>>()
    );
    let off = StormSpec { qos: false, ..spec };
    let out_off = run_storm(&off);
    let v_off = check_invariants(&off, &out_off, baseline_wall, &InvariantBudgets::default());
    assert!(
        v_off
            .iter()
            .all(|v| !matches!(v, Violation::Ladder(_) | Violation::RungCap { .. })),
        "{v_off:?}"
    );
}
