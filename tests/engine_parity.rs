//! Driver parity over the unified epoch engine.
//!
//! The DES orchestrator and the live online pipeline are now thin
//! drivers over the same `EpochEngine`; the only differences are the
//! environment traits they plug in (clock, transport, durability, fault
//! injector). Running the *same* mission, seed, and fault plan through
//! both drivers — with the live driver on a purely virtual clock and
//! the DES driver emitting real encoded frames — must therefore produce
//! identical decision traces, identical counters, and a byte-identical
//! remote visualization track.

use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::engine::assert_frame_conservation;
use climate_adaptive::adaptive::online::{run_online, OnlineOptions};
use climate_adaptive::adaptive::orchestrator::{Fault, FaultPlan, Orchestrator};
use climate_adaptive::prelude::*;
use proptest::prelude::*;

fn parity_mission() -> Mission {
    // Heavy decimation keeps real frame encoding cheap; both drivers see
    // the exact same mission object.
    Mission::aila().with_duration_hours(2.0).with_decimation(16)
}

/// Same mission + seed + fault plan through the DES driver (virtual
/// clock, in-process live emission) and the live driver (virtual clock,
/// channel transport with a real receiver thread): every decision-trace
/// series, every counter, and the remote track must agree exactly.
#[test]
fn des_and_live_drivers_agree_byte_for_byte() {
    let site = Site::inter_department();
    let mission = parity_mission();
    // A crash and a receiver outage, both inside the ~0.135 modeled wall
    // hours the mission takes — parity must survive the fault paths too.
    let plan = FaultPlan::from_events(vec![
        (0.02, Fault::SimCrash),
        (
            0.05,
            Fault::ReceiverOutage {
                duration_hours: 0.02,
            },
        ),
    ]);

    let mut online_options = OnlineOptions::fast("engine-parity");
    online_options.time_scale = 0.0; // purely virtual clock, like the DES driver
    let disk_capacity = online_options.disk_capacity;
    let bandwidth_bps = online_options.bandwidth_bps;
    let live = run_online(
        &site,
        &mission,
        AlgorithmKind::Optimization,
        &online_options.with_fault_plan(plan.clone()),
    );

    let des = Orchestrator::new(site, mission, AlgorithmKind::Optimization)
        .with_fault_plan(plan)
        .with_live_emission(disk_capacity, bandwidth_bps)
        .run();

    assert!(des.completed, "{des:?}");
    assert!(live.completed, "{live:?}");

    // Identical decision traces and progress series.
    for key in [
        "procs",
        "output_interval",
        "sim_progress",
        "viz_progress",
        "free_disk_pct",
    ] {
        let d = des.series.get(key).expect("des series");
        let l = live.series.get(key).expect("live series");
        assert_eq!(
            d.points, l.points,
            "series `{key}` diverged between drivers"
        );
    }

    // Byte-identical remote visualization track.
    assert_eq!(
        des.track.to_csv(),
        live.track.to_csv(),
        "remote tracks must be byte-identical"
    );

    // Every shared counter agrees (frames, stalls, crashes, reconnects,
    // replays, decisions, disk watermarks, ...).
    assert_eq!(des.report.counters, live.report.counters);

    assert_frame_conservation(&des);
    assert_frame_conservation(&live);
}

/// Worker counts to exercise, `FLEET_WORKERS`-overridable (the CI
/// shard-parity job sweeps 2, 4, 8).
fn fleet_worker_counts() -> Vec<usize> {
    std::env::var("FLEET_WORKERS")
        .unwrap_or_else(|_| "1,2,4,8".into())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

/// The ISSUE's hard invariant: a fleet of ONE mission at any worker
/// count produces byte-identical decision traces, counters, and
/// visualization tracks to the solo engine — the sharded path is a pure
/// refactor when nothing is contended.
#[test]
fn fleet_of_one_is_byte_identical_to_the_solo_engine() {
    use climate_adaptive::adaptive::engine::PipelineOptions;
    use climate_adaptive::adaptive::fleet::{run_fleet, FleetOptions, MissionSpec};

    let site = Site::inter_department();
    let mission = Mission::aila().with_duration_hours(3.0);
    // Route the parity through the fault paths too: a crash, an outage
    // (which in fleet mode exercises WAN release/cancel), and a kill.
    let plan = FaultPlan::from_events(vec![
        (0.05, Fault::SimCrash),
        (
            0.2,
            Fault::ReceiverOutage {
                duration_hours: 0.05,
            },
        ),
        (0.4, Fault::ProcessKill { at_hours: 0.4 }),
    ]);
    let options = PipelineOptions {
        fault_plan: plan,
        ..Default::default()
    };

    let solo = Orchestrator::new(site.clone(), mission.clone(), AlgorithmKind::Optimization)
        .with_options(options.clone())
        .run();

    for workers in fleet_worker_counts() {
        let spec = MissionSpec {
            label: "solo-parity".into(),
            site: site.clone(),
            mission: mission.clone(),
            algorithm: AlgorithmKind::Optimization,
            options: options.clone(),
        };
        let fleet = run_fleet(vec![spec], &FleetOptions::for_site(&site, workers));
        let m = &fleet.missions[0].report;

        assert_eq!(
            m.counters, solo.report.counters,
            "fleet-of-1 counters diverged at {workers} workers"
        );
        for series in solo.series.iter() {
            let key = &series.name;
            let f = m
                .series
                .get(key)
                .unwrap_or_else(|| panic!("fleet run lost series `{key}`"));
            assert_eq!(
                f.points, series.points,
                "series `{key}` diverged at {workers} workers"
            );
        }
        assert_eq!(
            m.track.to_csv(),
            solo.track.to_csv(),
            "tracks diverged at {workers} workers"
        );
        assert_eq!(m.completed, solo.completed);
        assert_eq!(m.ended_stalled, solo.ended_stalled);
        assert_eq!(m.wall_hours, solo.wall_hours);
        assert_eq!(m.sim_minutes, solo.sim_minutes);
        assert_frame_conservation(m);
    }
}

proptest! {
    // Each case is a full live-driver run with real frame encoding;
    // keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Engine-level frame conservation holds for the live driver under
    /// any random fault plan, exactly as `fault_injection.rs` asserts it
    /// for the DES driver — one shared helper, both drivers.
    #[test]
    fn live_driver_conserves_frames_under_random_fault_plans(plan_seed in 0u64..200) {
        let site = Site::inter_department();
        let mission = Mission::aila().with_duration_hours(1.0).with_decimation(16);
        // Horizon in modeled wall hours: this mission finishes in well
        // under 0.2, so most drawn faults land mid-run.
        let plan = FaultPlan::random(plan_seed, 0.2);
        let mut options = OnlineOptions::fast(&format!("parity-prop-{plan_seed}"));
        options.time_scale = 0.0;
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::GreedyThreshold,
            &options.with_fault_plan(plan),
        );
        assert_frame_conservation(&report);
        prop_assert!(report.frames_emitted > 0);
    }
}
