//! Broker load acceptance: the catch-up storm the serving tier exists
//! for (ISSUE 7). A modeled fleet rides out a two-hour WAN outage that
//! outlives the broker's half-hour frame ring, then the whole fleet
//! reconnects at once — and the storm drains through admission control,
//! paced catch-up, and the QoS ladder without starving live frames,
//! growing broker memory, or tripping a single breaker.

use climate_adaptive::adaptive::broker::{loadgen, run_broker, BrokerConfig};

/// 10^4 modeled viewers, 2 h outage against a 0.5 h ring. Debug-friendly
/// size; the 10^5 sweep point runs in release under `--ignored`.
fn acceptance_config() -> BrokerConfig {
    let mut cfg = BrokerConfig::new(0xACCE55, loadgen::outage_reconnect(10_000, 7200.0));
    cfg.horizon_secs = 3.0 * 3600.0;
    cfg
}

#[test]
fn mass_reconnect_storm_after_two_hour_outage_drains_cleanly() {
    let out = run_broker(acceptance_config());
    let c = out.counters;

    // Every client's resume cursor expired with the ring (outage 4×
    // retention), so each sheds its gap exactly once — and one outage
    // must never quarantine a healthy fleet.
    assert_eq!(c.clients_total, 10_000);
    assert_eq!(c.resume_failures, 10_000);
    assert_eq!(c.quarantined, 0);

    // The robustness core: no live-frame starvation during catch-up,
    // broker memory bounded by the ring, books balanced.
    assert_eq!(c.starvation_ticks, 0);
    assert!(
        c.peak_ring_frames <= 60,
        "ring grew: {}",
        c.peak_ring_frames
    );
    assert_eq!(c.frames_delivered + c.frames_shed, c.cursor_advance);

    // The storm drains: everyone is back live within minutes of the
    // outage ending, and the run ends with no connected laggards.
    assert!(out.drained, "catch-up storm failed to drain");
    let rec = out.recovery_secs.expect("recovery window must close");
    assert!(rec <= 900.0, "recovery took {rec} s");

    // Admission fairness: the gate drains 10^4 reconnects in
    // clients/rate = 50 s; nobody waits in lockstep-retry purgatory.
    assert!(
        out.max_admission_wait_secs <= 2.0 * 10_000.0 / 200.0 + 30.0,
        "worst admission wait {} s",
        out.max_admission_wait_secs
    );

    // Catch-up replay actually happened, and it was paced out of a
    // bounded share: live traffic kept flowing during it.
    assert!(out.catchup_bytes > 0.0);
    assert!(out.live_bytes > 0.0);

    // Pinned outcome of the deterministic scenario — the broker analogue
    // of the ladder acceptance pins in chaos_soak.rs. Every client rode
    // the ladder down to track-only during the catch-up crunch and
    // climbed all the way back.
    assert_eq!(c.admitted_sessions, 20_000);
    assert_eq!(c.deferred_admissions, 9_950);
    assert_eq!(c.frames_produced, 360);
    assert_eq!(c.frames_delivered, 1_401_062);
    assert_eq!(c.frames_shed, 2_103_956);
    assert_eq!(c.deepest_rung, 3);
    assert_eq!((c.demotions, c.promotions), (30_000, 30_000));
    assert_eq!(rec, 180.0);
    assert_eq!(out.p99_staleness_secs, 840.0);
}

/// Bit-for-bit determinism at the acceptance size: same seed, same
/// storm, same counters.
#[test]
fn acceptance_storm_is_deterministic() {
    let a = run_broker(acceptance_config());
    let b = run_broker(acceptance_config());
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.p99_staleness_secs, b.p99_staleness_secs);
    assert_eq!(a.recovery_secs, b.recovery_secs);
}

/// The 10^5 point: run in release by CI (`cargo test --release --
/// --ignored broker_`). At this scale full-resolution broadcast is
/// infeasible (10^11 B per interval against a 3×10^10 B budget), so
/// staying live *requires* the QoS ladder — bounded memory and zero
/// starvation must survive the demotions.
#[test]
#[ignore]
fn broker_hundred_thousand_clients_survive_the_storm() {
    let mut cfg = BrokerConfig::new(0xACCE55, loadgen::outage_reconnect(100_000, 7200.0));
    cfg.horizon_secs = 3.0 * 3600.0;
    let out = run_broker(cfg);
    let c = out.counters;
    assert_eq!(c.clients_total, 100_000);
    assert_eq!(c.peak_connected, 100_000);
    assert_eq!(c.starvation_ticks, 0);
    assert!(c.peak_ring_frames <= 60);
    assert_eq!(c.frames_delivered + c.frames_shed, c.cursor_advance);
    assert_eq!(c.quarantined, 0);
    assert!(
        c.deepest_rung > 0,
        "10^5 full-res clients cannot fit the link; the ladder must engage"
    );
    assert!(out.drained);
    assert!(
        out.max_admission_wait_secs <= 2.0 * 100_000.0 / 200.0 + 30.0,
        "worst admission wait {} s",
        out.max_admission_wait_secs
    );
}
