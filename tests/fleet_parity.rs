//! Determinism of the sharded multi-mission fleet.
//!
//! The fleet advances N mission engines on independent clocks and
//! synchronizes only at shared-resource events through the conservative
//! `(time, shard)` horizon. The contract under test: worker-thread count
//! and OS scheduling change *wall time only* — every mission's report
//! (decision traces, counters, progress series) is a pure function of
//! the mission specs. Each multi-threaded configuration is run in a loop
//! so a racy interleaving would have many chances to surface.

use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::engine::{PipelineCounters, PipelineOptions};
use climate_adaptive::adaptive::fleet::{
    ensemble, run_fleet, FleetOptions, FleetReport, MissionSpec,
};
use climate_adaptive::adaptive::orchestrator::{Fault, FaultPlan};
use climate_adaptive::prelude::*;

type Fingerprint = Vec<(String, PipelineCounters, Vec<(String, Vec<(f64, f64)>)>)>;

/// Everything observable about a fleet run, in mission order.
fn fingerprint(report: &FleetReport) -> Fingerprint {
    report
        .missions
        .iter()
        .map(|m| {
            let series = m
                .report
                .series
                .iter()
                .map(|s| (s.name.clone(), s.points.clone()))
                .collect();
            (m.label.clone(), m.report.counters.clone(), series)
        })
        .collect()
}

fn quick_mission() -> Mission {
    Mission::aila().with_duration_hours(2.0)
}

#[test]
fn fleet_reports_are_invariant_under_worker_count() {
    let site = Site::inter_department();
    let specs = |n| {
        ensemble(
            &site,
            &quick_mission(),
            AlgorithmKind::Optimization,
            &PipelineOptions::default(),
            n,
        )
    };
    let opts = |w| FleetOptions::for_site(&site, w);

    let reference = fingerprint(&run_fleet(specs(4), &opts(1)));
    for workers in [2usize, 4, 8] {
        for round in 0..3 {
            let run = fingerprint(&run_fleet(specs(4), &opts(workers)));
            assert_eq!(
                run, reference,
                "fleet diverged at {workers} workers (round {round})"
            );
        }
    }
}

/// Two missions racing for the same scarce cluster allocation must
/// serialize identically through the coordinator on every run,
/// regardless of thread interleaving — and the contention must actually
/// bite (the pool is half what the two would ask for together).
#[test]
fn cluster_contention_serializes_deterministically() {
    let site = Site::inter_department();
    let mission = quick_mission();
    let specs = || {
        ensemble(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &PipelineOptions::default(),
            2,
        )
    };
    // A pool far below 2× the solo demand forces the epoch-by-epoch
    // realloc race the coordinator must order.
    let scarce = FleetOptions {
        workers: 2,
        total_cores: (site.cluster.max_cores / 2).max(2),
    };

    let reference_run = run_fleet(specs(), &scarce);
    let reference = fingerprint(&reference_run);

    // The shared pool must have constrained someone: nobody can hold the
    // solo-sized allocation when the pool is half of twice that.
    let max_procs_seen: f64 = reference_run
        .missions
        .iter()
        .flat_map(|m| m.report.series.get("procs").unwrap().points.iter())
        .map(|&(_, p)| p)
        .fold(0.0, f64::max);
    assert!(
        max_procs_seen <= scarce.total_cores as f64,
        "a mission held {max_procs_seen} cores from a {}-core pool",
        scarce.total_cores
    );

    for round in 0..10 {
        let run = fingerprint(&run_fleet(specs(), &scarce));
        assert_eq!(run, reference, "contended fleet diverged (round {round})");
    }
    // And the single-threaded coordinator agrees with the racy one.
    let serial = fingerprint(&run_fleet(
        specs(),
        &FleetOptions {
            workers: 1,
            ..scarce
        },
    ));
    assert_eq!(serial, reference, "workers=1 and workers=2 disagree");
}

/// Fault storms (WAN aborts, kills, crashes) hit every shared-resource
/// path; the fleet must stay deterministic through them.
#[test]
fn faulted_fleet_is_deterministic_across_workers() {
    let site = Site::inter_department();
    let mission = quick_mission();
    let specs = || -> Vec<MissionSpec> {
        let mut specs = ensemble(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &PipelineOptions::default(),
            3,
        );
        for (i, spec) in specs.iter_mut().enumerate() {
            spec.options.fault_plan = FaultPlan::from_events(vec![
                (0.02 + 0.01 * i as f64, Fault::SimCrash),
                (
                    0.05 + 0.01 * i as f64,
                    Fault::ReceiverOutage {
                        duration_hours: 0.03,
                    },
                ),
                (0.08, Fault::ProcessKill { at_hours: 0.08 }),
            ]);
        }
        specs
    };
    let reference = fingerprint(&run_fleet(specs(), &FleetOptions::for_site(&site, 1)));
    for workers in [2usize, 4] {
        for round in 0..3 {
            let run = fingerprint(&run_fleet(specs(), &FleetOptions::for_site(&site, workers)));
            assert_eq!(
                run, reference,
                "faulted fleet diverged at {workers} workers (round {round})"
            );
        }
    }
}
