//! Serving-tier chaos soak (ISSUE 9): real loopback clients through the
//! seeded socket fault proxy, against the PR 6/7 invariant battery on
//! *real bytes*. Each storm runs a [`FrameServer`], a [`ToxicProxy`]
//! with a seeded fault schedule (resets, half-open partitions,
//! slow-loris trickle, torn handshakes, latency, bandwidth caps), a
//! healthy control group connected directly, and a faulted mob
//! connected through the proxy; the producer streams canonical
//! track-only fixes at a steady cadence and the battery checks:
//!
//! 1. exactly-once track application (per-client applied sequences
//!    strictly increasing),
//! 2. per-client byte-identical tracks (every applied fix bit-equal to
//!    the canonical body for that sequence),
//! 3. wire conservation `delivered + shed == cursor_advance` on the
//!    server and `delivered + shed == watermark` on every client,
//! 4. zero live-frame starvation: the healthy control group ends at the
//!    head having shed nothing, no matter what the mob does.
//!
//! The fault *schedule* replays from one seed; the socket interleaving
//! does not, so the invariants must hold for every interleaving — any
//! violation writes a `SERVER-REPLAY` line under `target/tmp/server/`
//! before panicking. Debug runs a pinned corpus; the full battery
//! (≥ 20 storms, ≥ 200 clients, plus a 200-concurrent storm) runs in
//! release under `--ignored` (CI: `cargo test --release -- --ignored
//! server_`).

use climate_adaptive::adaptive::broker::BreakerConfig;
use climate_adaptive::adaptive::qos::{encode_fix, QosRung};
use climate_adaptive::adaptive::resilience::BackoffPolicy;
use climate_adaptive::adaptive::server::toxic::{ToxicPlan, ToxicProxy};
use climate_adaptive::adaptive::server::{
    DrainReport, FrameServer, RemoteViewer, ServerConfig, ViewerConfig, ViewerEnd,
};
use climate_adaptive::viz::EyeFix;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The canonical frame stream: one deterministic fix per sequence.
fn canonical_fix(i: u64) -> EyeFix {
    EyeFix {
        sim_minutes: i as f64,
        lon: 80.0 + i as f64 * 0.01,
        lat: 15.0 + i as f64 * 0.005,
        pressure_hpa: 990.0 - (i % 50) as f64,
    }
}

fn canonical_body(i: u64) -> Vec<u8> {
    encode_fix(&canonical_fix(i)).to_vec()
}

fn storm_server_config() -> ServerConfig {
    ServerConfig {
        retention_frames: 4096,
        max_backlog_frames: 40,
        handshake_deadline: Duration::from_millis(800),
        write_deadline: Duration::from_secs(2),
        ack_deadline: Duration::from_secs(1),
        // Resets cost a stall each; a tolerant breaker keeps one storm
        // from quarantining clients that are merely unlucky. A dedicated
        // test covers the trip path.
        breaker: BreakerConfig {
            trip_after: 50,
            window_secs: 600.0,
        },
        ..ServerConfig::default()
    }
}

/// A soak viewer: snappy timeouts, bounded reconnect wall budget so a
/// torn-down storm exhausts instead of spinning.
fn storm_viewer_config(client_id: u64, seed: u64) -> ViewerConfig {
    ViewerConfig {
        client_id,
        io_timeout: Duration::from_millis(400),
        backoff: BackoffPolicy::new(seed)
            .with_base(Duration::from_millis(5))
            .with_cap(Duration::from_millis(60))
            .with_max_attempts(u32::MAX)
            .with_max_total_delay(Duration::from_secs(4)),
    }
}

struct ViewerOutcome {
    client_id: u64,
    healthy: bool,
    end: ViewerEnd,
    last_applied: u64,
    delivered: u64,
    shed: u64,
    decode_failures: u64,
    wire_drains: u64,
    applied_seqs: Vec<u64>,
    applied_fix_bytes: Vec<[u8; 32]>,
}

struct StormOutcome {
    report: DrainReport,
    viewers: Vec<ViewerOutcome>,
    proxy_faulted: u64,
}

/// Run one seeded storm: `n_healthy` direct clients, `n_faulted`
/// through the proxy, `frames` canonical frames at a 2 ms cadence.
fn run_storm(seed: u64, n_healthy: u64, n_faulted: u64, frames: u64) -> StormOutcome {
    let server = FrameServer::start(storm_server_config()).expect("bind server");
    let upstream = server.addr().expect("remote mode");
    let proxy = ToxicProxy::start(upstream, ToxicPlan::storm(seed)).expect("bind proxy");
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for i in 0..n_healthy + n_faulted {
        let healthy = i < n_healthy;
        let addr = if healthy { upstream } else { proxy.addr() };
        let stop = Arc::clone(&stop);
        let cfg = storm_viewer_config(i + 1, seed ^ (i + 1));
        handles.push(std::thread::spawn(move || {
            let mut viewer = RemoteViewer::new(addr, cfg);
            let end = viewer.run(&stop);
            let stats = viewer.stats();
            ViewerOutcome {
                client_id: i + 1,
                healthy,
                end,
                last_applied: viewer.last_applied(),
                delivered: stats.delivered,
                shed: stats.shed,
                decode_failures: stats.decode_failures,
                wire_drains: stats.drains,
                applied_seqs: viewer.applied_seqs().to_vec(),
                applied_fix_bytes: viewer.track().fixes().iter().map(encode_fix).collect(),
            }
        }));
    }

    // Let the healthy control group join live before the first frame so
    // "no starvation" is exact: they must then see *everything*.
    let t0 = Instant::now();
    while server.connected() < n_healthy && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    for i in 0..frames {
        server.publish(QosRung::TrackOnly, canonical_body(i));
        std::thread::sleep(Duration::from_millis(2));
    }
    // Grace for catch-up, then drain: connected clients are served the
    // full backlog and handed resume cursors.
    std::thread::sleep(Duration::from_millis(300));
    let report = server.drain();
    // The server is gone; release any viewer still retrying through the
    // proxy so the storm tears down promptly.
    stop.store(true, Ordering::SeqCst);
    let viewers: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("viewer thread"))
        .collect();
    let proxy_report = proxy.shutdown();
    StormOutcome {
        report,
        viewers,
        proxy_faulted: proxy_report.faulted,
    }
}

/// Check the invariant battery; on violation, write a replay line and
/// panic.
fn check_invariants(seed: u64, frames: u64, out: &StormOutcome) {
    let mut violations = Vec::new();
    let c = out.report.counters;

    // (3) wire conservation, server side.
    if c.frames_delivered + c.frames_shed != c.cursor_advance {
        violations.push(format!(
            "server conservation: delivered {} + shed {} != cursor_advance {}",
            c.frames_delivered, c.frames_shed, c.cursor_advance
        ));
    }
    if out.report.head != frames {
        violations.push(format!(
            "ring head {} != frames produced {frames}",
            out.report.head
        ));
    }

    for v in &out.viewers {
        let who = format!(
            "client {} ({})",
            v.client_id,
            if v.healthy { "healthy" } else { "faulted" }
        );
        // (1) exactly-once: applied wire sequences strictly increasing.
        if !v.applied_seqs.windows(2).all(|w| w[0] < w[1]) {
            violations.push(format!("{who}: applied sequences not strictly increasing"));
        }
        // (2) byte-identical track: fix i corresponds to applied seq i.
        if v.applied_fix_bytes.len() != v.applied_seqs.len() {
            violations.push(format!(
                "{who}: {} fixes vs {} applied seqs",
                v.applied_fix_bytes.len(),
                v.applied_seqs.len()
            ));
        }
        for (fix, &wire_seq) in v.applied_fix_bytes.iter().zip(&v.applied_seqs) {
            if fix.as_slice() != canonical_body(wire_seq - 1).as_slice() {
                violations.push(format!("{who}: frame {wire_seq} not byte-identical"));
                break;
            }
        }
        // (3) viewer-side conservation: every watermark advance was a
        // delivery or an accounted shed.
        if v.decode_failures != 0 {
            violations.push(format!("{who}: {} decode failures", v.decode_failures));
        }
        if v.delivered + v.shed != v.last_applied {
            violations.push(format!(
                "{who}: delivered {} + shed {} != watermark {}",
                v.delivered, v.shed, v.last_applied
            ));
        }
        // (4) no live-frame starvation: the healthy control group ends
        // drained, at the head, having shed nothing.
        if v.healthy {
            if v.end != ViewerEnd::Drained {
                violations.push(format!("{who}: ended {:?}, not Drained", v.end));
            }
            if v.shed != 0 {
                violations.push(format!("{who}: shed {} live frames", v.shed));
            }
            if v.last_applied != frames {
                violations.push(format!(
                    "{who}: stopped at {} / {frames} (starved)",
                    v.last_applied
                ));
            }
        }
        // A faulted client that received the wire-level drain control
        // was served its full backlog first: it reached the head via
        // AHL2 resume. (A client turned away at admission with the
        // draining status may legitimately hold an earlier cursor —
        // nothing acked is lost, the cursor stays resumable.)
        if !v.healthy
            && v.end == ViewerEnd::Drained
            && v.wire_drains > 0
            && v.last_applied != frames
        {
            violations.push(format!(
                "{who}: drained at watermark {} != head {frames}",
                v.last_applied
            ));
        }
    }

    if !violations.is_empty() {
        let dir = std::path::Path::new("target/tmp/server");
        let _ = std::fs::create_dir_all(dir);
        let line = format!(
            "SERVER-REPLAY seed={seed:#x} frames={frames} violations={}\n{}\n",
            violations.len(),
            violations.join("\n")
        );
        let _ = std::fs::write(dir.join(format!("replay-{seed:#x}.txt")), &line);
        panic!("{line}");
    }
}

/// Debug-size pinned corpus: five seeded storms, twelve clients each.
#[test]
fn server_soak_debug_corpus_holds_the_invariants() {
    for (k, &seed) in [
        0x5eed_0001u64,
        0x5eed_0002,
        0x5eed_0003,
        0x5eed_0004,
        0x5eed_0005,
    ]
    .iter()
    .enumerate()
    {
        let out = run_storm(seed, 3, 9, 100);
        check_invariants(seed, 100, &out);
        // The storm must actually storm: the plan faults about half the
        // mob's connections.
        assert!(
            out.proxy_faulted > 0,
            "storm {k} (seed {seed:#x}) injected no faults"
        );
        // And the mob still made progress through retries.
        let faulted_delivered: u64 = out
            .viewers
            .iter()
            .filter(|v| !v.healthy)
            .map(|v| v.delivered)
            .sum();
        assert!(
            faulted_delivered > 0,
            "storm {k} (seed {seed:#x}): no faulted client ever progressed"
        );
    }
}

/// Full battery (release, CI): twenty seeded storms × twelve clients,
/// then one 200-concurrent-client storm — ≥ 200 real loopback clients
/// through ≥ 20 seeded fault storms, zero invariant violations.
#[test]
#[ignore]
fn server_soak_full_battery() {
    for i in 0..20u64 {
        let seed = 0xbadc_0de0 + i;
        let out = run_storm(seed, 3, 9, 120);
        check_invariants(seed, 120, &out);
    }
    // The herd: 200 concurrent sockets, a quarter healthy, through one
    // composed storm. Admission defers the burst (rate 256/s, burst 64)
    // and every invariant still holds.
    let seed = 0x4e4d_5eed;
    let out = run_storm(seed, 50, 150, 150);
    check_invariants(seed, 150, &out);
    let drained = out
        .viewers
        .iter()
        .filter(|v| v.end == ViewerEnd::Drained)
        .count();
    assert!(
        drained >= 50,
        "only {drained}/200 clients reached the drain cursor"
    );
}

/// Graceful drain acceptance (the `fault_drill` pattern at the socket
/// tier): a client connected mid-epoch when the server drains receives
/// a resume cursor, reconnects to a *fresh* server instance continuing
/// the sequence numbering, and ends with a byte-identical track — zero
/// acknowledged frames lost.
#[test]
fn server_drain_handoff_resumes_byte_identically() {
    let cfg = storm_server_config();
    let server_a = FrameServer::start(cfg.clone()).expect("bind A");
    let addr_a = server_a.addr().expect("remote mode");
    let stop = Arc::new(AtomicBool::new(false));

    let viewer_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut viewer = RemoteViewer::new(addr_a, storm_viewer_config(42, 0xd12a));
            let end = viewer.run(&stop);
            (viewer, end)
        })
    };
    let t0 = Instant::now();
    while server_a.connected() == 0 && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    for i in 0..40 {
        server_a.publish(QosRung::TrackOnly, canonical_body(i));
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(200));

    // Drain mid-epoch: the client must walk away with a resume cursor.
    let report_a = server_a.drain();
    let (mut viewer, end_a) = viewer_thread.join().expect("viewer");
    assert_eq!(end_a, ViewerEnd::Drained);
    assert_eq!(report_a.head, 40);
    assert_eq!(
        report_a.resume_cursors.get(&42),
        Some(&40),
        "drain returned the client's cursor"
    );
    assert_eq!(viewer.last_applied(), 40, "drained at the head");

    // A fresh server continues the ring where the old one stopped.
    let server_b = FrameServer::start_resuming(cfg, report_a.head).expect("bind B");
    let addr_b = server_b.addr().expect("remote mode");
    viewer.set_addr(addr_b);
    let viewer_thread = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let end = viewer.run(&stop);
            (viewer, end)
        })
    };
    let t0 = Instant::now();
    while server_b.connected() == 0 && t0.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    for i in 40..80 {
        server_b.publish(QosRung::TrackOnly, canonical_body(i));
        std::thread::sleep(Duration::from_millis(2));
    }
    std::thread::sleep(Duration::from_millis(200));
    let report_b = server_b.drain();
    let (viewer, end_b) = viewer_thread.join().expect("viewer");
    assert_eq!(end_b, ViewerEnd::Drained);

    // Zero acknowledged frames lost, exactly-once across the handoff,
    // byte-identical to an uninterrupted stream.
    assert_eq!(viewer.stats().shed, 0, "no acked frame was lost");
    assert_eq!(viewer.last_applied(), 80);
    let seqs = viewer.applied_seqs();
    assert_eq!(seqs.len(), 80);
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "exactly once");
    assert_eq!(seqs.first(), Some(&1));
    assert_eq!(seqs.last(), Some(&80));
    let fixes = viewer.track().fixes();
    assert_eq!(fixes.len(), 80);
    for (i, f) in fixes.iter().enumerate() {
        assert_eq!(
            encode_fix(f).as_slice(),
            canonical_body(i as u64).as_slice(),
            "fix {i} bit-exact across the handoff"
        );
    }
    assert_eq!(
        report_b.resume_cursors.get(&42),
        Some(&80),
        "the handoff server knows the final cursor"
    );
}
