//! Failure injection: the framework has no special fault-handling code —
//! these tests verify that the *ordinary* adaptation loop (bandwidth
//! probe → decision algorithm → reconfiguration) absorbs resource faults,
//! and quantify what the adaptivity buys compared to the non-adaptive
//! baseline under the same fault.

use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::net_transport::{FrameReceiver, ReceiverOptions};
use climate_adaptive::adaptive::orchestrator::{Fault, FaultPlan, Orchestrator, RunOptions};
use climate_adaptive::adaptive::resilience::{BackoffPolicy, ResilientSender};
use climate_adaptive::prelude::*;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn opts() -> RunOptions {
    RunOptions {
        wall_cap_hours: 60.0,
        ..Default::default()
    }
}

#[test]
fn optimization_survives_a_mid_run_link_collapse() {
    // The inter-department link collapses to 2 % (56 Mbps → ~1.1 Mbps) at
    // hour 2 and never recovers — effectively turning fire into a
    // cross-continent-class configuration mid-mission.
    let faults = vec![(2.0, Fault::LinkDegradation { factor: 0.02 })];
    let out = Orchestrator::new(
        Site::inter_department(),
        Mission::aila(),
        AlgorithmKind::Optimization,
    )
    .with_options(opts())
    .with_faults(faults)
    .run();
    assert!(
        out.completed,
        "optimization must re-plan around the collapsed link: {out:?}"
    );
    assert!(
        out.min_free_disk_pct > 10.0,
        "and stay clear of overflow ({:.1}%)",
        out.min_free_disk_pct
    );
}

#[test]
fn faulted_link_forces_sparser_output() {
    let healthy = Orchestrator::new(
        Site::inter_department(),
        Mission::aila(),
        AlgorithmKind::Optimization,
    )
    .with_options(opts())
    .run();
    let faulted = Orchestrator::new(
        Site::inter_department(),
        Mission::aila(),
        AlgorithmKind::Optimization,
    )
    .with_options(opts())
    .with_faults(vec![(1.0, Fault::LinkDegradation { factor: 0.02 })])
    .run();
    assert!(
        faulted.frames_written < healthy.frames_written,
        "a starved link must reduce output: {} vs {}",
        faulted.frames_written,
        healthy.frames_written
    );
    // The adaptation is visible in the output-interval series: somewhere
    // after the fault the interval exceeds its pre-fault setting. (It may
    // legitimately tighten again near mission end — the overflow horizon
    // shrinks to nothing, so the disk outlives any output rate.)
    let oi = faulted.series.get("output_interval").expect("recorded");
    let pre = oi.value_at(0.5 * 3600.0).expect("early sample");
    let post_peak = oi
        .points
        .iter()
        .filter(|&&(t, _)| t > 1.0 * 3600.0)
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        post_peak > pre,
        "interval should widen after the fault: pre {pre}, post peak {post_peak}"
    );
}

#[test]
fn transient_fault_heals() {
    // Collapse at hour 1, restored at hour 4: the run must end healthy,
    // with the disk recovering once the link returns.
    let out = Orchestrator::new(
        Site::intra_country(),
        Mission::aila(),
        AlgorithmKind::Optimization,
    )
    .with_options(opts())
    .with_faults(vec![
        (1.0, Fault::LinkDegradation { factor: 0.05 }),
        (4.0, Fault::LinkDegradation { factor: 1.0 }),
    ])
    .run();
    assert!(out.completed);
    let disk = out.series.get("free_disk_pct").expect("recorded");
    let trough = disk.min_value().expect("non-empty");
    let end = disk.last_value().expect("non-empty");
    assert!(
        end >= trough,
        "disk should not end below its fault-era trough"
    );
}

#[test]
fn baseline_fares_worse_than_optimization_under_the_same_fault() {
    let fault = vec![(1.0, Fault::LinkDegradation { factor: 0.02 })];
    let run = |algo| {
        Orchestrator::new(Site::inter_department(), Mission::aila(), algo)
            .with_options(opts())
            .with_faults(fault.clone())
            .run()
    };
    let baseline = run(AlgorithmKind::StaticBaseline);
    let opt = run(AlgorithmKind::Optimization);
    assert!(
        opt.min_free_disk_pct > baseline.min_free_disk_pct,
        "adaptivity must preserve more disk under the fault: {:.1}% vs {:.1}%",
        opt.min_free_disk_pct,
        baseline.min_free_disk_pct
    );
    assert!(baseline.stalls > 0, "the baseline runs into CRITICAL");
    assert_eq!(opt.stalls, 0, "optimization avoids stalling");
}

/// Encoded frames for transport tests: a short decimated run, one frame
/// every couple of simulated hours.
fn test_payloads(n: usize) -> Vec<Vec<u8>> {
    let mut model = wrf::WrfModel::new(wrf::ModelConfig::aila_default().with_decimation(16))
        .expect("valid config");
    (0..n)
        .map(|_| {
            model
                .advance_to_minutes(model.sim_minutes() + 120.0, 1)
                .expect("finite");
            model.frame().to_bytes().to_vec()
        })
        .collect()
}

/// The PR's acceptance case: kill the receiver daemon mid-stream and
/// assert the sender reconnects with backoff, replays the unacked frame,
/// and the final track is byte-identical to a fault-free run.
#[test]
fn receiver_kill_mid_stream_is_healed_by_the_resilient_sender() {
    let payloads = test_payloads(6);

    // Fault-free baseline.
    let baseline = {
        let receiver = FrameReceiver::start().expect("bind");
        let addr = receiver.addr();
        let mut sender = ResilientSender::new(move || addr, BackoffPolicy::new(7));
        for p in &payloads {
            sender.send(p).expect("healthy path");
        }
        receiver.shutdown().to_csv()
    };

    // Faulted run: the receiver dies while receiving frame 3 — after the
    // bytes arrive but before the frame is applied or acked.
    let receiver1 = FrameReceiver::start_with(ReceiverOptions {
        kill_after_frames: Some(3),
        ..Default::default()
    })
    .expect("bind");
    let addr = Arc::new(Mutex::new(receiver1.addr()));

    // Ops stand-in: notices the dead daemon and restarts it from its
    // persisted state — on a *different* port, as a relaunched service
    // would be.
    let watcher_addr = Arc::clone(&addr);
    let watcher = std::thread::spawn(move || {
        while !receiver1.is_finished() {
            std::thread::sleep(Duration::from_millis(2));
        }
        let resume_seq = receiver1.last_applied();
        let resume_track = receiver1.shutdown();
        assert_eq!(resume_seq, 2, "frame 3 died before being applied");
        let receiver2 = FrameReceiver::start_with(ReceiverOptions {
            resume_track,
            resume_seq,
            kill_after_frames: None,
        })
        .expect("bind replacement");
        *watcher_addr.lock().unwrap() = receiver2.addr();
        receiver2
    });

    let sender_addr = Arc::clone(&addr);
    let mut sender = ResilientSender::new(
        move || *sender_addr.lock().unwrap(),
        BackoffPolicy::new(11)
            .with_base(Duration::from_millis(20))
            .with_max_attempts(12),
    )
    .with_io_timeout(Duration::from_millis(300));
    for p in &payloads {
        sender.send(p).expect("resilient path delivers every frame");
    }
    let stats = sender.stats();
    assert!(
        stats.reconnects >= 1,
        "reconnected after the kill: {stats:?}"
    );
    assert!(
        stats.replays >= 1,
        "the unacked frame was replayed: {stats:?}"
    );
    assert_eq!(stats.frames_acked, 6, "{stats:?}");

    let receiver2 = watcher.join().expect("watcher thread");
    assert_eq!(
        receiver2.last_applied(),
        6,
        "every frame applied exactly once"
    );
    let healed = receiver2.shutdown().to_csv();
    assert_eq!(
        healed, baseline,
        "track is byte-identical to the fault-free run"
    );
}

proptest! {
    // Each case is a full DES run under a random fault schedule; keep the
    // count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any random fault plan: the run must terminate (no event-loop
    /// livelock from outages/flaps re-arming) and conserve frames —
    /// everything written is either shipped or still sitting on the
    /// simulation-site disk.
    #[test]
    fn random_fault_plans_terminate_and_conserve_frames(
        plan_seed in 0u64..500,
        net_seed in 0u64..100,
        hours in 2.0f64..6.0,
    ) {
        let plan = FaultPlan::random(plan_seed, hours * 2.0);
        let out = Orchestrator::new(
            Site::inter_department(),
            Mission::aila().with_duration_hours(hours),
            AlgorithmKind::Optimization,
        )
        .with_options(RunOptions {
            wall_cap_hours: 40.0,
            seed: net_seed,
            ..Default::default()
        })
        .with_fault_plan(plan)
        .run();

        // Termination: the DES loop returned (reaching here proves it);
        // the wall clock is bounded by the cap.
        prop_assert!(out.wall_hours <= 40.0 + 1e-9);

        // Frame conservation (shared engine-level helper: emitted =
        // written + dropped, written = shipped + still-on-disk, with
        // visualization trailing shipping).
        climate_adaptive::adaptive::engine::assert_frame_conservation(&out);

        // Fault bookkeeping is consistent with the plan's vocabulary.
        prop_assert!((0.0..=100.0).contains(&out.min_free_disk_pct));
        if out.completed {
            prop_assert!(out.sim_minutes >= hours * 60.0 - 1e-6);
        }
    }
}
