//! Failure injection: the framework has no special fault-handling code —
//! these tests verify that the *ordinary* adaptation loop (bandwidth
//! probe → decision algorithm → reconfiguration) absorbs resource faults,
//! and quantify what the adaptivity buys compared to the non-adaptive
//! baseline under the same fault.

use climate_adaptive::adaptive::decision::AlgorithmKind;
use climate_adaptive::adaptive::orchestrator::{Fault, Orchestrator, RunOptions};
use climate_adaptive::prelude::*;

fn opts() -> RunOptions {
    RunOptions {
        wall_cap_hours: 60.0,
        ..Default::default()
    }
}

#[test]
fn optimization_survives_a_mid_run_link_collapse() {
    // The inter-department link collapses to 2 % (56 Mbps → ~1.1 Mbps) at
    // hour 2 and never recovers — effectively turning fire into a
    // cross-continent-class configuration mid-mission.
    let faults = vec![(2.0, Fault::LinkDegradation { factor: 0.02 })];
    let out = Orchestrator::new(
        Site::inter_department(),
        Mission::aila(),
        AlgorithmKind::Optimization,
    )
    .with_options(opts())
    .with_faults(faults)
    .run();
    assert!(
        out.completed,
        "optimization must re-plan around the collapsed link: {out:?}"
    );
    assert!(
        out.min_free_disk_pct > 10.0,
        "and stay clear of overflow ({:.1}%)",
        out.min_free_disk_pct
    );
}

#[test]
fn faulted_link_forces_sparser_output() {
    let healthy = Orchestrator::new(
        Site::inter_department(),
        Mission::aila(),
        AlgorithmKind::Optimization,
    )
    .with_options(opts())
    .run();
    let faulted = Orchestrator::new(
        Site::inter_department(),
        Mission::aila(),
        AlgorithmKind::Optimization,
    )
    .with_options(opts())
    .with_faults(vec![(1.0, Fault::LinkDegradation { factor: 0.02 })])
    .run();
    assert!(
        faulted.frames_written < healthy.frames_written,
        "a starved link must reduce output: {} vs {}",
        faulted.frames_written,
        healthy.frames_written
    );
    // The adaptation is visible in the output-interval series: somewhere
    // after the fault the interval exceeds its pre-fault setting. (It may
    // legitimately tighten again near mission end — the overflow horizon
    // shrinks to nothing, so the disk outlives any output rate.)
    let oi = faulted.series.get("output_interval").expect("recorded");
    let pre = oi.value_at(0.5 * 3600.0).expect("early sample");
    let post_peak = oi
        .points
        .iter()
        .filter(|&&(t, _)| t > 1.0 * 3600.0)
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        post_peak > pre,
        "interval should widen after the fault: pre {pre}, post peak {post_peak}"
    );
}

#[test]
fn transient_fault_heals() {
    // Collapse at hour 1, restored at hour 4: the run must end healthy,
    // with the disk recovering once the link returns.
    let out = Orchestrator::new(
        Site::intra_country(),
        Mission::aila(),
        AlgorithmKind::Optimization,
    )
    .with_options(opts())
    .with_faults(vec![
        (1.0, Fault::LinkDegradation { factor: 0.05 }),
        (4.0, Fault::LinkDegradation { factor: 1.0 }),
    ])
    .run();
    assert!(out.completed);
    let disk = out.series.get("free_disk_pct").expect("recorded");
    let trough = disk.min_value().expect("non-empty");
    let end = disk.last_value().expect("non-empty");
    assert!(
        end >= trough,
        "disk should not end below its fault-era trough"
    );
}

#[test]
fn baseline_fares_worse_than_optimization_under_the_same_fault() {
    let fault = vec![(1.0, Fault::LinkDegradation { factor: 0.02 })];
    let run = |algo| {
        Orchestrator::new(Site::inter_department(), Mission::aila(), algo)
            .with_options(opts())
            .with_faults(fault.clone())
            .run()
    };
    let baseline = run(AlgorithmKind::StaticBaseline);
    let opt = run(AlgorithmKind::Optimization);
    assert!(
        opt.min_free_disk_pct > baseline.min_free_disk_pct,
        "adaptivity must preserve more disk under the fault: {:.1}% vs {:.1}%",
        opt.min_free_disk_pct,
        baseline.min_free_disk_pct
    );
    assert!(baseline.stalls > 0, "the baseline runs into CRITICAL");
    assert_eq!(opt.stalls, 0, "optimization avoids stalling");
}
