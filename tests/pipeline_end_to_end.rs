//! Cross-crate integration: the full data path from the dynamical core
//! through the wire format to the visualization engine, plus checkpoint
//! semantics under the job handler's restart discipline.

use climate_adaptive::prelude::*;
use ncdf::Dataset;
use viz::track::detect_eye;
use viz::{FrameRenderer, TrackLog};
use wrf::{ModelConfig, WrfModel};

#[test]
fn frame_bytes_roundtrip_and_render() {
    let mut model = WrfModel::new(ModelConfig::aila_default().with_decimation(12)).expect("valid");
    model.advance_to_minutes(120.0, 2).expect("finite");
    model.spawn_nest();
    model.advance_to_minutes(180.0, 2).expect("finite");

    // Simulation site: encode.
    let frame = model.frame();
    let wire = frame.to_bytes();

    // Visualization site: decode, render, track — from bytes alone.
    let received = Dataset::from_bytes(&wire).expect("wire format intact");
    assert_eq!(frame, received);
    let img = FrameRenderer::default().render(&received).expect("renders");
    assert!(img.width() > 0);
    let fix = detect_eye(&received).expect("eye found");
    assert!(fix.pressure_hpa < 1013.0);
    let mut track = TrackLog::new();
    track.ingest(&received);
    assert_eq!(track.fixes().len(), 1);
}

#[test]
fn checkpoint_restart_across_reconfiguration_is_exact() {
    // The job handler's contract: stop, checkpoint, restart with a new
    // processor count — the physics trajectory must be unaffected.
    let mut reference =
        WrfModel::new(ModelConfig::aila_default().with_decimation(12)).expect("valid");
    reference.advance_steps(12, 1).expect("finite");

    let mut a = WrfModel::new(ModelConfig::aila_default().with_decimation(12)).expect("valid");
    a.advance_steps(5, 2).expect("finite");
    let blob = a.checkpoint();
    let mut b = WrfModel::restore(&blob).expect("restores");
    b.advance_steps(7, 3).expect("finite");
    assert_eq!(reference, b);
}

#[test]
fn mission_schedule_consistency_between_crates() {
    // The mission's frame-size and workload models must agree with the
    // wrf decomposition rules for every schedule stage on every site.
    let mission = Mission::aila();
    for site in [
        Site::inter_department(),
        Site::intra_country(),
        Site::cross_continent(),
    ] {
        let mut prev_bytes = 0;
        for stage in &mission.schedule.stages {
            let res = stage.resolution_km;
            let bytes = mission.frame_bytes(res, true);
            assert!(
                bytes >= prev_bytes || res > mission.schedule.finest_km(),
                "finer stages produce bigger frames"
            );
            prev_bytes = prev_bytes.max(bytes);
            let table = site.proc_table(&mission, res, true);
            assert!(table.min_time() > 0.0);
            assert!(
                table.time_for(site.cluster.max_cores).is_some(),
                "{}: max cores legal at {res} km",
                site.label
            );
        }
    }
}

#[test]
fn tracklog_over_a_day_matches_the_model_truth() {
    let mut model = WrfModel::new(ModelConfig::aila_default().with_decimation(12)).expect("valid");
    let mut track = TrackLog::new();
    for _ in 0..6 {
        model
            .advance_to_minutes(model.sim_minutes() + 4.0 * 60.0, 1)
            .expect("finite");
        track.ingest(&model.frame());
    }
    let last = *track.fixes().last().expect("fixes recorded");
    let (lon, lat) = model.eye_lonlat();
    assert!((last.lon - lon).abs() < 1.0, "viz eye ≈ model eye (lon)");
    assert!((last.lat - lat).abs() < 1.0, "viz eye ≈ model eye (lat)");
    assert!((last.pressure_hpa - model.min_pressure_hpa()).abs() < 1.0);
}
