//! Minimal offline stand-in for `serde_json`: prints and parses the
//! vendored `serde::Value` tree as standard JSON.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, 0, false);
    Ok(out)
}

/// Serialize to human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, 0, true);
    Ok(out)
}

/// Parse JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// --- printer --------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: usize, pretty: bool) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => write_seq(items, out, indent, pretty),
        Value::Map(entries) => write_map(entries, out, indent, pretty),
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // Real serde_json refuses non-finite floats; nothing in this
        // workspace serializes them, so mapping to null is a safe fallback.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{:?}` prints the shortest representation that reparses exactly.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(items: &[Value], out: &mut String, indent: usize, pretty: bool) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(indent + 1));
        }
        write_value(item, out, indent + 1, pretty);
    }
    if pretty {
        out.push('\n');
        out.push_str(&"  ".repeat(indent));
    }
    out.push(']');
}

fn write_map(entries: &[(String, Value)], out: &mut String, indent: usize, pretty: bool) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if pretty {
            out.push('\n');
            out.push_str(&"  ".repeat(indent + 1));
        }
        write_string(k, out);
        out.push(':');
        if pretty {
            out.push(' ');
        }
        write_value(v, out, indent + 1, pretty);
    }
    if pretty {
        out.push('\n');
        out.push_str(&"  ".repeat(indent));
    }
    out.push('}');
}

// --- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of JSON input".into())),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid UTF-8 in number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not reassembled; the
                            // workspace never emits astral-plane escapes.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Num(3.0)),
            ("b".into(), Value::Str("x\n\"y".into())),
            (
                "c".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null, Value::Num(-1.25)]),
            ),
        ]);
        for pretty in [false, true] {
            let mut out = String::new();
            write_value(&v, &mut out, 0, pretty);
            let mut p = Parser {
                bytes: out.as_bytes(),
                pos: 0,
            };
            let back = p.parse_value().unwrap();
            assert_eq!(back, v, "failed roundtrip of {out}");
        }
    }

    #[test]
    fn garbage_is_error() {
        assert!(from_str::<bool>("not json").is_err());
        assert!(from_str::<bool>("true trailing").is_err());
        assert!(from_str::<bool>("").is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, [1, 2, 3]);
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
    }
}
