//! Minimal offline stand-in for the `bytes` crate.
//!
//! `Bytes` is an immutable, cheaply-cloneable byte buffer (here backed by
//! an `Arc<[u8]>`); `BytesMut` is a growable builder with the little-endian
//! `put_*` family used by the ncdf codec.

use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    pub fn from_vec(data: Vec<u8>) -> Self {
        Self { data: data.into() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self::from_vec(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

/// Growable byte builder.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }
}

/// Byte-sink trait carrying the `put_*` family (matches the real crate,
/// where these methods live on `BufMut`, not on `BytesMut` inherently).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(unused_imports)]
    use crate::BufMut as _;

    #[test]
    fn builder_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(1);
        b.put_u32_le(0xdead_beef);
        b.put_slice(&[9, 9]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 7);
        assert_eq!(&frozen[1..5], &0xdead_beefu32.to_le_bytes());
        assert_eq!(frozen.to_vec()[5..], [9, 9]);
        let again = frozen.clone();
        assert_eq!(frozen, again);
    }
}
