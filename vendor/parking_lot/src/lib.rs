//! Minimal offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface this workspace uses is provided: `Mutex` and `RwLock`
//! with non-poisoning guards (a panic while holding the lock does not
//! poison it for later users, matching parking_lot semantics).

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison (parking_lot never poisons).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(p) => MutexGuard {
                inner: p.into_inner(),
            },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose guards ignore poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(p) => RwLockReadGuard {
                inner: p.into_inner(),
            },
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(p) => RwLockWriteGuard {
                inner: p.into_inner(),
            },
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
