//! Minimal offline stand-in for `rand` 0.8.
//!
//! Deterministic per seed (the workspace relies on seeded reproducibility),
//! uniform enough for the bounded random walks it drives. The generator is
//! SplitMix64 — full 64-bit period, passes basic equidistribution tests,
//! and is trivially seedable from a `u64`.

/// Construct a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Uniform in `[0, 1)`.
    fn gen_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        a + (b - a) * unit_f64(rng)
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty range");
                let span = (b as i128 - a as i128) as u128 + 1;
                (a as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard seeded generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up scramble so nearby seeds diverge immediately.
            let mut state = seed ^ 0x5851_f42d_4c95_7f2d;
            splitmix64(&mut state);
            Self { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

pub mod prelude {
    pub use super::{rngs::StdRng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5..=2.5);
            assert!((-2.5..=2.5).contains(&v));
            let w = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(3..=6u32);
            assert!((3..=6).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "inclusive bounds reachable");
    }
}
