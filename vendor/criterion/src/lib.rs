//! Minimal offline stand-in for `criterion`.
//!
//! Provides the macro/struct surface the bench targets use. Instead of a
//! statistical harness, each bench closure is smoke-run a handful of times
//! and the best wall-clock time printed — enough to compare hot paths by
//! eye and to keep `cargo test`/`cargo bench` compiling and running
//! offline.

use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration driver handed to the bench closure.
pub struct Bencher {
    iters: u64,
    best_nanos: u128,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed().as_nanos();
            if dt < self.best_nanos {
                self.best_nanos = dt;
            }
        }
    }
}

/// Named group of benches sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke harness always runs a
    /// fixed small number of iterations.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.criterion.iters,
            best_nanos: u128::MAX,
        };
        f(&mut b);
        if b.best_nanos != u128::MAX {
            println!(
                "bench {}/{}: best {:.3} ms over {} iters",
                self.name,
                id,
                b.best_nanos as f64 / 1e6,
                self.criterion.iters
            );
        }
        self
    }

    pub fn finish(self) {}
}

/// Top-level bench driver.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { iters: 3 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
