//! Minimal offline stand-in for `crossbeam`, providing the two pieces this
//! workspace uses: `thread::scope` (over `std::thread::scope`, which has
//! been stable since 1.63) and `channel::bounded` (an MPMC blocking queue
//! over `Mutex` + `Condvar`, since `std::sync::mpsc` receivers cannot be
//! cloned).

pub mod thread {
    /// Scope handle passed to spawned closures, mirroring crossbeam's API
    /// where every spawned closure receives `&Scope` (conventionally `|_|`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope; all spawned threads are joined before this
    /// returns. Unlike crossbeam (which reports child panics through the
    /// returned `Result`), an unjoined child panic propagates out of
    /// `std::thread::scope` directly — callers that `.expect()` the result
    /// still fail loudly, which is all this workspace needs.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; cloneable (MPMC).
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half; cloneable (MPMC), unlike `std::sync::mpsc`.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// The message could not be delivered: all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create a bounded blocking channel with capacity `cap` (> 0).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            cap > 0,
            "this stand-in does not support rendezvous channels"
        );
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(cap),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Block until there is room, then enqueue. Errors if every
        /// receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.chan.cap {
                    st.queue.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self.chan.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives. Drains queued messages even after
        /// the last sender is gone; errors only on empty-and-disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive; `None` when empty (connected or not).
        pub fn try_recv(&self) -> Option<T> {
            let mut st = self.chan.state.lock().unwrap();
            let v = st.queue.pop_front();
            if v.is_some() {
                self.chan.not_full.notify_one();
            }
            v
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().receivers += 1;
            Self {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers so they observe the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake senders so blocked sends fail instead of hanging.
                self.chan.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, RecvError};
    use super::thread;

    #[test]
    fn scope_joins_and_returns() {
        let mut data = vec![0u64; 4];
        thread::scope(|s| {
            let mut rest = data.as_mut_slice();
            let mut handles = Vec::new();
            for i in 0..4u64 {
                let (head, tail) = rest.split_at_mut(1);
                rest = tail;
                handles.push(s.spawn(move |_| head[0] = i + 1));
            }
            for h in handles {
                h.join().unwrap();
            }
        })
        .unwrap();
        assert_eq!(data, [1, 2, 3, 4]);
    }

    #[test]
    fn channel_drains_after_senders_drop() {
        let (tx, rx) = bounded::<u32>(4);
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded::<u32>(1);
        thread::scope(|s| {
            let h = s.spawn(move |_| {
                tx.send(1).unwrap();
                tx.send(2).unwrap(); // blocks until the main thread drains
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap();
        })
        .unwrap();
    }

    #[test]
    fn cloned_receivers_share_stream() {
        let (tx, rx) = bounded::<u32>(2);
        let rx2 = rx.clone();
        tx.send(7).unwrap();
        assert_eq!(rx2.recv(), Ok(7));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }
}
