//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! JSON-shaped [`Value`] tree: `Serialize` lowers a type into a `Value`,
//! `Deserialize` lifts it back. The derive macros (re-exported from the
//! vendored `serde_derive`) generate those two methods for named-field
//! structs and for enums with unit/struct variants — exactly the shapes
//! this workspace derives. `serde_json` then prints/parses the tree.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, VecDeque};

/// JSON-shaped data tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are carried as `f64` (adequate for this workspace:
    /// every serialized integer is far below 2^53).
    Num(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map; duplicate keys resolve to the first entry.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map field lookup; `None` for non-maps and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a path-less human-readable message.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    pub fn missing_field(ty: &str, field: &str) -> Self {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    pub fn type_mismatch(expected: &str, got: &Value) -> Self {
        let shape = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        };
        DeError(format!("expected {expected}, got {shape}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower a value into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Lift a value back out of the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// A `Value` round-trips through itself, so callers can parse arbitrary
// JSON into the tree and walk it dynamically (schema validators etc.).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// --- primitives -----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::type_mismatch("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(DeError::type_mismatch("number", other)),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => {
                        let rounded = n.round();
                        if !n.is_finite() || (rounded - n).abs() > 1e-6 {
                            return Err(DeError::custom(format!(
                                "expected integer, got {n}"
                            )));
                        }
                        if rounded < <$t>::MIN as f64 || rounded > <$t>::MAX as f64 {
                            return Err(DeError::custom(format!(
                                "integer {rounded} out of range for {}",
                                stringify!($t)
                            )));
                        }
                        Ok(rounded as $t)
                    }
                    other => Err(DeError::type_mismatch("integer", other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// --- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::type_mismatch("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(VecDeque::from)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::type_mismatch("map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(String::from_value(&"hi".to_value()), Ok(String::from("hi")));
        assert!(u64::from_value(&Value::Num(1.5)).is_err());
        assert!(u8::from_value(&Value::Num(300.0)).is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let a = [1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(<[f64; 4]>::from_value(&a.to_value()), Ok(a));
        assert!(<[f64; 4]>::from_value(&[1.0f64].to_value()).is_err());
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::Num(5.0)), Ok(Some(5)));
    }

    #[test]
    fn map_get_finds_first() {
        let m = Value::Map(vec![
            ("a".into(), Value::Num(1.0)),
            ("a".into(), Value::Num(2.0)),
        ]);
        assert_eq!(m.get("a"), Some(&Value::Num(1.0)));
        assert_eq!(m.get("b"), None);
    }
}
