//! Minimal offline stand-in for `proptest`.
//!
//! Same authoring surface (`proptest!`, `prop_assert*`, strategies,
//! `prop_oneof!`, `any`, collections, flat-map), different engine: inputs
//! are drawn from a deterministic per-test seeded generator and failures
//! are reported with the case index — there is **no shrinking**. Failures
//! reproduce exactly by re-running the same test binary because the seed
//! is derived from the test's name.

pub mod rng {
    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod test_runner {
    use super::rng::TestRng;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// A test-case verdict other than success.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    fn seed_for(name: &str) -> u64 {
        // FNV-1a over the test name: deterministic across runs and
        // platforms, distinct per test.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drive one `proptest!` function: `config.cases` samples from a
    /// name-seeded generator; the first failure panics with the case
    /// index and seed.
    pub fn run_cases<F>(config: Config, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = seed_for(name);
        let mut rng = TestRng::new(seed);
        for i in 0..config.cases {
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest `{name}` failed at case {i}/{} (seed {seed:#x}): {msg}",
                    config.cases
                ),
            }
        }
    }
}

pub mod strategy {
    use super::rng::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Object-safe erased strategy.
    trait DynStrategy<T> {
        fn sample_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<T>>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.inner.sample_dyn(rng)
        }
    }

    /// Uniform choice between erased alternatives (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].sample(rng)
        }
    }

    /// A `Vec` of strategies samples one value from each element.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.sample(rng)).collect()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident / $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A / 0);
    tuple_strategy!(A / 0, B / 1);
    tuple_strategy!(A / 0, B / 1, C / 2);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
    tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);
    tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8
    );
    tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9
    );
    tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9,
        K / 10
    );
    tuple_strategy!(
        A / 0,
        B / 1,
        C / 2,
        D / 3,
        E / 4,
        F / 5,
        G / 6,
        H / 7,
        I / 8,
        J / 9,
        K / 10,
        L / 11
    );

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty range strategy");
                    a + (b - a) * rng.unit_f64() as $t
                }
            }
        )+};
    }

    float_range_strategy!(f32, f64);

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty range strategy");
                    let span = (b as i128 - a as i128) as u128 + 1;
                    (a as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `&'static str` is a pattern strategy: `"[class]{m,n}"` generates a
    /// random string over the character class; any other string is taken
    /// literally. Subset of the regex syntax real proptest accepts.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            match parse_pattern(self) {
                Some((chars, lo, hi)) => {
                    let len = lo + rng.below(hi - lo + 1);
                    (0..len).map(|_| chars[rng.below(chars.len())]).collect()
                }
                None => (*self).to_owned(),
            }
        }
    }

    /// Parse `[class]{m,n}` / `[class]{m}` into (alphabet, m, n).
    fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                if a <= b {
                    alphabet.extend((a..=b).filter_map(char::from_u32));
                    i += 3;
                    continue;
                }
            }
            alphabet.push(class[i]);
            i += 1;
        }
        if alphabet.is_empty() {
            return None;
        }
        let quant = rest[close + 1..]
            .strip_prefix('{')?
            .strip_suffix('}')?
            .to_owned();
        let (lo, hi) = match quant.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
            None => {
                let n = quant.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }
}

pub mod arbitrary {
    use super::rng::TestRng;
    use super::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only, spanning a wide magnitude band.
            let mag = rng.unit_f64() * 2e9 - 1e9;
            mag * rng.unit_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xd800) as u32).unwrap_or('?')
        }
    }

    /// Strategy yielding `A::arbitrary` values.
    pub struct AnyStrategy<A> {
        _marker: PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn sample(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A` (`any::<u8>()` etc.).
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    use super::rng::TestRng;
    use super::strategy::Strategy;
    use std::collections::BTreeMap;

    /// Inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below(self.hi - self.lo + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Bounded attempts: key collisions may undershoot the target,
            // which the band's lower bound tolerates in practice (0 here).
            for _ in 0..target.saturating_mul(4) {
                if map.len() >= target {
                    break;
                }
                map.insert(self.key.sample(rng), self.value.sample(rng));
            }
            map
        }
    }

    /// `BTreeMap` with `size` entries (best effort under key collisions).
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// An index into a collection of as-yet-unknown length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Resolve against a concrete length (> 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }

    /// Uniform choice of one element of `options`.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }

    /// Strategy picking uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select { options }
    }
}

pub mod prelude {
    pub use super::arbitrary::{any, Arbitrary};
    pub use super::sample;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
}

/// Define seeded random-input tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test] // optional; added automatically when missing
///     fn holds(x in 0u32..100, ys in prop::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases($cfg, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failure fails only the current case
/// with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {{
        let condition_holds: bool = $cond;
        if !condition_holds {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            ),
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l == *r,
                "{} (left: {:?}, right: {:?})",
                ::std::format!($($fmt)+), l, r
            ),
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => $crate::prop_assert!(
                *l != *r,
                "assertion failed: `{} != {}` (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            ),
        }
    };
}

/// Uniform choice between strategy arms yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_strategy() {
        let mut rng = crate::rng::TestRng::new(3);
        for _ in 0..50 {
            let s = Strategy::sample(&"[a-c_]{1,4}", &mut rng);
            assert!((1..=4).contains(&s.len()), "len of {s:?}");
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '_')), "{s:?}");
        }
        let lit = Strategy::sample(&"plain", &mut rng);
        assert_eq!(lit, "plain");
    }

    #[test]
    fn oneof_and_collections() {
        let mut rng = crate::rng::TestRng::new(9);
        let strat = prop::collection::vec(prop_oneof![Just(1u32), 5u32..8], 2..6);
        for _ in 0..50 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 1 || (5..8).contains(&x)));
        }
        let m = Strategy::sample(
            &prop::collection::btree_map("[a-z]{1,3}", 0u8..10, 0..4),
            &mut rng,
        );
        assert!(m.len() < 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]
        #[test]
        fn macro_end_to_end(
            x in 1u64..100,
            (lo, hi) in (0.0f64..1.0, 2.0f64..3.0),
            idx in any::<prop::sample::Index>(),
            flag in any::<bool>(),
        ) {
            if flag {
                // Early success exits are allowed mid-body.
                return Ok(());
            }
            prop_assert!((1..100).contains(&x));
            prop_assert!(lo < hi, "bands must be ordered: {lo} vs {hi}");
            prop_assert_eq!(idx.index(1), 0);
            prop_assert_ne!(lo, hi);
        }
    }

    proptest! {
        #[test]
        fn flat_map_composes(v in (1usize..5).prop_flat_map(|n| {
            prop::collection::vec(0u8..10, n..=n)
        })) {
            prop_assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_case_panics_with_index() {
        crate::test_runner::run_cases(ProptestConfig::with_cases(3), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
