//! Derive macros for the vendored `serde` stand-in.
//!
//! Hand-rolled token walking (no `syn`/`quote` — the build is offline):
//! supports named-field structs and enums whose variants are unit or
//! struct-like, which covers every `#[derive(Serialize, Deserialize)]` in
//! this workspace. Anything fancier (tuple structs, generics, tuple
//! variants, serde attributes) panics with a clear message at expansion
//! time rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::Struct(fields) => gen_struct_serialize(&item.name, fields),
        Shape::Enum(variants) => gen_enum_serialize(&item.name, variants),
    };
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item.shape {
        Shape::Struct(fields) => gen_struct_deserialize(&item.name, fields),
        Shape::Enum(variants) => gen_enum_deserialize(&item.name, variants),
    };
    code.parse().expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// Named fields, declaration order.
    Struct(Vec<String>),
    /// Variants: name plus named fields (empty = unit variant).
    Enum(Vec<(String, Vec<String>)>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, got {other:?}"),
    };

    let body = loop {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde derive stand-in: generic type `{name}` is not supported")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive stand-in: tuple struct `{name}` is not supported")
            }
            Some(_) => continue,
            None => panic!("serde derive: `{name}` has no body"),
        }
    };

    let shape = match kind.as_str() {
        "struct" => Shape::Struct(parse_named_fields(body, &name)),
        "enum" => Shape::Enum(parse_variants(body, &name)),
        other => panic!("serde derive: cannot derive for `{other}`"),
    };
    Item { name, shape }
}

/// Parse `{ a: T, b: U, ... }` contents into field names.
fn parse_named_fields(stream: TokenStream, ty: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: unexpected token in `{ty}` fields: {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{ty}.{field}`, got {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    depth += 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    depth -= 1;
                    toks.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    toks.next();
                    break;
                }
                Some(_) => {
                    toks.next();
                }
                None => break,
            }
        }
        fields.push(field);
    }
    fields
}

/// Parse enum body into `(variant, fields)` pairs.
fn parse_variants(stream: TokenStream, ty: &str) -> Vec<(String, Vec<String>)> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                _ => break,
            }
        }
        let variant = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: unexpected token in enum `{ty}`: {other:?}"),
        };
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                toks.next();
                parse_named_fields(inner, ty)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde derive stand-in: tuple variant `{ty}::{variant}` is not supported")
            }
            _ => Vec::new(),
        };
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            }
        }
        variants.push((variant, fields));
    }
    variants
}

fn gen_struct_serialize(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "#[automatically_derived]\n#[allow(unused, clippy::all)]\nimpl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Value::Map(::std::vec![{entries}])\n\
           }}\n\
         }}"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[String]) -> String {
    let inits: String = fields.iter().map(|f| field_init(name, f, "v")).collect();
    format!(
        "#[automatically_derived]\n#[allow(unused, clippy::all)]\nimpl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             ::std::result::Result::Ok({name} {{ {inits} }})\n\
           }}\n\
         }}"
    )
}

fn field_init(ty: &str, field: &str, source: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_value({source}.get(\"{field}\")\
           .ok_or_else(|| ::serde::DeError::missing_field(\"{ty}\", \"{field}\"))?)?,"
    )
}

fn gen_enum_serialize(name: &str, variants: &[(String, Vec<String>)]) -> String {
    let arms: String = variants
        .iter()
        .map(|(variant, fields)| {
            if fields.is_empty() {
                format!(
                    "{name}::{variant} => \
                       ::serde::Value::Str(::std::string::String::from(\"{variant}\")),"
                )
            } else {
                let binds = fields.join(", ");
                let entries: String = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{f}\"), \
                               ::serde::Serialize::to_value({f})),"
                        )
                    })
                    .collect();
                format!(
                    "{name}::{variant} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                       (::std::string::String::from(\"{variant}\"), \
                        ::serde::Value::Map(::std::vec![{entries}]))]),"
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n#[allow(unused, clippy::all)]\nimpl ::serde::Serialize for {name} {{\n\
           fn to_value(&self) -> ::serde::Value {{\n\
             match self {{ {arms} }}\n\
           }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[(String, Vec<String>)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, fields)| fields.is_empty())
        .map(|(variant, _)| {
            format!("\"{variant}\" => return ::std::result::Result::Ok({name}::{variant}),")
        })
        .collect();
    let struct_arms: String = variants
        .iter()
        .filter(|(_, fields)| !fields.is_empty())
        .map(|(variant, fields)| {
            let inits: String = fields.iter().map(|f| field_init(name, f, "body")).collect();
            format!(
                "\"{variant}\" => \
                   return ::std::result::Result::Ok({name}::{variant} {{ {inits} }}),"
            )
        })
        .collect();
    format!(
        "#[automatically_derived]\n#[allow(unused, clippy::all)]\nimpl ::serde::Deserialize for {name} {{\n\
           fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             if let ::serde::Value::Str(tag) = v {{\n\
               match tag.as_str() {{ {unit_arms} _ => {{}} }}\n\
             }}\n\
             if let ::serde::Value::Map(entries) = v {{\n\
               if let ::std::option::Option::Some((tag, body)) = entries.first() {{\n\
                 match tag.as_str() {{ {struct_arms} _ => {{}} }}\n\
               }}\n\
             }}\n\
             ::std::result::Result::Err(::serde::DeError::custom(\
               ::std::format!(\"unknown {name} variant: {{v:?}}\")))\n\
           }}\n\
         }}"
    )
}
