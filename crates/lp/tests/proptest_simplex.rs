//! Property tests for the simplex solver.
//!
//! Strategy: generate random small LPs that are feasible *by construction*
//! (constraints are anchored around a known interior point), then check:
//! 1. the solver reports an optimum (never infeasible),
//! 2. the reported point is feasible,
//! 3. no random feasible sample beats the reported optimum, and
//! 4. for pure-≤ bounded problems, brute-force vertex enumeration agrees.

use lp::{Problem, Relation, Solution};
use proptest::prelude::*;

const TOL: f64 = 1e-6;

/// Random LP in 2–3 variables, guaranteed feasible at `anchor`.
#[derive(Debug, Clone)]
struct RandomLp {
    problem: Problem,
    anchor: Vec<f64>,
}

fn arb_feasible_lp() -> impl Strategy<Value = RandomLp> {
    let nvars = 2usize..4;
    nvars.prop_flat_map(|n| {
        let obj = prop::collection::vec(-5.0f64..5.0, n..=n);
        let anchor = prop::collection::vec(0.5f64..4.0, n..=n);
        let rows = prop::collection::vec(
            (
                prop::collection::vec(-3.0f64..3.0, n..=n),
                0.1f64..5.0, // slack margin at anchor
                any::<bool>(),
            ),
            1..5,
        );
        (obj, anchor, rows).prop_map(|(obj, anchor, rows)| {
            let mut p = Problem::minimize(&obj);
            // Box everything so the LP is always bounded.
            for j in 0..obj.len() {
                p.set_bounds(j, 0.0, 10.0);
            }
            for (coeffs, margin, ge) in rows {
                let at_anchor: f64 = coeffs.iter().zip(&anchor).map(|(a, b)| a * b).sum();
                if ge {
                    // a·x ≥ at_anchor − margin keeps the anchor feasible.
                    p.add_constraint(&coeffs, Relation::Ge, at_anchor - margin);
                } else {
                    p.add_constraint(&coeffs, Relation::Le, at_anchor + margin);
                }
            }
            RandomLp { problem: p, anchor }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn anchored_lps_solve_to_feasible_optima(lp in arb_feasible_lp()) {
        prop_assert!(lp.problem.is_feasible(&lp.anchor, TOL), "anchor must be feasible");
        match lp.problem.solve().unwrap() {
            Solution::Optimal { x, objective } => {
                prop_assert!(lp.problem.is_feasible(&x, TOL), "optimum must be feasible: {x:?}");
                // The anchor is feasible, so the optimum cannot exceed it.
                let anchor_obj = lp.problem.objective_at(&lp.anchor);
                prop_assert!(objective <= anchor_obj + TOL,
                    "optimum {objective} worse than feasible anchor {anchor_obj}");
            }
            Solution::Infeasible => prop_assert!(false, "feasible-by-construction LP reported infeasible"),
            Solution::Unbounded => prop_assert!(false, "boxed LP reported unbounded"),
        }
    }

    #[test]
    fn no_random_feasible_point_beats_the_optimum(
        lp in arb_feasible_lp(),
        samples in prop::collection::vec(prop::collection::vec(0.0f64..10.0, 3), 32),
    ) {
        if let Solution::Optimal { objective, .. } = lp.problem.solve().unwrap() {
            let n = lp.problem.num_vars();
            for s in samples {
                let pt = &s[..n];
                if lp.problem.is_feasible(pt, 0.0) {
                    let v = lp.problem.objective_at(pt);
                    prop_assert!(objective <= v + TOL,
                        "sampled feasible point {pt:?} (obj {v}) beats reported optimum {objective}");
                }
            }
        }
    }

    #[test]
    fn two_var_le_problems_match_vertex_enumeration(
        obj in prop::collection::vec(-4.0f64..4.0, 2),
        rows in prop::collection::vec((0.1f64..3.0, 0.1f64..3.0, 1.0f64..10.0), 1..5),
    ) {
        // min obj·x s.t. positive-coefficient ≤ rows and x in [0,10]².
        // Always feasible (origin) and bounded (box). The optimum of an LP
        // lies at a vertex: enumerate all pairwise intersections of active
        // boundaries and compare.
        let mut p = Problem::minimize(&obj);
        p.set_bounds(0, 0.0, 10.0);
        p.set_bounds(1, 0.0, 10.0);
        let mut lines: Vec<(f64, f64, f64)> = vec![
            (1.0, 0.0, 0.0), (0.0, 1.0, 0.0),   // x = 0, y = 0
            (1.0, 0.0, 10.0), (0.0, 1.0, 10.0), // x = 10, y = 10
        ];
        for &(a, b, c) in &rows {
            p.add_constraint(&[a, b], Relation::Le, c);
            lines.push((a, b, c));
        }
        let mut best = f64::INFINITY;
        for i in 0..lines.len() {
            for j in (i + 1)..lines.len() {
                let (a1, b1, c1) = lines[i];
                let (a2, b2, c2) = lines[j];
                let det = a1 * b2 - a2 * b1;
                if det.abs() < 1e-12 { continue; }
                let x = (c1 * b2 - c2 * b1) / det;
                let y = (a1 * c2 - a2 * c1) / det;
                if p.is_feasible(&[x, y], 1e-7) {
                    best = best.min(obj[0] * x + obj[1] * y);
                }
            }
        }
        match p.solve().unwrap() {
            Solution::Optimal { objective, .. } => {
                prop_assert!((objective - best).abs() < 1e-5,
                    "simplex {objective} vs vertex enumeration {best}");
            }
            other => prop_assert!(false, "expected optimum, got {other:?}"),
        }
    }
}
