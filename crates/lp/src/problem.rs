#![allow(clippy::needless_range_loop)] // dense-tableau code reads better with explicit indices

//! Problem builder: objective, constraints, variable bounds.

use crate::simplex::{solve_standard, LpError, Solution};
use crate::EPS;

/// Direction of one linear constraint `a·x REL b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// One linear constraint over the problem's structural variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Dense coefficient row, one entry per structural variable.
    pub coeffs: Vec<f64>,
    /// Constraint direction.
    pub rel: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: minimize `c·x` subject to constraints and bounds.
///
/// Variables default to `[0, +∞)`. Use [`Problem::set_bounds`] for general
/// bounds including free (`-∞, +∞`) variables.
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    pub(crate) objective: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) lower: Vec<f64>,
    pub(crate) upper: Vec<f64>,
    /// True when the user asked to maximize: we minimize the negated
    /// objective internally and negate the reported optimum back.
    negate_reported_objective: bool,
}

impl Problem {
    /// New minimization problem with the given objective coefficients;
    /// the coefficient count fixes the number of structural variables.
    pub fn minimize(objective: &[f64]) -> Self {
        let n = objective.len();
        Problem {
            objective: objective.to_vec(),
            constraints: Vec::new(),
            lower: vec![0.0; n],
            upper: vec![f64::INFINITY; n],
            negate_reported_objective: false,
        }
    }

    /// New maximization problem (internally negated: simplex minimizes).
    pub fn maximize(objective: &[f64]) -> Self {
        let negated: Vec<f64> = objective.iter().map(|&c| -c).collect();
        let mut p = Self::minimize(&negated);
        p.negate_reported_objective = true;
        p
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Add a constraint `coeffs·x REL rhs`.
    ///
    /// # Panics
    /// If `coeffs.len()` differs from the variable count, or any value is
    /// non-finite (a non-finite coefficient always indicates a bug in the
    /// caller's model construction).
    pub fn add_constraint(&mut self, coeffs: &[f64], rel: Relation, rhs: f64) {
        assert_eq!(
            coeffs.len(),
            self.num_vars(),
            "constraint arity mismatch: {} coeffs for {} vars",
            coeffs.len(),
            self.num_vars()
        );
        assert!(
            coeffs.iter().all(|c| c.is_finite()) && rhs.is_finite(),
            "constraint coefficients and rhs must be finite"
        );
        self.constraints.push(Constraint {
            coeffs: coeffs.to_vec(),
            rel,
            rhs,
        });
    }

    /// Set bounds `lo ≤ x[var] ≤ hi`. Use `f64::NEG_INFINITY` /
    /// `f64::INFINITY` for unbounded sides.
    ///
    /// # Panics
    /// If `var` is out of range, either bound is NaN, or `lo > hi`.
    pub fn set_bounds(&mut self, var: usize, lo: f64, hi: f64) {
        assert!(var < self.num_vars(), "variable {var} out of range");
        assert!(!lo.is_nan() && !hi.is_nan(), "bounds must not be NaN");
        assert!(lo <= hi, "lower bound {lo} exceeds upper bound {hi}");
        self.lower[var] = lo;
        self.upper[var] = hi;
    }

    /// Fix `x[var] = value`.
    pub fn fix(&mut self, var: usize, value: f64) {
        self.set_bounds(var, value, value);
    }

    /// True when the problem was stated as a maximization.
    pub fn is_maximize(&self) -> bool {
        self.negate_reported_objective
    }

    /// Objective coefficients as the user stated them (undoing the
    /// internal negation of maximization problems).
    pub fn user_objective(&self) -> Vec<f64> {
        if self.negate_reported_objective {
            self.objective.iter().map(|&c| -c).collect()
        } else {
            self.objective.clone()
        }
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Bounds of variable `var` as `(lower, upper)`.
    ///
    /// # Panics
    /// If `var` is out of range.
    pub fn bounds(&self, var: usize) -> (f64, f64) {
        (self.lower[var], self.upper[var])
    }

    /// Solve the program.
    pub fn solve(&self) -> Result<Solution, LpError> {
        let std = StandardForm::from_problem(self)?;
        let sol = solve_standard(&std.c, &std.a, &std.b, std.n_structural_cols)?;
        Ok(std.recover(self, sol))
    }

    /// Check a candidate point against all constraints and bounds within
    /// tolerance `tol` — used by callers and tests to validate solutions.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (j, &xj) in x.iter().enumerate() {
            if xj < self.lower[j] - tol || xj > self.upper[j] + tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, b)| a * b).sum();
            match c.rel {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }

    /// Objective value at `x` (as the user stated it, honoring
    /// maximization sign).
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        let v: f64 = self.objective.iter().zip(x).map(|(c, x)| c * x).sum();
        if self.negate_reported_objective {
            -v
        } else {
            v
        }
    }

    pub(crate) fn reported_objective(&self, internal: f64) -> f64 {
        if self.negate_reported_objective {
            -internal
        } else {
            internal
        }
    }
}

/// Standard-form translation: min c·y, A y = b, y ≥ 0, b ≥ 0.
///
/// Bound handling:
/// - finite lower `l`: substitute `x = l + y` (shift folded into rhs),
/// - `l = −∞`, finite upper `u`: substitute `x = u − y` (sign flip),
/// - free (`−∞, +∞`): split `x = y⁺ − y⁻`,
/// - finite upper after shifting: extra row `y ≤ u − l`.
struct StandardForm {
    c: Vec<f64>,
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    n_structural_cols: usize,
    /// For each original variable: how to rebuild x from the y vector.
    recover_plan: Vec<VarPlan>,
}

enum VarPlan {
    /// x = offset + y[col]
    Shifted { col: usize, offset: f64 },
    /// x = offset − y[col]
    Flipped { col: usize, offset: f64 },
    /// x = y[pos] − y[neg]
    Split { pos: usize, neg: usize },
}

impl StandardForm {
    fn from_problem(p: &Problem) -> Result<Self, LpError> {
        let n = p.num_vars();
        let mut plan = Vec::with_capacity(n);
        let mut ncols = 0usize;
        // Extra ≤ rows created by finite upper bounds.
        let mut ub_rows: Vec<(usize, f64)> = Vec::new();

        for j in 0..n {
            let (lo, hi) = (p.lower[j], p.upper[j]);
            if lo.is_finite() {
                plan.push(VarPlan::Shifted {
                    col: ncols,
                    offset: lo,
                });
                if hi.is_finite() {
                    ub_rows.push((ncols, hi - lo));
                }
                ncols += 1;
            } else if hi.is_finite() {
                plan.push(VarPlan::Flipped {
                    col: ncols,
                    offset: hi,
                });
                ncols += 1;
            } else {
                plan.push(VarPlan::Split {
                    pos: ncols,
                    neg: ncols + 1,
                });
                ncols += 2;
            }
        }

        // Objective over y, plus the constant from offsets (dropped: the
        // solver minimizes the variable part; we report c·x directly from
        // the recovered x instead, so no constant bookkeeping is needed).
        let mut c = vec![0.0; ncols];
        for j in 0..n {
            let cj = p.objective[j];
            match plan[j] {
                VarPlan::Shifted { col, .. } => c[col] += cj,
                VarPlan::Flipped { col, .. } => c[col] -= cj,
                VarPlan::Split { pos, neg } => {
                    c[pos] += cj;
                    c[neg] -= cj;
                }
            }
        }

        let mut a: Vec<Vec<f64>> = Vec::new();
        let mut b: Vec<f64> = Vec::new();

        // Build rows with slack/surplus columns appended after structural
        // columns. First count slacks.
        let mut n_slack = 0usize;
        for cst in &p.constraints {
            if cst.rel != Relation::Eq {
                n_slack += 1;
            }
        }
        n_slack += ub_rows.len();

        let total_cols = ncols + n_slack;
        let mut c_full = c;
        c_full.resize(total_cols, 0.0);

        let mut slack_idx = ncols;
        for cst in &p.constraints {
            let mut row = vec![0.0; total_cols];
            let mut rhs = cst.rhs;
            for j in 0..n {
                let aij = cst.coeffs[j];
                if aij == 0.0 {
                    continue;
                }
                match plan[j] {
                    VarPlan::Shifted { col, offset } => {
                        row[col] += aij;
                        rhs -= aij * offset;
                    }
                    VarPlan::Flipped { col, offset } => {
                        row[col] -= aij;
                        rhs -= aij * offset;
                    }
                    VarPlan::Split { pos, neg } => {
                        row[pos] += aij;
                        row[neg] -= aij;
                    }
                }
            }
            match cst.rel {
                Relation::Le => {
                    row[slack_idx] = 1.0;
                    slack_idx += 1;
                }
                Relation::Ge => {
                    row[slack_idx] = -1.0;
                    slack_idx += 1;
                }
                Relation::Eq => {}
            }
            // Standard form wants b ≥ 0.
            if rhs < 0.0 {
                for v in &mut row {
                    *v = -*v;
                }
                rhs = -rhs;
            }
            a.push(row);
            b.push(rhs);
        }

        for &(col, ub) in &ub_rows {
            if ub < -EPS {
                // lo > hi was already rejected by set_bounds; defensive.
                return Err(LpError::InvalidBounds);
            }
            let mut row = vec![0.0; total_cols];
            row[col] = 1.0;
            row[slack_idx] = 1.0;
            slack_idx += 1;
            a.push(row);
            b.push(ub.max(0.0));
        }
        debug_assert_eq!(slack_idx, total_cols);

        Ok(StandardForm {
            c: c_full,
            a,
            b,
            n_structural_cols: ncols,
            recover_plan: plan,
        })
    }

    fn recover(&self, p: &Problem, sol: Solution) -> Solution {
        match sol {
            Solution::Optimal { x: y, .. } => {
                let x: Vec<f64> = self
                    .recover_plan
                    .iter()
                    .map(|plan| match *plan {
                        VarPlan::Shifted { col, offset } => offset + y[col],
                        VarPlan::Flipped { col, offset } => offset - y[col],
                        VarPlan::Split { pos, neg } => y[pos] - y[neg],
                    })
                    .collect();
                let internal: f64 = p.objective.iter().zip(&x).map(|(c, x)| c * x).sum();
                Solution::Optimal {
                    objective: p.reported_objective(internal),
                    x,
                }
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_mismatch_panics() {
        let mut p = Problem::minimize(&[1.0, 2.0]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.add_constraint(&[1.0], Relation::Le, 1.0)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn feasibility_checker() {
        let mut p = Problem::minimize(&[1.0, 1.0]);
        p.add_constraint(&[1.0, 1.0], Relation::Le, 2.0);
        p.set_bounds(0, 0.0, 1.0);
        assert!(p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[1.5, 1.0], 1e-9)); // bound violated
        assert!(!p.is_feasible(&[1.0, 1.5], 1e-9)); // constraint violated
        assert!(!p.is_feasible(&[1.0], 1e-9)); // arity
    }

    #[test]
    fn objective_at_honors_direction() {
        let p = Problem::minimize(&[2.0]);
        assert_eq!(p.objective_at(&[3.0]), 6.0);
        let q = Problem::maximize(&[2.0]);
        assert_eq!(q.objective_at(&[3.0]), 6.0);
    }
}
