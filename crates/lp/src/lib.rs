//! Linear programming by two-phase primal simplex.
//!
//! The paper's optimization-based decision algorithm formulates processor
//! allocation and output frequency as a linear program and solves it with
//! GLPK every decision epoch. This crate is the from-scratch stand-in: a
//! dense two-phase primal simplex with general variable bounds, Dantzig
//! pricing with a Bland's-rule fallback for anti-cycling, and explicit
//! infeasible/unbounded verdicts.
//!
//! Problems in this workspace are tiny (a handful of variables and
//! constraints, solved thousands of times across a DES run), so the dense
//! tableau is the right representation: no sparsity bookkeeping, fully
//! deterministic.
//!
//! # Example — the paper's shape of problem
//!
//! ```
//! use lp::{Problem, Relation, Solution};
//!
//! // min t  s.t.  t + 2 z ≤ 10,  t − 3 z ≥ −1,  0.1 ≤ z ≤ 1,  t ≥ 0.5
//! let mut p = Problem::minimize(&[1.0, 0.0]); // vars: [t, z]
//! p.add_constraint(&[1.0, 2.0], Relation::Le, 10.0);
//! p.add_constraint(&[1.0, -3.0], Relation::Ge, -1.0);
//! p.set_bounds(0, 0.5, f64::INFINITY);
//! p.set_bounds(1, 0.1, 1.0);
//!
//! match p.solve().unwrap() {
//!     Solution::Optimal { x, objective } => {
//!         assert!((objective - 0.5).abs() < 1e-9);
//!         assert!(x[0] >= 0.5 - 1e-9);
//!     }
//!     other => panic!("expected optimum, got {other:?}"),
//! }
//! ```

mod format;
mod problem;
mod simplex;

pub use problem::{Constraint, Problem, Relation};
pub use simplex::{LpError, Solution};

/// Numerical tolerance used throughout the solver (pivot thresholds,
/// feasibility checks, phase-1 acceptance).
pub const EPS: f64 = 1e-9;
