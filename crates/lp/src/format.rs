//! CPLEX-LP text rendering of a [`Problem`].
//!
//! GLPK users inspect their models as `.lp` files; this gives our solver
//! the same debuggability — `Problem::to_lp_format` renders any program
//! in the standard CPLEX LP text format, loadable by GLPK/CBC/CPLEX for
//! cross-checking our simplex against reference solvers.

use crate::{Problem, Relation};
use std::fmt::Write as _;

impl Problem {
    /// Render in CPLEX LP format. Variables are named `x0, x1, …` in
    /// declaration order.
    pub fn to_lp_format(&self) -> String {
        let mut out = String::new();
        out.push_str(if self.is_maximize() {
            "Maximize\n obj:"
        } else {
            "Minimize\n obj:"
        });
        write_linear(&mut out, &self.user_objective());
        out.push_str("\nSubject To\n");
        for (i, c) in self.constraints().iter().enumerate() {
            let _ = write!(out, " c{i}:");
            write_linear(&mut out, &c.coeffs);
            let rel = match c.rel {
                Relation::Le => "<=",
                Relation::Ge => ">=",
                Relation::Eq => "=",
            };
            let _ = writeln!(out, " {rel} {}", fmt_num(c.rhs));
        }
        out.push_str("Bounds\n");
        for j in 0..self.num_vars() {
            let (lo, hi) = self.bounds(j);
            match (lo.is_finite(), hi.is_finite()) {
                (true, true) if lo == hi => {
                    let _ = writeln!(out, " x{j} = {}", fmt_num(lo));
                }
                (true, true) => {
                    let _ = writeln!(out, " {} <= x{j} <= {}", fmt_num(lo), fmt_num(hi));
                }
                (true, false) => {
                    // The LP-format default is x >= 0; spell non-defaults.
                    if lo != 0.0 {
                        let _ = writeln!(out, " x{j} >= {}", fmt_num(lo));
                    }
                }
                (false, true) => {
                    let _ = writeln!(out, " -inf <= x{j} <= {}", fmt_num(hi));
                }
                (false, false) => {
                    let _ = writeln!(out, " x{j} free");
                }
            }
        }
        out.push_str("End\n");
        out
    }
}

fn write_linear(out: &mut String, coeffs: &[f64]) {
    let mut any = false;
    for (j, &c) in coeffs.iter().enumerate() {
        if c == 0.0 {
            continue;
        }
        any = true;
        if c < 0.0 {
            let _ = write!(out, " - {} x{j}", fmt_num(-c));
        } else {
            let _ = write!(out, " + {} x{j}", fmt_num(c));
        }
    }
    if !any {
        out.push_str(" 0 x0");
    }
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_the_papers_lp_shape() {
        // min t s.t. t + 2z − 10y ≤ 0, t − 5z ≥ 0, y − z ≤ 0,
        // 1.2 ≤ t ≤ 40, 0.1 ≤ z ≤ 1, 0 ≤ y ≤ 1.
        let mut p = Problem::minimize(&[1.0, 0.0, 0.0]);
        p.add_constraint(&[1.0, 2.0, -10.0], Relation::Le, 0.0);
        p.add_constraint(&[1.0, -5.0, 0.0], Relation::Ge, 0.0);
        p.add_constraint(&[0.0, -1.0, 1.0], Relation::Le, 0.0);
        p.set_bounds(0, 1.2, 40.0);
        p.set_bounds(1, 0.1, 1.0);
        p.set_bounds(2, 0.0, 1.0);
        let text = p.to_lp_format();
        assert!(text.starts_with("Minimize\n obj: + 1 x0\n"));
        assert!(text.contains("c0: + 1 x0 + 2 x1 - 10 x2 <= 0"));
        assert!(text.contains("c1: + 1 x0 - 5 x1 >= 0"));
        assert!(text.contains("1.2 <= x0 <= 40"));
        assert!(text.contains("0.1 <= x1 <= 1"));
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn maximize_free_and_fixed_variables() {
        let mut p = Problem::maximize(&[3.0, -2.0]);
        p.set_bounds(0, f64::NEG_INFINITY, f64::INFINITY);
        p.fix(1, 4.5);
        p.add_constraint(&[1.0, 1.0], Relation::Eq, 7.0);
        let text = p.to_lp_format();
        assert!(text.starts_with("Maximize\n obj: + 3 x0 - 2 x1\n"));
        assert!(text.contains("c0: + 1 x0 + 1 x1 = 7"));
        assert!(text.contains("x0 free"));
        assert!(text.contains("x1 = 4.5"));
    }

    #[test]
    fn zero_objective_still_valid() {
        let p = Problem::minimize(&[0.0, 0.0]);
        let text = p.to_lp_format();
        assert!(text.contains("obj: 0 x0"));
        assert!(text.contains("Subject To"));
    }
}
