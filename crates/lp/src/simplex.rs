#![allow(clippy::needless_range_loop)] // dense-tableau code reads better with explicit indices

//! Two-phase primal simplex on the standard form
//! `min c·y  s.t.  A y = b,  y ≥ 0,  b ≥ 0`.
//!
//! Phase 1 introduces one artificial variable per row and minimizes their
//! sum; a positive phase-1 optimum certifies infeasibility. Phase 2 resumes
//! from the phase-1 basis with the true costs. Pricing is Dantzig (most
//! negative reduced cost) with a switch to Bland's rule after an iteration
//! budget proportional to the tableau size, which guarantees termination on
//! degenerate problems.

use crate::EPS;

/// Verdict of a solve.
#[derive(Debug, Clone, PartialEq)]
pub enum Solution {
    /// An optimal vertex was found.
    Optimal {
        /// Values of the structural variables, in declaration order.
        x: Vec<f64>,
        /// Objective value as the user stated the problem.
        objective: f64,
    },
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective decreases without bound over the feasible region.
    Unbounded,
}

impl Solution {
    /// The optimal point, when one was found.
    pub fn optimal(&self) -> Option<(&[f64], f64)> {
        match self {
            Solution::Optimal { x, objective } => Some((x, *objective)),
            _ => None,
        }
    }
}

/// Hard failures (distinct from infeasible/unbounded verdicts, which are
/// legitimate answers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// Bounds were inconsistent in a way the builder could not reject.
    InvalidBounds,
    /// The simplex exceeded its absolute iteration ceiling — numerically
    /// pathological input (should not happen with Bland's rule; kept as a
    /// defensive backstop rather than looping forever).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::InvalidBounds => write!(f, "inconsistent variable bounds"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// Dense simplex tableau.
///
/// `rows[i]` holds the coefficients of row `i` over all columns plus the
/// rhs in the last slot. `cost` is the reduced-cost row (same layout, last
/// slot = negated objective value).
struct Tableau {
    m: usize,
    n: usize,
    rows: Vec<Vec<f64>>,
    cost: Vec<f64>,
    basis: Vec<usize>,
}

impl Tableau {
    fn rhs(&self, i: usize) -> f64 {
        self.rows[i][self.n]
    }

    /// Gauss-Jordan pivot on (row, col).
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.rows[row][col];
        debug_assert!(piv.abs() > EPS, "pivot too small: {piv}");
        let inv = 1.0 / piv;
        for v in &mut self.rows[row] {
            *v *= inv;
        }
        // Re-normalize the pivot element exactly to kill drift.
        self.rows[row][col] = 1.0;
        for i in 0..self.m {
            if i == row {
                continue;
            }
            let factor = self.rows[i][col];
            if factor != 0.0 {
                // Split borrows: copy the pivot row once per eliminated row
                // is avoided by indexing — clone only the needed scalar.
                let (pivot_row, target_row) = if i < row {
                    let (a, b) = self.rows.split_at_mut(row);
                    (&b[0], &mut a[i])
                } else {
                    let (a, b) = self.rows.split_at_mut(i);
                    (&a[row], &mut b[0])
                };
                for (t, &p) in target_row.iter_mut().zip(pivot_row.iter()) {
                    *t -= factor * p;
                }
                target_row[col] = 0.0;
            }
        }
        let factor = self.cost[col];
        if factor != 0.0 {
            let pivot_row = &self.rows[row];
            for (t, &p) in self.cost.iter_mut().zip(pivot_row.iter()) {
                *t -= factor * p;
            }
            self.cost[col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Entering column: Dantzig when `bland` is false, Bland otherwise.
    /// Only columns `< limit` are eligible (used to bar artificials in
    /// phase 2).
    fn choose_entering(&self, limit: usize, bland: bool) -> Option<usize> {
        if bland {
            (0..limit).find(|&j| self.cost[j] < -EPS)
        } else {
            let mut best = None;
            let mut best_val = -EPS;
            for j in 0..limit {
                if self.cost[j] < best_val {
                    best_val = self.cost[j];
                    best = Some(j);
                }
            }
            best
        }
    }

    /// Leaving row by the minimum ratio test; ties broken by smallest basis
    /// index (part of Bland's guarantee). `None` means unbounded direction.
    fn choose_leaving(&self, col: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..self.m {
            let a = self.rows[i][col];
            if a > EPS {
                let ratio = self.rhs(i) / a;
                match best {
                    None => best = Some((i, ratio)),
                    Some((bi, br)) => {
                        if ratio < br - EPS
                            || ((ratio - br).abs() <= EPS && self.basis[i] < self.basis[bi])
                        {
                            best = Some((i, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Run simplex iterations until optimal/unbounded, with a Dantzig →
    /// Bland switch for anti-cycling.
    fn optimize(&mut self, limit: usize) -> Result<bool, LpError> {
        // Heuristic switch point: beyond this many iterations, degenerate
        // cycling is plausible — fall back to Bland's rule, which cannot
        // cycle. The absolute cap catches pathological numerics.
        let bland_after = 50 + 10 * (self.m + self.n);
        let hard_cap = 1000 + 200 * (self.m + self.n);
        for iter in 0..hard_cap {
            let bland = iter >= bland_after;
            let Some(col) = self.choose_entering(limit, bland) else {
                return Ok(true); // optimal
            };
            let Some(row) = self.choose_leaving(col) else {
                return Ok(false); // unbounded
            };
            self.pivot(row, col);
        }
        Err(LpError::IterationLimit)
    }
}

/// Solve `min c·y, A y = b, y ≥ 0` (b ≥ 0 required). Returns structural
/// values `y[..n_structural]` — slack columns are the caller's internal
/// detail but are included in the tableau.
pub(crate) fn solve_standard(
    c: &[f64],
    a: &[Vec<f64>],
    b: &[f64],
    n_structural: usize,
) -> Result<Solution, LpError> {
    let m = a.len();
    let n = c.len();
    debug_assert!(a.iter().all(|row| row.len() == n));
    debug_assert!(b.iter().all(|&bi| bi >= 0.0));
    debug_assert!(n_structural <= n);

    // Columns: [0..n) original (structural + slack), [n..n+m) artificial.
    let total = n + m;
    let mut rows = Vec::with_capacity(m);
    for i in 0..m {
        let mut row = Vec::with_capacity(total + 1);
        row.extend_from_slice(&a[i]);
        for k in 0..m {
            row.push(if k == i { 1.0 } else { 0.0 });
        }
        row.push(b[i]);
        rows.push(row);
    }
    let basis: Vec<usize> = (n..n + m).collect();

    // Phase-1 cost: sum of artificials, expressed in reduced form over the
    // starting basis (subtract each constraint row from the cost row).
    let mut cost = vec![0.0; total + 1];
    for j in n..total {
        cost[j] = 1.0;
    }
    for row in &rows {
        for (cj, &rj) in cost.iter_mut().zip(row.iter()) {
            *cj -= rj;
        }
    }

    let mut t = Tableau {
        m,
        n: total,
        rows,
        cost,
        basis,
    };

    // Phase 1: all columns eligible.
    let optimal = t.optimize(total)?;
    debug_assert!(optimal, "phase-1 objective is bounded below by zero");
    let phase1_obj = -t.cost[total];
    if phase1_obj > 1e-7 {
        return Ok(Solution::Infeasible);
    }

    // Drive any artificial still in the basis out (degenerate rows): pivot
    // on any original column with a nonzero entry; if none, the row is
    // redundant and harmless (its artificial stays at zero).
    for i in 0..m {
        if t.basis[i] >= n {
            if let Some(col) = (0..n).find(|&j| t.rows[i][j].abs() > EPS) {
                t.pivot(i, col);
            }
        }
    }

    // Phase 2: install true costs in reduced form over the current basis.
    let mut cost = vec![0.0; total + 1];
    cost[..n].copy_from_slice(c);
    for i in 0..m {
        let bi = t.basis[i];
        let cb = cost[bi];
        if cb != 0.0 {
            for j in 0..=total {
                cost[j] -= cb * t.rows[i][j];
            }
        }
    }
    t.cost = cost;

    // Artificial columns are barred from entering in phase 2.
    let optimal = t.optimize(n)?;
    if !optimal {
        return Ok(Solution::Unbounded);
    }

    let mut y = vec![0.0; n];
    for i in 0..m {
        if t.basis[i] < n {
            y[t.basis[i]] = t.rhs(i);
        }
    }
    let objective: f64 = c.iter().zip(&y).map(|(c, y)| c * y).sum();
    Ok(Solution::Optimal {
        x: y[..n_structural].to_vec(),
        objective,
    })
}

#[cfg(test)]
mod tests {
    use crate::{Problem, Relation, Solution};

    fn assert_opt(p: &Problem, want_obj: f64, tol: f64) -> Vec<f64> {
        match p.solve().unwrap() {
            Solution::Optimal { x, objective } => {
                assert!(
                    (objective - want_obj).abs() < tol,
                    "objective {objective} != expected {want_obj} (x = {x:?})"
                );
                assert!(
                    p.is_feasible(&x, 1e-6),
                    "reported optimum infeasible: {x:?}"
                );
                x
            }
            other => panic!("expected optimum, got {other:?}"),
        }
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → obj 36 at (2, 6).
        let mut p = Problem::maximize(&[3.0, 5.0]);
        p.add_constraint(&[1.0, 0.0], Relation::Le, 4.0);
        p.add_constraint(&[0.0, 2.0], Relation::Le, 12.0);
        p.add_constraint(&[3.0, 2.0], Relation::Le, 18.0);
        let x = assert_opt(&p, 36.0, 1e-9);
        assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn minimization_with_ge_rows_needs_phase1() {
        // min 2x + 3y s.t. x + y ≥ 4, x + 2y ≥ 6 → obj 10 at (2, 2)
        // (vertices: (0,4)→12, (2,2)→10, (6,0)→12).
        let mut p = Problem::minimize(&[2.0, 3.0]);
        p.add_constraint(&[1.0, 1.0], Relation::Ge, 4.0);
        p.add_constraint(&[1.0, 2.0], Relation::Ge, 6.0);
        let x = assert_opt(&p, 10.0, 1e-9);
        assert!((x[0] - 2.0).abs() < 1e-8 && (x[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x ≥ 0, y ≥ 0 → (0, 2), obj 2.
        let mut p = Problem::minimize(&[1.0, 1.0]);
        p.add_constraint(&[1.0, 2.0], Relation::Eq, 4.0);
        assert_opt(&p, 2.0, 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize(&[1.0]);
        p.add_constraint(&[1.0], Relation::Le, 1.0);
        p.add_constraint(&[1.0], Relation::Ge, 2.0);
        assert_eq!(p.solve().unwrap(), Solution::Infeasible);
    }

    #[test]
    fn infeasible_via_bounds() {
        let mut p = Problem::minimize(&[1.0]);
        p.set_bounds(0, 5.0, 10.0);
        p.add_constraint(&[1.0], Relation::Le, 4.0);
        assert_eq!(p.solve().unwrap(), Solution::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with x ≥ 0 unconstrained above.
        let p = Problem::minimize(&[-1.0]);
        assert_eq!(p.solve().unwrap(), Solution::Unbounded);
    }

    #[test]
    fn unbounded_free_variable() {
        let p = Problem::minimize(&[1.0]).with_free(0);
        assert_eq!(p.solve().unwrap(), Solution::Unbounded);
    }

    #[test]
    fn free_variable_optimum_is_negative() {
        // min x s.t. x ≥ -7 (free var with a ≥ constraint).
        let mut p = Problem::minimize(&[1.0]).with_free(0);
        p.add_constraint(&[1.0], Relation::Ge, -7.0);
        let x = assert_opt(&p, -7.0, 1e-9);
        assert!((x[0] + 7.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bound() {
        let mut p = Problem::minimize(&[1.0, 0.0]);
        p.set_bounds(0, -3.0, 5.0);
        p.add_constraint(&[1.0, 1.0], Relation::Ge, -1.0);
        let x = assert_opt(&p, -3.0, 1e-9);
        assert!((x[0] + 3.0).abs() < 1e-9);
    }

    #[test]
    fn upper_bound_only_variable() {
        // x in (-inf, 4], minimize -x → x = 4.
        let mut p = Problem::minimize(&[-1.0]);
        p.set_bounds(0, f64::NEG_INFINITY, 4.0);
        let x = assert_opt(&p, -4.0, 1e-9);
        assert!((x[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_variable() {
        let mut p = Problem::minimize(&[1.0, 1.0]);
        p.fix(0, 2.5);
        p.add_constraint(&[1.0, 1.0], Relation::Ge, 4.0);
        let x = assert_opt(&p, 4.0, 1e-9);
        assert!((x[0] - 2.5).abs() < 1e-9);
        assert!((x[1] - 1.5).abs() < 1e-9);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let mut p = Problem::maximize(&[10.0, -57.0, -9.0, -24.0]);
        p.add_constraint(&[0.5, -5.5, -2.5, 9.0], Relation::Le, 0.0);
        p.add_constraint(&[0.5, -1.5, -0.5, 1.0], Relation::Le, 0.0);
        p.add_constraint(&[1.0, 0.0, 0.0, 0.0], Relation::Le, 1.0);
        // Known optimum: 1 at x = (1, 0, 1, 0).
        let x = assert_opt(&p, 1.0, 1e-7);
        assert!((x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equalities_leave_artificial_basic_at_zero() {
        // Same equality twice: row rank deficiency.
        let mut p = Problem::minimize(&[1.0, 1.0]);
        p.add_constraint(&[1.0, 1.0], Relation::Eq, 2.0);
        p.add_constraint(&[2.0, 2.0], Relation::Eq, 4.0);
        assert_opt(&p, 2.0, 1e-9);
    }

    #[test]
    fn paper_shaped_lp_binding_disk_constraint() {
        // min t s.t. t ≥ k·z − c (disk), z ≥ zmin, t ≥ tlb; with k large
        // enough the disk constraint binds above tlb.
        let k = 50.0;
        let c = 1.0;
        let zmin = 0.2;
        let tlb = 1.2;
        let mut p = Problem::minimize(&[1.0, 0.0]);
        p.add_constraint(&[1.0, -k], Relation::Ge, -c);
        p.set_bounds(0, tlb, 100.0);
        p.set_bounds(1, zmin, 1.0);
        let x = assert_opt(&p, k * zmin - c, 1e-9);
        assert!((x[1] - zmin).abs() < 1e-9, "z driven to its minimum");
    }

    impl Problem {
        /// Test helper: mark variable as free.
        fn with_free(mut self, var: usize) -> Self {
            self.set_bounds(var, f64::NEG_INFINITY, f64::INFINITY);
            self
        }
    }
}
