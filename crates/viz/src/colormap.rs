//! Color maps for scalar fields.

/// A color map: a small set of control colors interpolated linearly in
/// RGB. Control points are evenly spaced over `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Colormap {
    stops: Vec<[u8; 3]>,
}

impl Colormap {
    /// Perceptually-ordered dark-blue → green → yellow map (viridis-like),
    /// the default for pressure and windspeed pseudocolor.
    pub fn viridis() -> Self {
        Colormap {
            stops: vec![
                [68, 1, 84],
                [59, 82, 139],
                [33, 145, 140],
                [94, 201, 98],
                [253, 231, 37],
            ],
        }
    }

    /// Diverging blue → white → red map for signed perturbations.
    pub fn blue_white_red() -> Self {
        Colormap {
            stops: vec![[33, 102, 172], [247, 247, 247], [178, 24, 43]],
        }
    }

    /// Plain grayscale.
    pub fn grayscale() -> Self {
        Colormap {
            stops: vec![[0, 0, 0], [255, 255, 255]],
        }
    }

    /// Custom map from explicit stops (at least two).
    pub fn from_stops(stops: Vec<[u8; 3]>) -> Self {
        assert!(stops.len() >= 2, "a colormap needs at least two stops");
        Colormap { stops }
    }

    /// Map `t ∈ [0, 1]` (clamped; NaN maps to 0) to a color.
    pub fn map(&self, t: f64) -> [u8; 3] {
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        let n = self.stops.len() - 1;
        let scaled = t * n as f64;
        let k = (scaled.floor() as usize).min(n - 1);
        let f = scaled - k as f64;
        let a = self.stops[k];
        let b = self.stops[k + 1];
        [
            lerp_u8(a[0], b[0], f),
            lerp_u8(a[1], b[1], f),
            lerp_u8(a[2], b[2], f),
        ]
    }

    /// Map a value within `[vmin, vmax]` (degenerate ranges map to the
    /// middle of the map).
    pub fn map_range(&self, v: f64, vmin: f64, vmax: f64) -> [u8; 3] {
        if vmax <= vmin {
            return self.map(0.5);
        }
        self.map((v - vmin) / (vmax - vmin))
    }
}

fn lerp_u8(a: u8, b: u8, f: f64) -> u8 {
    (a as f64 + (b as f64 - a as f64) * f).round() as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_hit_first_and_last_stop() {
        let c = Colormap::viridis();
        assert_eq!(c.map(0.0), [68, 1, 84]);
        assert_eq!(c.map(1.0), [253, 231, 37]);
    }

    #[test]
    fn clamps_and_handles_nan() {
        let c = Colormap::grayscale();
        assert_eq!(c.map(-4.0), [0, 0, 0]);
        assert_eq!(c.map(7.0), [255, 255, 255]);
        assert_eq!(c.map(f64::NAN), [0, 0, 0]);
    }

    #[test]
    fn midpoint_interpolates() {
        let c = Colormap::grayscale();
        let [r, g, b] = c.map(0.5);
        assert_eq!(r, g);
        assert_eq!(g, b);
        assert!((126..=129).contains(&r));
    }

    #[test]
    fn map_range_normalizes() {
        let c = Colormap::grayscale();
        assert_eq!(c.map_range(990.0, 980.0, 1000.0), c.map(0.5));
        assert_eq!(c.map_range(980.0, 980.0, 1000.0), c.map(0.0));
        // Degenerate range does not divide by zero.
        assert_eq!(c.map_range(5.0, 3.0, 3.0), c.map(0.5));
    }

    #[test]
    fn grayscale_is_monotone() {
        let c = Colormap::viridis();
        // Luma increases monotonically for viridis-like maps.
        let luma = |t: f64| {
            let [r, g, b] = c.map(t);
            0.2126 * r as f64 + 0.7152 * g as f64 + 0.0722 * b as f64
        };
        let mut prev = luma(0.0);
        for k in 1..=20 {
            let l = luma(k as f64 / 20.0);
            assert!(l >= prev - 1.0, "luma dipped at {k}");
            prev = l;
        }
    }

    #[test]
    #[should_panic(expected = "two stops")]
    fn single_stop_rejected() {
        Colormap::from_stops(vec![[0, 0, 0]]);
    }
}
