//! In-memory RGB raster with PPM export and simple vector drawing.

/// An 8-bit RGB image, row-major, origin at the *top-left* (standard
/// raster convention; renderers flip the south-north axis when plotting
/// geographic fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl RgbImage {
    /// New image filled with `fill`.
    ///
    /// # Panics
    /// If either extent is zero.
    pub fn new(width: usize, height: usize, fill: [u8; 3]) -> Self {
        assert!(width > 0 && height > 0, "image extents must be positive");
        let mut pixels = Vec::with_capacity(width * height * 3);
        for _ in 0..width * height {
            pixels.extend_from_slice(&fill);
        }
        RgbImage {
            width,
            height,
            pixels,
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        let o = (y * self.width + x) * 3;
        [self.pixels[o], self.pixels[o + 1], self.pixels[o + 2]]
    }

    /// Set pixel `(x, y)`; silently ignores out-of-bounds (convenient for
    /// clipped vector drawing).
    pub fn set(&mut self, x: i64, y: i64, color: [u8; 3]) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        let o = (y as usize * self.width + x as usize) * 3;
        self.pixels[o..o + 3].copy_from_slice(&color);
    }

    /// Bresenham line from `(x0, y0)` to `(x1, y1)`.
    pub fn draw_line(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, color: [u8; 3]) {
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let (mut x, mut y) = (x0, y0);
        let mut err = dx + dy;
        loop {
            self.set(x, y, color);
            if x == x1 && y == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x += sx;
            }
            if e2 <= dx {
                err += dx;
                y += sy;
            }
        }
    }

    /// Axis-aligned rectangle outline.
    pub fn draw_rect(&mut self, x0: i64, y0: i64, x1: i64, y1: i64, color: [u8; 3]) {
        self.draw_line(x0, y0, x1, y0, color);
        self.draw_line(x1, y0, x1, y1, color);
        self.draw_line(x1, y1, x0, y1, color);
        self.draw_line(x0, y1, x0, y0, color);
    }

    /// Filled square marker of half-width `r` centred at `(x, y)`.
    pub fn draw_marker(&mut self, x: i64, y: i64, r: i64, color: [u8; 3]) {
        for dy in -r..=r {
            for dx in -r..=r {
                self.set(x + dx, y + dy, color);
            }
        }
    }

    /// Raw mutable pixel buffer (RGB, row-major) — used by the parallel
    /// renderer to hand disjoint row bands to workers.
    pub(crate) fn pixels_mut(&mut self) -> &mut [u8] {
        &mut self.pixels
    }

    /// Encode as binary PPM (P6) — viewable everywhere, zero dependencies.
    pub fn to_ppm(&self) -> Vec<u8> {
        let header = format!("P6\n{} {}\n255\n", self.width, self.height);
        let mut out = Vec::with_capacity(header.len() + self.pixels.len());
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Write a PPM file.
    pub fn save_ppm(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_ppm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_pixels() {
        let mut img = RgbImage::new(4, 3, [10, 20, 30]);
        assert_eq!(img.get(0, 0), [10, 20, 30]);
        img.set(2, 1, [255, 0, 0]);
        assert_eq!(img.get(2, 1), [255, 0, 0]);
        assert_eq!(img.get(2, 2), [10, 20, 30]);
    }

    #[test]
    fn out_of_bounds_set_is_ignored() {
        let mut img = RgbImage::new(2, 2, [0, 0, 0]);
        img.set(-1, 0, [255, 255, 255]);
        img.set(0, 5, [255, 255, 255]);
        for y in 0..2 {
            for x in 0..2 {
                assert_eq!(img.get(x, y), [0, 0, 0]);
            }
        }
    }

    #[test]
    fn line_endpoints_and_diagonal() {
        let mut img = RgbImage::new(5, 5, [0, 0, 0]);
        img.draw_line(0, 0, 4, 4, [255, 255, 255]);
        assert_eq!(img.get(0, 0), [255, 255, 255]);
        assert_eq!(img.get(4, 4), [255, 255, 255]);
        assert_eq!(img.get(2, 2), [255, 255, 255]);
        assert_eq!(img.get(0, 4), [0, 0, 0]);
    }

    #[test]
    fn rect_outline_not_filled() {
        let mut img = RgbImage::new(6, 6, [0, 0, 0]);
        img.draw_rect(1, 1, 4, 4, [9, 9, 9]);
        assert_eq!(img.get(1, 1), [9, 9, 9]);
        assert_eq!(img.get(4, 1), [9, 9, 9]);
        assert_eq!(img.get(2, 2), [0, 0, 0], "interior untouched");
    }

    #[test]
    fn ppm_header_and_size() {
        let img = RgbImage::new(3, 2, [1, 2, 3]);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), b"P6\n3 2\n255\n".len() + 3 * 2 * 3);
    }

    #[test]
    fn marker_clips_at_edges() {
        let mut img = RgbImage::new(3, 3, [0, 0, 0]);
        img.draw_marker(0, 0, 1, [5, 5, 5]);
        assert_eq!(img.get(0, 0), [5, 5, 5]);
        assert_eq!(img.get(1, 1), [5, 5, 5]);
        assert_eq!(img.get(2, 2), [0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        RgbImage::new(0, 5, [0, 0, 0]);
    }
}
