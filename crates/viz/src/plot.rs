//! Line-chart rendering for the paper's figures.
//!
//! The figure harness binaries print the series as tables and CSV; this
//! module additionally renders them as images in the style of the paper's
//! Figures 5–8: wall-clock time on the x-axis, one polyline per
//! algorithm, axis ticks with labels, and a legend.

use crate::font::{glyph, text_width};
use crate::image::RgbImage;

/// One curve on a chart.
#[derive(Debug, Clone)]
pub struct PlotSeries {
    /// Legend label.
    pub label: String,
    /// `(x, y)` samples in x order.
    pub points: Vec<(f64, f64)>,
    /// Line color.
    pub color: [u8; 3],
}

/// A line chart in the paper's figure style.
#[derive(Debug, Clone)]
pub struct Plot {
    /// Chart title (rendered in the 5×7 chart font; unsupported
    /// characters appear blank).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Canvas width in pixels.
    pub width: usize,
    /// Canvas height in pixels.
    pub height: usize,
    series: Vec<PlotSeries>,
}

/// The paper's two-algorithm palette: greedy red, optimization blue
/// (plus a green for baselines).
pub const GREEDY_RED: [u8; 3] = [200, 40, 40];
/// See [`GREEDY_RED`].
pub const OPTIMIZATION_BLUE: [u8; 3] = [40, 60, 200];
/// See [`GREEDY_RED`].
pub const BASELINE_GREEN: [u8; 3] = [30, 140, 60];

impl Plot {
    /// New empty chart.
    pub fn new(title: impl Into<String>) -> Self {
        Plot {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            width: 640,
            height: 420,
            series: Vec::new(),
        }
    }

    /// Add one curve.
    pub fn add_series(
        &mut self,
        label: impl Into<String>,
        points: Vec<(f64, f64)>,
        color: [u8; 3],
    ) {
        self.series.push(PlotSeries {
            label: label.into(),
            points,
            color,
        });
    }

    /// Number of curves added.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Render the chart.
    ///
    /// # Panics
    /// If no series with at least one point was added (an empty figure is
    /// always a harness bug).
    pub fn render(&self) -> RgbImage {
        let (x0, x1, y0, y1) = self.data_range();
        let mut img = RgbImage::new(self.width, self.height, [255, 255, 255]);

        // Plot area inside margins.
        let ml = 58usize; // left (y labels)
        let mr = 16usize;
        let mt = 28usize; // top (title)
        let mb = 40usize; // bottom (x labels)
        let pw = self.width - ml - mr;
        let ph = self.height - mt - mb;
        let to_px = |x: f64, y: f64| -> (i64, i64) {
            let fx = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.5 };
            let fy = if y1 > y0 { (y - y0) / (y1 - y0) } else { 0.5 };
            (
                (ml as f64 + fx * pw as f64) as i64,
                (mt as f64 + (1.0 - fy) * ph as f64) as i64,
            )
        };

        // Axes.
        let axis = [0, 0, 0];
        img.draw_line(ml as i64, mt as i64, ml as i64, (mt + ph) as i64, axis);
        img.draw_line(
            ml as i64,
            (mt + ph) as i64,
            (ml + pw) as i64,
            (mt + ph) as i64,
            axis,
        );

        // Ticks and numeric labels (4 intervals each way).
        for k in 0..=4 {
            let fx = k as f64 / 4.0;
            let x = x0 + fx * (x1 - x0);
            let (px, _) = to_px(x, y0);
            img.draw_line(px, (mt + ph) as i64, px, (mt + ph + 4) as i64, axis);
            let label = fmt_tick(x);
            draw_text(
                &mut img,
                px - text_width(&label) as i64 / 2,
                (mt + ph + 8) as i64,
                &label,
                axis,
            );

            let fy = k as f64 / 4.0;
            let y = y0 + fy * (y1 - y0);
            let (_, py) = to_px(x0, y);
            img.draw_line((ml - 4) as i64, py, ml as i64, py, axis);
            let label = fmt_tick(y);
            draw_text(
                &mut img,
                ml as i64 - 6 - text_width(&label) as i64,
                py - 3,
                &label,
                axis,
            );
        }

        // Gridlines (light).
        for k in 1..4 {
            let y = y0 + k as f64 / 4.0 * (y1 - y0);
            let (_, py) = to_px(x0, y);
            img.draw_line((ml + 1) as i64, py, (ml + pw) as i64, py, [225, 225, 225]);
        }

        // Curves.
        for s in &self.series {
            let mut prev: Option<(i64, i64)> = None;
            for &(x, y) in &s.points {
                let p = to_px(x, y);
                if let Some(q) = prev {
                    img.draw_line(q.0, q.1, p.0, p.1, s.color);
                    // Thicken by a second line one pixel lower.
                    img.draw_line(q.0, q.1 + 1, p.0, p.1 + 1, s.color);
                }
                prev = Some(p);
            }
        }

        // Title, axis labels, legend. The title is centred so it clears
        // the y-axis label at the top-left.
        draw_text(
            &mut img,
            (ml + pw / 2) as i64 - text_width(&self.title) as i64 / 2,
            8,
            &self.title,
            axis,
        );
        draw_text(
            &mut img,
            (ml + pw / 2) as i64 - text_width(&self.x_label) as i64 / 2,
            (self.height - 14) as i64,
            &self.x_label,
            axis,
        );
        draw_text(
            &mut img,
            4,
            (mt.saturating_sub(14)) as i64,
            &self.y_label,
            axis,
        );
        let mut ly = mt as i64 + 6;
        for s in &self.series {
            let lx = (ml + pw) as i64 - 150;
            img.draw_line(lx, ly + 3, lx + 18, ly + 3, s.color);
            img.draw_line(lx, ly + 4, lx + 18, ly + 4, s.color);
            draw_text(&mut img, lx + 24, ly, &s.label, axis);
            ly += 12;
        }

        img
    }

    fn data_range(&self) -> (f64, f64, f64, f64) {
        let mut pts = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .peekable();
        assert!(pts.peek().is_some(), "plot has no data");
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for (x, y) in pts {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(y);
            y1 = y1.max(y);
        }
        // Pad a degenerate range so the mapping stays defined.
        if x1 <= x0 {
            x1 = x0 + 1.0;
        }
        if y1 <= y0 {
            y1 = y0 + 1.0;
        }
        (x0, x1, y0, y1)
    }
}

/// Render text in the 5×7 chart font at `(x, y)` (top-left anchor).
pub fn draw_text(img: &mut RgbImage, x: i64, y: i64, text: &str, color: [u8; 3]) {
    let mut cx = x;
    for c in text.chars() {
        if let Some(rows) = glyph(c) {
            for (dy, row) in rows.iter().enumerate() {
                for dx in 0..5 {
                    if row & (0x10 >> dx) != 0 {
                        img.set(cx + dx as i64, y + dy as i64, color);
                    }
                }
            }
        }
        cx += 6;
    }
}

fn fmt_tick(v: f64) -> String {
    if v.abs() >= 10.0 || v == v.trunc() {
        format!("{v:.0}")
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plot() -> Plot {
        let mut p = Plot::new("FIG 5(A) INTER-DEPARTMENT");
        p.x_label = "WALL CLOCK (H)".into();
        p.y_label = "SIM (MIN)".into();
        p.add_series(
            "GREEDY",
            (0..50).map(|k| (k as f64, (k * k) as f64)).collect(),
            GREEDY_RED,
        );
        p.add_series(
            "OPTIMIZATION",
            (0..50).map(|k| (k as f64, (k * 60) as f64)).collect(),
            OPTIMIZATION_BLUE,
        );
        p
    }

    fn count_color(img: &RgbImage, color: [u8; 3]) -> usize {
        let mut n = 0;
        for y in 0..img.height() {
            for x in 0..img.width() {
                if img.get(x, y) == color {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn renders_axes_curves_and_legend() {
        let p = sample_plot();
        let img = p.render();
        assert_eq!(img.width(), 640);
        assert_eq!(img.height(), 420);
        // Both curve colors present in quantity (curve + legend swatch).
        assert!(count_color(&img, GREEDY_RED) > 100);
        assert!(count_color(&img, OPTIMIZATION_BLUE) > 100);
        // Axis black present.
        assert!(count_color(&img, [0, 0, 0]) > 200);
    }

    #[test]
    fn degenerate_single_point_series_renders() {
        let mut p = Plot::new("DOT");
        p.add_series("ONE", vec![(5.0, 5.0)], GREEDY_RED);
        let img = p.render();
        assert!(img.width() > 0);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_plot_panics() {
        Plot::new("EMPTY").render();
    }

    #[test]
    fn text_rendering_marks_pixels() {
        let mut img = RgbImage::new(80, 12, [255, 255, 255]);
        draw_text(&mut img, 0, 0, "AILA 995", [0, 0, 0]);
        let mut black = 0;
        for y in 0..12 {
            for x in 0..80 {
                if img.get(x, y) == [0, 0, 0] {
                    black += 1;
                }
            }
        }
        assert!(black > 40, "glyphs drawn: {black} pixels");
    }
}
