//! Pseudocolor rendering of scalar grids.

use crate::colormap::Colormap;
use crate::image::RgbImage;
use wrf::Grid2;

/// Render a grid as a pseudocolor image, `scale` pixels per grid cell,
/// sampling bilinearly. Row 0 of the grid (south) lands at the *bottom*
/// of the image, matching map orientation.
pub fn pseudocolor(grid: &Grid2, cmap: &Colormap, vmin: f64, vmax: f64, scale: usize) -> RgbImage {
    assert!(scale > 0, "scale must be positive");
    let w = grid.nx() * scale;
    let h = grid.ny() * scale;
    let mut img = RgbImage::new(w, h, [0, 0, 0]);
    for py in 0..h {
        // Flip: image top = grid north.
        let gy = (h - 1 - py) as f64 / scale as f64;
        for px in 0..w {
            let gx = px as f64 / scale as f64;
            let v = grid.sample(gx, gy);
            img.set(px as i64, py as i64, cmap.map_range(v, vmin, vmax));
        }
    }
    img
}

/// Parallel pseudocolor: identical output to [`pseudocolor`], computed on
/// `threads` workers over disjoint pixel-row bands — the paper's "we
/// intend to parallelize the visualization process as well", applied to
/// the dominant cost (per-pixel sampling + color mapping).
pub fn pseudocolor_parallel(
    grid: &Grid2,
    cmap: &Colormap,
    vmin: f64,
    vmax: f64,
    scale: usize,
    threads: usize,
) -> RgbImage {
    assert!(scale > 0, "scale must be positive");
    if threads <= 1 {
        return pseudocolor(grid, cmap, vmin, vmax, scale);
    }
    let w = grid.nx() * scale;
    let h = grid.ny() * scale;
    let mut img = RgbImage::new(w, h, [0, 0, 0]);
    let bands = {
        // Contiguous pixel-row bands, one per worker.
        let parts = threads.min(h);
        let base = h / parts;
        let extra = h % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for k in 0..parts {
            let len = base + usize::from(k < extra);
            out.push((start, start + len));
            start += len;
        }
        out
    };
    crossbeam::thread::scope(|s| {
        let mut rest = img.pixels_mut();
        for &(y0, y1) in &bands {
            let (chunk, tail) = rest.split_at_mut((y1 - y0) * w * 3);
            rest = tail;
            s.spawn(move |_| {
                for py in y0..y1 {
                    let gy = (h - 1 - py) as f64 / scale as f64;
                    let row = &mut chunk[(py - y0) * w * 3..(py - y0 + 1) * w * 3];
                    for px in 0..w {
                        let gx = px as f64 / scale as f64;
                        let v = grid.sample(gx, gy);
                        let c = cmap.map_range(v, vmin, vmax);
                        row[px * 3..px * 3 + 3].copy_from_slice(&c);
                    }
                }
            });
        }
    })
    .expect("render worker panicked");
    img
}

/// Compute a robust `(vmin, vmax)` range for a grid (straight min/max —
/// the fields here are smooth, no outlier trimming needed).
pub fn value_range(grid: &Grid2) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in grid.data() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Append a horizontal colorbar strip (the figure legend) under an image:
/// returns a new image `bar_height + 2` pixels taller, with the colormap
/// swept left-to-right over `[vmin, vmax]` and tick marks at both ends
/// and the midpoint.
pub fn with_colorbar(
    img: &RgbImage,
    cmap: &Colormap,
    vmin: f64,
    vmax: f64,
    bar_height: usize,
) -> RgbImage {
    assert!(bar_height > 0, "bar height must be positive");
    let w = img.width();
    let h = img.height();
    let mut out = RgbImage::new(w, h + bar_height + 2, [255, 255, 255]);
    for y in 0..h {
        for x in 0..w {
            out.set(x as i64, y as i64, img.get(x, y));
        }
    }
    for y in 0..bar_height {
        for x in 0..w {
            let t = if w > 1 {
                x as f64 / (w - 1) as f64
            } else {
                0.0
            };
            out.set(
                x as i64,
                (h + 2 + y) as i64,
                cmap.map_range(vmin + t * (vmax - vmin), vmin, vmax),
            );
        }
    }
    // Tick marks: black notches at 0 %, 50 %, 100 %.
    for frac in [0.0, 0.5, 1.0] {
        let x = (frac * (w - 1) as f64) as i64;
        out.draw_line(x, (h + 2) as i64, x, (h + 1 + bar_height) as i64, [0, 0, 0]);
    }
    out
}

/// Windspeed magnitude grid from component grids.
pub fn windspeed(u: &Grid2, v: &Grid2) -> Grid2 {
    assert_eq!(u.nx(), v.nx());
    assert_eq!(u.ny(), v.ny());
    Grid2::from_fn(u.nx(), u.ny(), |i, j| {
        (u.at(i, j).powi(2) + v.at(i, j).powi(2)).sqrt()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_size_scales() {
        let g = Grid2::zeros(8, 5);
        let img = pseudocolor(&g, &Colormap::grayscale(), 0.0, 1.0, 3);
        assert_eq!(img.width(), 24);
        assert_eq!(img.height(), 15);
    }

    #[test]
    fn orientation_south_is_bottom() {
        // Gradient increasing northward → top of image brighter.
        let g = Grid2::from_fn(4, 4, |_, j| j as f64);
        let img = pseudocolor(&g, &Colormap::grayscale(), 0.0, 3.0, 1);
        let top = img.get(0, 0);
        let bottom = img.get(0, 3);
        assert!(top[0] > bottom[0], "north (top) must be brighter");
        assert_eq!(top, [255, 255, 255]);
        assert_eq!(bottom, [0, 0, 0]);
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let g = Grid2::from_fn(37, 23, |i, j| ((i * 7 + j * 13) % 29) as f64);
        let cmap = Colormap::viridis();
        let serial = pseudocolor(&g, &cmap, 0.0, 28.0, 2);
        for threads in [1usize, 2, 3, 5, 16, 1000] {
            let par = pseudocolor_parallel(&g, &cmap, 0.0, 28.0, 2, threads);
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn value_range_finds_extremes() {
        let mut g = Grid2::zeros(3, 3);
        g.set(1, 1, -4.0);
        g.set(2, 2, 9.0);
        assert_eq!(value_range(&g), (-4.0, 9.0));
    }

    #[test]
    fn colorbar_extends_the_image() {
        let g = Grid2::from_fn(8, 4, |i, _| i as f64);
        let cmap = Colormap::viridis();
        let img = pseudocolor(&g, &cmap, 0.0, 7.0, 2);
        let with_bar = with_colorbar(&img, &cmap, 0.0, 7.0, 6);
        assert_eq!(with_bar.width(), img.width());
        assert_eq!(with_bar.height(), img.height() + 8);
        // Original pixels preserved.
        assert_eq!(with_bar.get(3, 2), img.get(3, 2));
        // The bar sweeps the map: left edge ≈ cmap(0) is a tick (black),
        // so sample just inside; right side brighter than left for
        // viridis.
        let y = img.height() + 4;
        let left = with_bar.get(1, y);
        let right = with_bar.get(img.width() - 2, y);
        assert_ne!(left, right);
        // Midpoint tick is black.
        let mid_x = (img.width() - 1) / 2;
        assert_eq!(with_bar.get(mid_x, y), [0, 0, 0]);
    }

    #[test]
    fn windspeed_magnitude() {
        let u = Grid2::from_fn(2, 2, |_, _| 3.0);
        let v = Grid2::from_fn(2, 2, |_, _| 4.0);
        let s = windspeed(&u, &v);
        assert!((s.at(0, 0) - 5.0).abs() < 1e-12);
    }
}
