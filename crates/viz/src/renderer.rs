//! The "VisIt plug-in": render a shipped frame dataset directly.
//!
//! Composes the paper's figure styles from one [`ncdf::Dataset`] frame:
//! pseudocolor of the chosen scalar, coastline contour from the land mask,
//! wind glyphs, the nest outline (Figure 3's "finer resolution nest inside
//! parent domain"), and the eye marker.

use crate::colormap::Colormap;
use crate::contour::marching_squares;
use crate::glyph::draw_wind_glyphs;
use crate::image::RgbImage;
use crate::render::{pseudocolor_parallel, value_range, windspeed};
use crate::track::detect_eye;
use ncdf::Dataset;
use wrf::Grid2;

/// Which scalar drives the pseudocolor underlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarField {
    /// Surface pressure (the paper's perturbation-pressure views).
    Pressure,
    /// Wind magnitude (the paper's nest windspeed view).
    Windspeed,
    /// Raw height-field perturbation.
    Eta,
    /// Water-vapour mixing ratio (the moist envelope of the storm).
    Moisture,
}

/// Rendering failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RenderError {
    /// The frame lacks a variable the renderer needs.
    MissingVariable(&'static str),
    /// A variable had an unexpected shape.
    BadShape(&'static str),
}

impl std::fmt::Display for RenderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RenderError::MissingVariable(v) => write!(f, "frame is missing variable `{v}`"),
            RenderError::BadShape(v) => write!(f, "variable `{v}` has an unexpected shape"),
        }
    }
}

impl std::error::Error for RenderError {}

/// Frame renderer with composition options.
#[derive(Debug, Clone)]
pub struct FrameRenderer {
    /// Scalar underlay selection.
    pub scalar: ScalarField,
    /// Pixels per parent grid cell.
    pub scale: usize,
    /// Draw wind arrows every this many cells (0 disables glyphs).
    pub glyph_stride: usize,
    /// Draw the coastline from the land mask.
    pub draw_coast: bool,
    /// Outline the nest window when the frame carries one.
    pub draw_nest_box: bool,
    /// Mark the eye.
    pub draw_eye: bool,
    /// Color map for the underlay.
    pub colormap: Colormap,
    /// Workers for the pseudocolor underlay (1 = serial; the paper's
    /// "parallelize the visualization process" future work).
    pub threads: usize,
}

impl Default for FrameRenderer {
    fn default() -> Self {
        FrameRenderer {
            scalar: ScalarField::Pressure,
            scale: 2,
            glyph_stride: 8,
            draw_coast: true,
            draw_nest_box: true,
            draw_eye: true,
            colormap: Colormap::viridis(),
            threads: 1,
        }
    }
}

/// Decode a 2-D frame variable into a [`Grid2`].
pub fn grid_from_var(ds: &Dataset, name: &'static str) -> Result<Grid2, RenderError> {
    let var = ds.var(name).ok_or(RenderError::MissingVariable(name))?;
    let shape = var.shape(ds);
    if shape.len() != 2 || shape[0] == 0 || shape[1] == 0 {
        return Err(RenderError::BadShape(name));
    }
    let vals = var.data.to_f64_vec();
    let (ny, nx) = (shape[0], shape[1]);
    let mut g = Grid2::zeros(nx, ny);
    g.data_mut().copy_from_slice(&vals);
    Ok(g)
}

impl FrameRenderer {
    /// Render one frame.
    pub fn render(&self, ds: &Dataset) -> Result<RgbImage, RenderError> {
        let scalar = match self.scalar {
            ScalarField::Pressure => grid_from_var(ds, "pressure")?,
            ScalarField::Eta => grid_from_var(ds, "eta")?,
            ScalarField::Moisture => grid_from_var(ds, "qvapor")?,
            ScalarField::Windspeed => {
                let u = grid_from_var(ds, "u")?;
                let v = grid_from_var(ds, "v")?;
                windspeed(&u, &v)
            }
        };
        let (vmin, vmax) = value_range(&scalar);
        let mut img = pseudocolor_parallel(
            &scalar,
            &self.colormap,
            vmin,
            vmax,
            self.scale,
            self.threads,
        );
        let h = img.height() as i64;
        let to_px = |gx: f64, gy: f64| -> (i64, i64) {
            (
                (gx * self.scale as f64) as i64,
                h - 1 - (gy * self.scale as f64) as i64,
            )
        };

        if self.draw_coast {
            if let Ok(mask) = grid_from_var(ds, "landmask") {
                for (a, b) in marching_squares(&mask, 0.5) {
                    let (x0, y0) = to_px(a.0, a.1);
                    let (x1, y1) = to_px(b.0, b.1);
                    img.draw_line(x0, y0, x1, y1, [40, 40, 40]);
                }
            }
        }

        if self.glyph_stride > 0 {
            let u = grid_from_var(ds, "u")?;
            let v = grid_from_var(ds, "v")?;
            draw_wind_glyphs(
                &mut img,
                &u,
                &v,
                self.scale,
                self.glyph_stride,
                0.15 * self.scale as f64,
                [255, 255, 255],
            );
        }

        if self.draw_nest_box {
            if let (Some(origin), Some(nest_dx), Some(parent_dx)) = (
                ds.attr("nest_origin_km").and_then(|a| a.as_f64_list()),
                ds.attr("nest_dx_km").and_then(|a| a.as_f64()),
                ds.attr("physics_dx_km").and_then(|a| a.as_f64()),
            ) {
                if origin.len() == 2 {
                    if let Ok(nest) = grid_from_var(ds, "nest_pressure") {
                        let gx0 = origin[0] / parent_dx;
                        let gy0 = origin[1] / parent_dx;
                        let gx1 = gx0 + (nest.nx() - 1) as f64 * nest_dx / parent_dx;
                        let gy1 = gy0 + (nest.ny() - 1) as f64 * nest_dx / parent_dx;
                        let (x0, y0) = to_px(gx0, gy0);
                        let (x1, y1) = to_px(gx1, gy1);
                        img.draw_rect(x0, y0, x1, y1, [255, 0, 0]);
                    }
                }
            }
        }

        if self.draw_eye {
            if let Some(fix) = detect_eye(ds) {
                // Convert lon/lat back to grid coordinates via the domain
                // corner attributes.
                if let Some(c) = ds.attr("domain_lonlat").and_then(|a| a.as_f64_list()) {
                    if c.len() == 4 {
                        let gx = (fix.lon - c[0]) / (c[2] - c[0]) * (scalar.nx() - 1) as f64;
                        let gy = (fix.lat - c[1]) / (c[3] - c[1]) * (scalar.ny() - 1) as f64;
                        let (x, y) = to_px(gx, gy);
                        img.draw_marker(x, y, 2, [255, 64, 64]);
                    }
                }
            }
        }

        Ok(img)
    }

    /// Render the nest window alone (the paper's finest-resolution view).
    /// Errors when the frame has no nest.
    pub fn render_nest(&self, ds: &Dataset) -> Result<RgbImage, RenderError> {
        let scalar = match self.scalar {
            ScalarField::Pressure | ScalarField::Eta => grid_from_var(ds, "nest_pressure")?,
            ScalarField::Moisture => grid_from_var(ds, "nest_qvapor")?,
            ScalarField::Windspeed => {
                let u = grid_from_var(ds, "nest_u")?;
                let v = grid_from_var(ds, "nest_v")?;
                windspeed(&u, &v)
            }
        };
        let (vmin, vmax) = value_range(&scalar);
        let mut img = pseudocolor_parallel(
            &scalar,
            &self.colormap,
            vmin,
            vmax,
            self.scale,
            self.threads,
        );
        if self.glyph_stride > 0 {
            let u = grid_from_var(ds, "nest_u")?;
            let v = grid_from_var(ds, "nest_v")?;
            draw_wind_glyphs(
                &mut img,
                &u,
                &v,
                self.scale,
                self.glyph_stride,
                0.15 * self.scale as f64,
                [255, 255, 255],
            );
        }
        Ok(img)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrf::{ModelConfig, WrfModel};

    fn frame_with_nest() -> Dataset {
        let mut m = WrfModel::new(ModelConfig::aila_default().with_decimation(12)).unwrap();
        m.advance_steps(4, 1).unwrap();
        m.spawn_nest();
        m.frame()
    }

    #[test]
    fn renders_all_scalar_choices() {
        let ds = frame_with_nest();
        for scalar in [
            ScalarField::Pressure,
            ScalarField::Windspeed,
            ScalarField::Eta,
            ScalarField::Moisture,
        ] {
            let r = FrameRenderer {
                scalar,
                ..Default::default()
            };
            let img = r.render(&ds).unwrap();
            assert!(img.width() > 10 && img.height() > 10);
        }
    }

    #[test]
    fn image_is_not_monochrome() {
        let ds = frame_with_nest();
        let img = FrameRenderer::default().render(&ds).unwrap();
        let first = img.get(0, 0);
        let mut distinct = 0;
        'outer: for y in 0..img.height() {
            for x in 0..img.width() {
                if img.get(x, y) != first {
                    distinct += 1;
                    if distinct > 100 {
                        break 'outer;
                    }
                }
            }
        }
        assert!(distinct > 100, "a cyclone frame has structure");
    }

    #[test]
    fn nest_view_renders() {
        let ds = frame_with_nest();
        let r = FrameRenderer {
            scalar: ScalarField::Windspeed,
            ..Default::default()
        };
        let img = r.render_nest(&ds).unwrap();
        assert!(img.width() > 4);
    }

    #[test]
    fn nest_view_without_nest_errors() {
        let m = WrfModel::new(ModelConfig::aila_default().with_decimation(12)).unwrap();
        let ds = m.frame();
        assert_eq!(
            FrameRenderer::default().render_nest(&ds),
            Err(RenderError::MissingVariable("nest_pressure"))
        );
    }

    #[test]
    fn empty_dataset_errors_cleanly() {
        let ds = Dataset::new();
        assert!(matches!(
            FrameRenderer::default().render(&ds),
            Err(RenderError::MissingVariable("pressure"))
        ));
    }

    #[test]
    fn ppm_roundtrip_size() {
        let ds = frame_with_nest();
        let img = FrameRenderer::default().render(&ds).unwrap();
        let ppm = img.to_ppm();
        assert!(ppm.len() > img.width() * img.height() * 3);
    }
}
