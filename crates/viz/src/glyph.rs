//! Oriented wind glyphs (arrows), as in the paper's vector plots.

use crate::image::RgbImage;
use wrf::Grid2;

/// Draw wind arrows over an image rendered at `scale` pixels per grid
/// cell (same orientation contract as [`crate::render::pseudocolor`]:
/// grid row 0 at the image bottom). One arrow per `stride` cells; arrow
/// length is `len_per_ms` pixels per m/s, capped at `stride·scale` pixels.
pub fn draw_wind_glyphs(
    img: &mut RgbImage,
    u: &Grid2,
    v: &Grid2,
    scale: usize,
    stride: usize,
    len_per_ms: f64,
    color: [u8; 3],
) {
    assert!(stride > 0 && scale > 0);
    assert_eq!(u.nx(), v.nx());
    assert_eq!(u.ny(), v.ny());
    let h = img.height() as i64;
    let cap = (stride * scale) as f64;
    for j in (0..u.ny()).step_by(stride) {
        for i in (0..u.nx()).step_by(stride) {
            let (du, dv) = (u.at(i, j), v.at(i, j));
            let speed = (du * du + dv * dv).sqrt();
            if speed < 1e-9 {
                continue;
            }
            let len = (speed * len_per_ms).min(cap);
            let dirx = du / speed;
            let diry = dv / speed;
            let x0 = (i * scale) as f64;
            let y0 = (h - 1) as f64 - (j * scale) as f64; // flip north-up
            let x1 = x0 + dirx * len;
            let y1 = y0 - diry * len; // image y grows downward
            img.draw_line(x0 as i64, y0 as i64, x1 as i64, y1 as i64, color);
            // Arrow head: two short barbs at ±150° from the shaft.
            let (hx, hy) = (x1, y1);
            for sign in [-1.0, 1.0] {
                let ang = sign * 150.0f64.to_radians();
                let (c, s) = (ang.cos(), ang.sin());
                // Shaft direction in image coordinates.
                let (sx, sy) = (dirx, -diry);
                let bx = sx * c - sy * s;
                let by = sx * s + sy * c;
                let blen = (len * 0.3).max(1.0);
                img.draw_line(
                    hx as i64,
                    hy as i64,
                    (hx + bx * blen) as i64,
                    (hy + by * blen) as i64,
                    color,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_colored(img: &RgbImage, color: [u8; 3]) -> usize {
        let mut n = 0;
        for y in 0..img.height() {
            for x in 0..img.width() {
                if img.get(x, y) == color {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn calm_field_draws_nothing() {
        let mut img = RgbImage::new(40, 40, [0, 0, 0]);
        let u = Grid2::zeros(10, 10);
        let v = Grid2::zeros(10, 10);
        draw_wind_glyphs(&mut img, &u, &v, 4, 2, 1.0, [255, 0, 0]);
        assert_eq!(count_colored(&img, [255, 0, 0]), 0);
    }

    #[test]
    fn uniform_wind_draws_arrows() {
        let mut img = RgbImage::new(40, 40, [0, 0, 0]);
        let u = Grid2::from_fn(10, 10, |_, _| 5.0);
        let v = Grid2::zeros(10, 10);
        draw_wind_glyphs(&mut img, &u, &v, 4, 5, 1.0, [255, 0, 0]);
        assert!(count_colored(&img, [255, 0, 0]) > 10);
    }

    #[test]
    fn northward_wind_points_up_in_image() {
        let mut img = RgbImage::new(20, 20, [0, 0, 0]);
        let u = Grid2::zeros(1, 1);
        let v = Grid2::from_fn(1, 1, |_, _| 10.0);
        draw_wind_glyphs(&mut img, &u, &v, 1, 1, 1.0, [9, 9, 9]);
        // Shaft starts at the bottom-left and rises: some colored pixel
        // strictly above the origin row.
        let mut top_most = img.height();
        for y in 0..img.height() {
            for x in 0..img.width() {
                if img.get(x, y) == [9, 9, 9] && y < top_most {
                    top_most = y;
                }
            }
        }
        assert!(top_most < img.height() - 1, "arrow extends upward");
    }

    #[test]
    fn arrow_length_is_capped() {
        let mut img = RgbImage::new(30, 30, [0, 0, 0]);
        let u = Grid2::from_fn(3, 3, |_, _| 1e6);
        let v = Grid2::zeros(3, 3);
        // Extreme speed: arrows must stay within stride·scale of origin.
        draw_wind_glyphs(&mut img, &u, &v, 2, 2, 10.0, [1, 1, 1]);
        // The pixel at far right of the first row would only be hit by an
        // uncapped arrow (origin x = 0.., cap = 4px + barbs).
        assert_eq!(img.get(29, 29), [0, 0, 0]);
    }
}
