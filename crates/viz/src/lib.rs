//! Software visualization engine — the VisIt stand-in.
//!
//! The paper visualizes WRF output at the remote site with VisIt
//! (pseudocolor, contour and vector-glyph plots, volume rendering) through
//! a custom plug-in that reads the NetCDF files directly. This crate plays
//! that role for the [`ncdf`] frames the pipeline ships:
//!
//! - [`Colormap`] — perceptual and diverging color maps,
//! - [`RgbImage`] — an in-memory raster with PPM (P6) export and simple
//!   vector drawing (lines, rectangles, markers),
//! - [`render::pseudocolor`] — scalar-field pseudocolor plots,
//! - [`contour::marching_squares`] — iso-line extraction,
//! - [`glyph`] — wind-vector arrows,
//! - [`FrameRenderer`] — the "VisIt plug-in": reads a frame dataset
//!   directly and composes the paper's Figure 3/4-style views (windspeed
//!   in the nest inside the parent, perturbation-pressure maps, the track
//!   of the eye),
//! - [`track`] — eye detection and track accumulation across frames.
//!
//! # Example
//!
//! ```
//! use wrf::{ModelConfig, WrfModel};
//! use viz::FrameRenderer;
//!
//! let mut model = WrfModel::new(ModelConfig::aila_default().with_decimation(16)).unwrap();
//! model.advance_to_minutes(30.0, 1).unwrap();
//! let frame = model.frame();
//! let image = FrameRenderer::default().render(&frame).unwrap();
//! let ppm = image.to_ppm();
//! assert!(ppm.starts_with(b"P6"));
//! ```

mod colormap;
pub mod contour;
mod font;
pub mod glyph;
mod image;
pub mod plot;
pub mod render;
mod renderer;
pub mod track;

pub use colormap::Colormap;
pub use image::RgbImage;
pub use plot::{Plot, PlotSeries};
pub use renderer::{FrameRenderer, RenderError, ScalarField};
pub use track::{EyeFix, TrackLog};
