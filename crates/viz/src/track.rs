//! Eye detection and track accumulation across frames.
//!
//! The visualization site watches the cyclone's eye (the surface-pressure
//! minimum) move across frames; the accumulated fixes reproduce the
//! paper's Figure 4 track from the central Bay of Bengal to the
//! Darjeeling hills.

use ncdf::Dataset;

/// One eye fix extracted from one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EyeFix {
    /// Simulated minutes the frame represents.
    pub sim_minutes: f64,
    /// Eye longitude, degrees east.
    pub lon: f64,
    /// Eye latitude, degrees north.
    pub lat: f64,
    /// Minimum pressure, hPa.
    pub pressure_hpa: f64,
}

/// Extract the eye (pressure minimum) from a frame dataset. Prefers the
/// nest pressure field when present (finer sampling of the eye), falling
/// back to the parent. Returns `None` when the frame has no pressure
/// variable or the needed geometry attributes.
pub fn detect_eye(ds: &Dataset) -> Option<EyeFix> {
    let sim_minutes = ds.attr("sim_minutes")?.as_f64()?;
    let corners = ds.attr("domain_lonlat")?.as_f64_list()?;
    if corners.len() != 4 {
        return None;
    }
    let (lon_w, lat_s, lon_e, lat_n) = (corners[0], corners[1], corners[2], corners[3]);

    // Try the nest first.
    if let (Some(var), Some(origin), Some(dx)) = (
        ds.var("nest_pressure"),
        ds.attr("nest_origin_km").and_then(|a| a.as_f64_list()),
        ds.attr("nest_dx_km").and_then(|a| a.as_f64()),
    ) {
        if origin.len() == 2 {
            let shape = var.shape(ds);
            if shape.len() == 2 {
                let vals = var.data.to_f64_vec();
                let (idx, &p) = min_with_index(&vals)?;
                let nx = shape[1];
                let (i, j) = (idx % nx, idx / nx);
                let x_km = origin[0] + i as f64 * dx;
                let y_km = origin[1] + j as f64 * dx;
                // Geometry: km offsets over the full domain extent.
                let parent_dx = ds.attr("physics_dx_km")?.as_f64()?;
                let parent_shape = ds.var("pressure")?.shape(ds);
                let width_km = (parent_shape[1] - 1) as f64 * parent_dx;
                let height_km = (parent_shape[0] - 1) as f64 * parent_dx;
                return Some(EyeFix {
                    sim_minutes,
                    lon: lon_w + (lon_e - lon_w) * x_km / width_km,
                    lat: lat_s + (lat_n - lat_s) * y_km / height_km,
                    pressure_hpa: p,
                });
            }
        }
    }

    let var = ds.var("pressure")?;
    let shape = var.shape(ds);
    if shape.len() != 2 {
        return None;
    }
    let vals = var.data.to_f64_vec();
    let (idx, &p) = min_with_index(&vals)?;
    let nx = shape[1];
    let (i, j) = (idx % nx, idx / nx);
    Some(EyeFix {
        sim_minutes,
        lon: lon_w + (lon_e - lon_w) * i as f64 / (nx - 1) as f64,
        lat: lat_s + (lat_n - lat_s) * j as f64 / (shape[0] - 1) as f64,
        pressure_hpa: p,
    })
}

fn min_with_index(vals: &[f64]) -> Option<(usize, &f64)> {
    vals.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite pressures"))
}

/// The accumulated track across visualized frames.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackLog {
    fixes: Vec<EyeFix>,
}

impl TrackLog {
    /// Empty track.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild a track from previously accumulated fixes — how a
    /// restarted visualization process resumes from its durable state.
    pub fn from_fixes(fixes: Vec<EyeFix>) -> Self {
        TrackLog { fixes }
    }

    /// Ingest one frame; returns the fix if the frame carried one.
    pub fn ingest(&mut self, ds: &Dataset) -> Option<EyeFix> {
        let fix = detect_eye(ds)?;
        self.fixes.push(fix);
        Some(fix)
    }

    /// Append a fix extracted elsewhere — how the track-only degradation
    /// rung delivers: the sender ships a bare [`EyeFix`] instead of a
    /// frame, and the receiver appends it directly.
    pub fn push_fix(&mut self, fix: EyeFix) {
        self.fixes.push(fix);
    }

    /// All fixes in ingestion order.
    pub fn fixes(&self) -> &[EyeFix] {
        &self.fixes
    }

    /// Deepest pressure seen so far.
    pub fn min_pressure(&self) -> Option<f64> {
        self.fixes
            .iter()
            .map(|f| f.pressure_hpa)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Total great-circle-ish track length in degrees (flat approximation,
    /// adequate for plot labelling).
    pub fn length_deg(&self) -> f64 {
        self.fixes
            .windows(2)
            .map(|w| ((w[1].lon - w[0].lon).powi(2) + (w[1].lat - w[0].lat).powi(2)).sqrt())
            .sum()
    }

    /// Render the track as CSV (`sim_minutes,lon,lat,pressure_hpa`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("sim_minutes,lon,lat,pressure_hpa\n");
        for f in &self.fixes {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.2}\n",
                f.sim_minutes, f.lon, f.lat, f.pressure_hpa
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrf::{ModelConfig, WrfModel};

    fn model() -> WrfModel {
        WrfModel::new(ModelConfig::aila_default().with_decimation(12)).unwrap()
    }

    #[test]
    fn detects_eye_near_genesis() {
        let m = model();
        let fix = detect_eye(&m.frame()).expect("eye present");
        assert!((fix.lon - 88.0).abs() < 1.5, "lon {}", fix.lon);
        assert!((fix.lat - 14.0).abs() < 1.5, "lat {}", fix.lat);
        assert!(fix.pressure_hpa < 1010.0);
    }

    #[test]
    fn nest_pressure_takes_priority() {
        let mut m = model();
        m.advance_steps(3, 1).unwrap();
        m.spawn_nest();
        // Let the nest integrate a few steps: a freshly spawned nest is
        // pure interpolation (bounded by parent values); nudging then
        // deepens it below what the coarse parent can resolve.
        m.advance_steps(5, 1).unwrap();
        let no_nest_fix = {
            let mut m2 = m.clone();
            m2.despawn_nest();
            detect_eye(&m2.frame()).unwrap()
        };
        let nest_fix = detect_eye(&m.frame()).unwrap();
        // Nest sampling finds an eye at least as deep.
        assert!(nest_fix.pressure_hpa <= no_nest_fix.pressure_hpa + 0.2);
        assert!((nest_fix.lon - no_nest_fix.lon).abs() < 2.0);
    }

    #[test]
    fn track_accumulates_northward() {
        let mut m = model();
        let mut track = TrackLog::new();
        for _ in 0..4 {
            track.ingest(&m.frame()).expect("fix per frame");
            m.advance_to_minutes(m.sim_minutes() + 8.0 * 60.0, 1)
                .unwrap();
        }
        assert_eq!(track.fixes().len(), 4);
        let first = track.fixes()[0];
        let last = *track.fixes().last().unwrap();
        assert!(last.lat > first.lat + 0.5, "track moves north");
        assert!(track.length_deg() > 0.5);
        assert!(track.min_pressure().unwrap() <= first.pressure_hpa);
        let csv = track.to_csv();
        assert_eq!(csv.lines().count(), 5);
    }

    #[test]
    fn frame_without_pressure_is_none() {
        let ds = Dataset::new();
        assert!(detect_eye(&ds).is_none());
        let mut track = TrackLog::new();
        assert!(track.ingest(&ds).is_none());
        assert!(track.fixes().is_empty());
        assert_eq!(track.min_pressure(), None);
        assert_eq!(track.length_deg(), 0.0);
    }
}
