//! Marching-squares contour extraction.

use wrf::Grid2;

/// One contour segment in grid coordinates: `((x0, y0), (x1, y1))`.
pub type Segment = ((f64, f64), (f64, f64));

/// Extract iso-line segments of `grid` at `level` by marching squares.
/// Saddle cells (cases 5 and 10) are disambiguated by the cell-centre
/// average, the standard convention.
pub fn marching_squares(grid: &Grid2, level: f64) -> Vec<Segment> {
    let mut segs = Vec::new();
    let (nx, ny) = (grid.nx(), grid.ny());
    for j in 0..ny.saturating_sub(1) {
        for i in 0..nx.saturating_sub(1) {
            // Corner values, counter-clockwise from bottom-left.
            let bl = grid.at(i, j);
            let br = grid.at(i + 1, j);
            let tr = grid.at(i + 1, j + 1);
            let tl = grid.at(i, j + 1);
            let mut case = 0u8;
            if bl > level {
                case |= 1;
            }
            if br > level {
                case |= 2;
            }
            if tr > level {
                case |= 4;
            }
            if tl > level {
                case |= 8;
            }
            if case == 0 || case == 15 {
                continue;
            }
            // Edge interpolation points (fractional position of the
            // crossing along each cell edge).
            let frac = |a: f64, b: f64| {
                let d = b - a;
                if d.abs() < 1e-300 {
                    0.5
                } else {
                    ((level - a) / d).clamp(0.0, 1.0)
                }
            };
            let x = i as f64;
            let y = j as f64;
            let bottom = (x + frac(bl, br), y);
            let right = (x + 1.0, y + frac(br, tr));
            let top = (x + frac(tl, tr), y + 1.0);
            let left = (x, y + frac(bl, tl));
            match case {
                1 | 14 => segs.push((left, bottom)),
                2 | 13 => segs.push((bottom, right)),
                3 | 12 => segs.push((left, right)),
                4 | 11 => segs.push((right, top)),
                6 | 9 => segs.push((bottom, top)),
                7 | 8 => segs.push((left, top)),
                5 | 10 => {
                    // Saddle: use the centre average to pick the pairing.
                    let centre = (bl + br + tr + tl) / 4.0;
                    let centre_above = centre > level;
                    if (case == 5) == centre_above {
                        segs.push((left, top));
                        segs.push((bottom, right));
                    } else {
                        segs.push((left, bottom));
                        segs.push((right, top));
                    }
                }
                _ => unreachable!("cases 0 and 15 filtered above"),
            }
        }
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_field_has_no_contours() {
        let g = Grid2::from_fn(5, 5, |_, _| 1.0);
        assert!(marching_squares(&g, 0.5).is_empty());
        assert!(marching_squares(&g, 1.5).is_empty());
    }

    #[test]
    fn vertical_gradient_gives_horizontal_contour() {
        let g = Grid2::from_fn(5, 5, |_, j| j as f64);
        let segs = marching_squares(&g, 1.5);
        // One segment per column gap, all at y = 1.5.
        assert_eq!(segs.len(), 4);
        for ((_, y0), (_, y1)) in segs {
            assert!((y0 - 1.5).abs() < 1e-12);
            assert!((y1 - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn circular_bump_gives_closed_ring() {
        let g = Grid2::from_fn(21, 21, |i, j| {
            let dx = i as f64 - 10.0;
            let dy = j as f64 - 10.0;
            (-(dx * dx + dy * dy) / 20.0).exp()
        });
        let segs = marching_squares(&g, 0.5);
        assert!(!segs.is_empty());
        // All crossing points sit near the analytic iso-radius
        // r = √(20·ln 2) ≈ 3.72.
        let r_iso = (20.0 * 2.0f64.ln()).sqrt();
        for (a, b) in segs {
            for (x, y) in [a, b] {
                let r = ((x - 10.0).powi(2) + (y - 10.0).powi(2)).sqrt();
                assert!(
                    (r - r_iso).abs() < 0.8,
                    "point ({x},{y}) at r={r}, expected ≈{r_iso}"
                );
            }
        }
        // A ring's segments form a closed loop: every endpoint appears
        // exactly twice (within rounding).
        let mut endpoints: Vec<(i64, i64)> = Vec::new();
        for (a, b) in marching_squares(&g, 0.5) {
            for (x, y) in [a, b] {
                endpoints.push(((x * 1e6).round() as i64, (y * 1e6).round() as i64));
            }
        }
        endpoints.sort_unstable();
        for pair in endpoints.chunks(2) {
            assert_eq!(pair[0], pair[1], "unmatched contour endpoint");
        }
    }

    #[test]
    fn saddle_produces_two_segments() {
        // Checkerboard 2×2: high-low / low-high.
        let mut g = Grid2::zeros(2, 2);
        g.set(0, 0, 1.0);
        g.set(1, 1, 1.0);
        let segs = marching_squares(&g, 0.5);
        assert_eq!(segs.len(), 2, "saddle cell yields two segments");
    }

    #[test]
    fn level_outside_range_gives_nothing() {
        let g = Grid2::from_fn(4, 4, |i, _| i as f64);
        assert!(marching_squares(&g, 100.0).is_empty());
        assert!(marching_squares(&g, -100.0).is_empty());
    }
}
