//! Property tests over the decision algorithms: for *any* plausible
//! observation, every algorithm must return a legal configuration —
//! processors from the profiled table, output interval within the mission
//! band — and the optimization method's choice must satisfy its own disk
//! constraint whenever that constraint is satisfiable.

use adaptive_core::config::ApplicationConfig;
use adaptive_core::decision::{
    AlgorithmKind, DecisionInputs, DISK_BUDGET_FRACTION, DISK_RESERVE_FRACTION,
};
use perfmodel::ProcTable;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Obs {
    free_pct: f64,
    capacity: u64,
    bandwidth: f64,
    frame_bytes: u64,
    io_secs: f64,
    dt: f64,
    horizon_h: f64,
    current_procs_idx: usize,
    current_oi: f64,
}

fn arb_obs() -> impl Strategy<Value = Obs> {
    (
        0.5f64..100.0,
        50.0f64..500.0, // GB
        1e3f64..1e8,
        10_000_000u64..2_000_000_000,
        0.01f64..30.0,
        36.0f64..200.0,
        1.0f64..80.0,
        0usize..5,
        3.0f64..25.0,
    )
        .prop_map(
            |(free_pct, cap_gb, bandwidth, frame_bytes, io_secs, dt, horizon_h, idx, oi)| Obs {
                free_pct,
                capacity: (cap_gb * 1e9) as u64,
                bandwidth,
                frame_bytes,
                io_secs,
                dt,
                horizon_h,
                current_procs_idx: idx,
                current_oi: oi,
            },
        )
}

fn table() -> ProcTable {
    ProcTable::from_entries(vec![(1, 60.0), (4, 18.0), (12, 8.0), (24, 5.0), (48, 3.2)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_algorithm_returns_a_legal_configuration(obs in arb_obs()) {
        let t = table();
        let procs_list = [1usize, 4, 12, 24, 48];
        let current = ApplicationConfig {
            num_procs: procs_list[obs.current_procs_idx],
            output_interval_min: obs.current_oi,
            resolution_km: 24.0,
            nest_active: false,
            critical: false,
        };
        let inputs = DecisionInputs {
            free_disk_percent: obs.free_pct,
            free_disk_bytes: (obs.capacity as f64 * obs.free_pct / 100.0) as u64,
            disk_capacity_bytes: obs.capacity,
            bandwidth_bps: obs.bandwidth,
            frame_bytes: obs.frame_bytes,
            io_secs_per_frame: obs.io_secs,
            proc_table: &t,
            current: &current,
            dt_sim_secs: obs.dt,
            min_oi_min: 3.0,
            max_oi_min: 25.0,
            horizon_secs: obs.horizon_h * 3600.0,
        };
        for kind in AlgorithmKind::all() {
            let mut algo = kind.build();
            let (procs, oi) = algo.decide(&inputs);
            prop_assert!(
                t.time_for(procs).is_some(),
                "{}: processor count {procs} is not a profiled configuration",
                algo.name()
            );
            prop_assert!(
                (3.0 - 1e-9..=25.0 + 1e-9).contains(&oi),
                "{}: output interval {oi} outside the mission band",
                algo.name()
            );
            prop_assert!(oi.is_finite());
        }
    }

    #[test]
    fn optimization_respects_its_disk_budget_when_feasible(obs in arb_obs()) {
        let t = table();
        let current = ApplicationConfig::initial(48, 3.0, 24.0);
        let inputs = DecisionInputs {
            free_disk_percent: obs.free_pct,
            free_disk_bytes: (obs.capacity as f64 * obs.free_pct / 100.0) as u64,
            disk_capacity_bytes: obs.capacity,
            bandwidth_bps: obs.bandwidth,
            frame_bytes: obs.frame_bytes,
            io_secs_per_frame: obs.io_secs,
            proc_table: &t,
            current: &current,
            dt_sim_secs: obs.dt,
            min_oi_min: 3.0,
            max_oi_min: 25.0,
            horizon_secs: obs.horizon_h * 3600.0,
        };
        let mut algo = AlgorithmKind::Optimization.build();
        let (procs, oi) = algo.decide(&inputs);
        let chosen_t = t.time_for(procs).expect("from the table");

        // Reconstruct the LP's disk coefficient and check the chosen
        // configuration against it (only when the constraint was
        // satisfiable at all — otherwise the safe corner is expected).
        let reserve = DISK_RESERVE_FRACTION * obs.capacity as f64;
        let budget = DISK_BUDGET_FRACTION
            * ((obs.capacity as f64 * obs.free_pct / 100.0) - reserve).max(0.0);
        let k = obs.frame_bytes as f64 / (budget / (obs.horizon_h * 3600.0) + obs.bandwidth)
            - obs.io_secs;
        let z_lb = (obs.dt / 60.0 / 25.0).min(1.0);
        let feasible = k * z_lb <= t.max_time() + 1e-9;
        if feasible {
            let z = (obs.dt / 60.0) / oi;
            prop_assert!(
                chosen_t >= k * z - 1e-6,
                "chosen t={chosen_t} violates disk bound k*z={} (k={k}, z={z})",
                k * z
            );
        } else {
            prop_assert_eq!(procs, t.slowest().0, "infeasible -> safe corner");
            prop_assert!((oi - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn greedy_moves_parameters_in_the_documented_direction(
        obs in arb_obs(),
        free_low in 26.0f64..49.0,
        free_high in 61.0f64..100.0,
    ) {
        let t = table();
        // Mid-band OI, mid-band procs.
        let current = ApplicationConfig {
            num_procs: 12,
            output_interval_min: 10.0,
            resolution_km: 24.0,
            nest_active: false,
            critical: false,
        };
        let base = DecisionInputs {
            free_disk_percent: free_low,
            free_disk_bytes: (obs.capacity as f64 * free_low / 100.0) as u64,
            disk_capacity_bytes: obs.capacity,
            bandwidth_bps: obs.bandwidth,
            frame_bytes: obs.frame_bytes,
            io_secs_per_frame: obs.io_secs,
            proc_table: &t,
            current: &current,
            dt_sim_secs: obs.dt,
            min_oi_min: 3.0,
            max_oi_min: 25.0,
            horizon_secs: obs.horizon_h * 3600.0,
        };
        let mut algo = AlgorithmKind::GreedyThreshold.build();
        // Low disk (25..50): OI must not decrease.
        let (_, oi_low) = algo.decide(&base);
        prop_assert!(oi_low >= 10.0 - 1e-9, "low disk must not raise frequency");

        // High disk (>60) at max OI and mid procs: speed up first.
        let current_hi = ApplicationConfig {
            num_procs: 12,
            output_interval_min: 25.0,
            ..current.clone()
        };
        let mut hi = base.clone();
        hi.free_disk_percent = free_high;
        hi.free_disk_bytes = (obs.capacity as f64 * free_high / 100.0) as u64;
        hi.current = &current_hi;
        let (procs_hi, oi_hi) = algo.decide(&hi);
        let t_old = t.time_for(12).expect("in table");
        let t_new = t.time_for(procs_hi).expect("in table");
        prop_assert!(t_new <= t_old + 1e-9, "high disk must not slow down");
        prop_assert!((oi_hi - 25.0).abs() < 1e-9, "OI untouched until full speed");
    }
}
