//! A perfmodel re-fit must flow all the way through to reallocation.
//!
//! The hazard: the engine (and anything else costing steps) caches
//! processor tables derived from the scaling law. If the profiler re-fits
//! the law — say the lanes kernels land and a step suddenly costs a third
//! of what it did — a consumer holding tables or ∂t/∂p values from the
//! old coefficients would keep reallocating against a machine that no
//! longer exists. These tests pin the invalidation contract end to end:
//! the fit's fingerprint re-keys derived tables, the derivative is always
//! read off the *current* coefficients, and both decision algorithms
//! actually change their processor/output choices when the law changes.

use adaptive_core::config::ApplicationConfig;
use adaptive_core::decision::{DecisionAlgorithm, DecisionInputs, GreedyThreshold, Optimization};
use perfmodel::{ProcTable, Sample, ScalingFit};
use std::collections::HashMap;

/// The paper's fire cluster law (sites.rs inter-department coefficients).
fn old_fit() -> ScalingFit {
    ScalingFit::from_coeffs([0.3, 2.2e-3, 2e-3, 0.02])
}

/// Re-fit from profiling runs of a machine whose per-point cost dropped
/// ~3× (the lanes kernels) while the collectives overhead grew: samples
/// are generated from that ground truth and fitted, exactly as the
/// profiling binary does — not constructed coefficient-by-coefficient.
fn refit() -> ScalingFit {
    let truth = ScalingFit::from_coeffs([0.3, 0.7e-3, 2e-3, 0.06]);
    let mut samples = Vec::new();
    for &w in &[5e4, 1.4e5, 2.5e5] {
        for &p in &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 48.0] {
            samples.push(Sample {
                procs: p,
                work: w,
                time: truth.predict(p, w),
            });
        }
    }
    ScalingFit::fit(&samples).expect("well-conditioned design")
}

const WORK: f64 = 1.4e5; // 404×349 parent grid, the 16 km stage
const ALLOWED: [usize; 7] = [1, 2, 4, 8, 16, 32, 48];

fn inputs<'a>(table: &'a ProcTable, current: &'a ApplicationConfig) -> DecisionInputs<'a> {
    let capacity = 100_000_000_000u64;
    DecisionInputs {
        free_disk_percent: 60.0,
        free_disk_bytes: 60_000_000_000,
        disk_capacity_bytes: capacity,
        bandwidth_bps: 7e6,
        frame_bytes: 100_000_000,
        io_secs_per_frame: 0.7,
        proc_table: table,
        current,
        dt_sim_secs: 96.0,
        min_oi_min: 3.0,
        max_oi_min: 25.0,
        horizon_secs: 20.0 * 3600.0,
    }
}

#[test]
fn fingerprint_rekeys_a_proc_table_cache() {
    // The engine's cache pattern, in miniature: tables keyed by
    // (fingerprint, resolution bits, nest).
    let mut cache: HashMap<(u64, u64, bool), ProcTable> = HashMap::new();
    let res_bits = 16.0f64.to_bits();

    let old = old_fit();
    let key_old = (old.fingerprint(), res_bits, true);
    cache.insert(key_old, ProcTable::from_fit(&old, WORK, &ALLOWED));

    let new = refit();
    let key_new = (new.fingerprint(), res_bits, true);
    assert_ne!(key_old, key_new, "re-fit must change the cache key");
    assert!(
        !cache.contains_key(&key_new),
        "new key misses: the stale table cannot be served"
    );
    cache.insert(key_new, ProcTable::from_fit(&new, WORK, &ALLOWED));

    // And the tables genuinely disagree — serving the old one would have
    // been wrong, not just redundant.
    let t_old = cache[&key_old].time_for(48).unwrap();
    let t_new = cache[&key_new].time_for(48).unwrap();
    assert!(
        (t_old - t_new).abs() / t_old > 0.05,
        "laws differ materially at 48 procs: {t_old} vs {t_new}"
    );
}

#[test]
fn derivative_comes_from_current_coefficients_not_a_cache() {
    let old = old_fit();
    let new = refit();
    for p in [2.0, 8.0, 32.0] {
        // Finite differences of the *new* law agree with the analytic
        // derivative read off the new coefficients...
        let h = 1e-5 * p;
        let fd = (new.predict(p + h, WORK) - new.predict(p - h, WORK)) / (2.0 * h);
        let an = new.d_dt_d_procs(p, WORK);
        assert!(
            (fd - an).abs() <= 1e-6 * an.abs().max(1e-9),
            "p={p}: analytic {an} vs finite-difference {fd}"
        );
        // ...and disagree with the stale derivative, so any consumer that
        // cached ∂t/∂p across the re-fit is measurably wrong.
        let stale = old.d_dt_d_procs(p, WORK);
        assert!(
            (an - stale).abs() > 0.1 * an.abs().max(stale.abs()),
            "p={p}: re-fit moved the derivative ({stale} → {an})"
        );
    }
}

#[test]
fn refit_changes_where_scaling_stops_paying() {
    // The lanes re-fit cut the work term and grew the collectives term,
    // so ∂t/∂p = 0 (the point where adding processors stops helping)
    // moves to *fewer* processors. Solve both laws by scan.
    let flip = |fit: &ScalingFit| {
        (1..=20_000)
            .map(|p| p as f64)
            .find(|&p| fit.d_dt_d_procs(p, WORK) > 0.0)
            .unwrap_or(f64::INFINITY)
    };
    let flip_old = flip(&old_fit());
    let flip_new = flip(&refit());
    assert!(
        flip_new < flip_old,
        "re-fit pulls the scaling knee inward: {flip_old} → {flip_new}"
    );
}

#[test]
fn greedy_reallocation_tracks_the_refit_law() {
    // Algorithm 1 maps wall-time targets back to processor counts through
    // the table, so it only notices a re-fit that changes the table's
    // *shape* (its pure W/p component cancels out of the interpolation).
    // The lanes re-fit does exactly that: the collectives term tripled
    // relative to the work term. At a coarse grid (small W) that moves
    // the time landscape enough that greedy's recovery step lands on a
    // different processor count.
    let coarse_work = 5e3;
    let every: Vec<usize> = (1..=48).collect();
    let table_old = ProcTable::from_fit(&old_fit(), coarse_work, &every);
    let table_new = ProcTable::from_fit(&refit(), coarse_work, &every);

    // Slowed down earlier (8 procs), disk has recovered to 80%: greedy
    // walks the step time halfway back toward the table's minimum.
    let current = ApplicationConfig {
        num_procs: 8,
        output_interval_min: 25.0,
        resolution_km: 48.0,
        nest_active: false,
        critical: false,
    };
    let make = |table: &ProcTable| {
        let mut algo = GreedyThreshold::new();
        let mut inp = inputs(table, &current);
        inp.free_disk_percent = 80.0;
        inp.free_disk_bytes = 80_000_000_000;
        algo.decide(&inp)
    };
    let (procs_old, _) = make(&table_old);
    let (procs_new, _) = make(&table_new);
    assert_ne!(
        procs_old, procs_new,
        "greedy must react to the re-fit: old {procs_old} vs new {procs_new} procs"
    );
    // And the wall-time plan it implies is read off the new law, not the
    // old one: the chosen configuration's step time changed materially.
    let t_old = table_old.time_for(procs_old).unwrap();
    let t_new = table_new.time_for(procs_new).unwrap();
    assert!(
        (t_old - t_new).abs() / t_old > 0.2,
        "step-time plan follows the re-fit: {t_old} vs {t_new}"
    );
}

#[test]
fn lp_reallocation_tracks_the_refit_law() {
    // The LP costs steps straight from the table; a 3× cheaper law
    // changes the steady-state (procs, output-interval) optimum.
    let current = ApplicationConfig::initial(48, 3.0, 16.0);
    let table_old = ProcTable::from_fit(&old_fit(), WORK, &ALLOWED);
    let table_new = ProcTable::from_fit(&refit(), WORK, &ALLOWED);

    let make = |table: &ProcTable| {
        let mut algo = Optimization::new();
        let inp = inputs(table, &current);
        algo.decide(&inp)
    };
    let (procs_old, oi_old) = make(&table_old);
    let (procs_new, oi_new) = make(&table_new);
    assert!(
        procs_old != procs_new || (oi_old - oi_new).abs() > 1e-9,
        "LP must react to the re-fit: old ({procs_old}, {oi_old}) vs new ({procs_new}, {oi_new})"
    );
}
