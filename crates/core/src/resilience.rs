//! Self-healing frame transport: checksums, backoff, and the resilient
//! sender.
//!
//! The v3 wire protocol (see [`crate::net_transport`]) gives every frame
//! a sequence number, a CRC, and a degradation-rung byte, and every ack
//! carries the receiver's
//! *last applied* sequence. That is enough to make the sender's recovery
//! loop simple and exactly-once from the visualization's point of view:
//!
//! - on any I/O error the sender reconnects with seeded exponential
//!   backoff plus jitter,
//! - the receiver's handshake reports the last sequence it applied, so
//!   the sender resumes from there — frames the receiver already has are
//!   acknowledged without being re-applied (dedup), frames it lost are
//!   replayed,
//! - a frame is retired only when an ack covering its sequence arrives.

use crate::net_transport::{FrameSender, TransportError};
use crate::qos::QosRung;
use std::net::SocketAddr;
use std::time::Duration;

/// IEEE 802.3 CRC-32 (the zlib/PNG polynomial).
///
/// Delegates to the canonical implementation in [`resources::crc32`] —
/// the same checksum guards the wire protocol's frames, the write-ahead
/// journal's records, and the snapshot containers, so a single table
/// serves them all.
pub fn crc32(data: &[u8]) -> u32 {
    resources::crc32(data)
}

/// Seeded exponential backoff with jitter.
///
/// Delay for attempt `k` (0-based) is `base · 2^k`, capped at `cap`, then
/// scaled by a uniform jitter in `[0.5, 1.0]` so a fleet of senders
/// recovering from the same outage does not reconnect in lockstep.
/// Deterministic per seed, so tests can assert exact schedules.
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    base: Duration,
    cap: Duration,
    max_attempts: u32,
    /// Total wall-clock retry budget: once the *sum* of delays handed out
    /// reaches this, [`checked_delay`](Self::checked_delay) refuses
    /// further retries. `None` = attempts-only bound (the historical
    /// behavior).
    max_total_delay: Option<Duration>,
    /// Sum of every delay handed out so far (saturating).
    spent: Duration,
    seed: u64,
    rng: crate::fault::SplitMix64,
}

impl BackoffPolicy {
    /// Default policy: 50 ms base, 2 s cap, 8 attempts.
    pub fn new(seed: u64) -> Self {
        BackoffPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(2),
            max_attempts: 8,
            max_total_delay: None,
            spent: Duration::ZERO,
            seed,
            rng: crate::fault::SplitMix64::new(seed),
        }
    }

    /// Builder: base delay.
    pub fn with_base(mut self, base: Duration) -> Self {
        self.base = base;
        self
    }

    /// Builder: delay cap.
    pub fn with_cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Builder: attempts before giving up.
    pub fn with_max_attempts(mut self, n: u32) -> Self {
        assert!(n > 0, "at least one attempt");
        self.max_attempts = n;
        self
    }

    /// Builder: total retry wall-clock budget. A policy with a large
    /// `max_attempts` but a capped per-retry delay can still spin against
    /// a permanently dead receiver for `attempts × cap`; the wall budget
    /// bounds the *sum* of sleeps instead, so exhaustion arrives in
    /// bounded time regardless of the attempt count.
    pub fn with_max_total_delay(mut self, budget: Duration) -> Self {
        self.max_total_delay = Some(budget);
        self
    }

    /// Attempts before giving up.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The total retry wall-clock budget, if one is set.
    pub fn max_total_delay(&self) -> Option<Duration> {
        self.max_total_delay
    }

    /// Total delay handed out so far (saturating sum over
    /// [`delay`](Self::delay) and [`checked_delay`](Self::checked_delay)).
    pub fn total_delay_spent(&self) -> Duration {
        self.spent
    }

    /// Jittered delay before retry number `attempt` (0-based), drawn
    /// from the sequential RNG stream without touching `spent`.
    fn raw_delay(&mut self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        exp.mul_f64(0.5 + 0.5 * self.rng.unit_f64())
    }

    /// Jittered delay before retry number `attempt` (0-based).
    pub fn delay(&mut self, attempt: u32) -> Duration {
        let d = self.raw_delay(attempt);
        self.spent = self.spent.saturating_add(d);
        d
    }

    /// [`delay`](Self::delay) under the wall-clock budget: `None` once
    /// the budget is exhausted (the caller must stop retrying), otherwise
    /// the jittered delay clamped so the cumulative sleep never exceeds
    /// the budget. Without a budget this never refuses.
    ///
    /// Saturates rather than overflows: a budget of [`Duration::MAX`]
    /// never exhausts, and absurd attempt counts keep the per-retry delay
    /// capped exactly as [`delay`](Self::delay) does.
    pub fn checked_delay(&mut self, attempt: u32) -> Option<Duration> {
        let Some(budget) = self.max_total_delay else {
            return Some(self.delay(attempt));
        };
        let remaining = budget.checked_sub(self.spent)?;
        if remaining.is_zero() {
            return None;
        }
        // Charge only the clamped grant: the caller sleeps the clamped
        // value, so `spent` must track real wall time or the budget
        // exhausts early and `total_delay_spent` over-reports.
        let d = self.raw_delay(attempt).min(remaining);
        self.spent = self.spent.saturating_add(d);
        Some(d)
    }

    /// Deterministic per-client jittered delay for retry number `attempt`
    /// (0-based), *without* consuming the policy's shared RNG stream.
    ///
    /// A fleet of clients recovering from the same outage must not
    /// reconnect in lockstep, and under a DES clock the schedule must be
    /// replayable: the jitter here is a pure function of
    /// `(policy seed, client_id, attempt)`, so the same client draws the
    /// same delay on every replay while distinct clients spread across
    /// `[0.5, 1.0]×` the exponential — even when every one of them asks
    /// at the same virtual instant. [`delay`](Self::delay) is untouched
    /// (its sequential stream keeps its exact historical schedules).
    pub fn client_delay(&self, client_id: u64, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.cap);
        let mut rng = crate::fault::SplitMix64::new(
            self.seed ^ client_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ ((attempt as u64) << 32),
        );
        exp.mul_f64(0.5 + 0.5 * rng.unit_f64())
    }
}

/// Transport statistics the resilient sender accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Frames handed to [`ResilientSender::send`] and eventually covered
    /// by an ack.
    pub frames_acked: u64,
    /// Successful re-establishments of a dropped connection.
    pub reconnects: u64,
    /// Frame transmissions beyond the first attempt (replays after a
    /// failure) — includes frames the receiver deduplicated.
    pub replays: u64,
    /// Frames the receiver reported as already applied (resume-from-ack
    /// skipped re-applying them).
    pub deduplicated: u64,
    /// Sends abandoned because the retry *wall-clock* budget
    /// ([`BackoffPolicy::with_max_total_delay`]) ran out — a permanently
    /// dead receiver surfaces here in bounded time.
    pub retry_budget_exhausted: u64,
}

/// A [`FrameSender`] wrapper that survives receiver restarts.
///
/// The address is supplied by a closure so a restarted receiver may come
/// back on a different port (tests do exactly that); `send` blocks until
/// the frame is covered by an ack or the backoff budget is exhausted.
pub struct ResilientSender<A: FnMut() -> SocketAddr> {
    addr: A,
    conn: Option<FrameSender>,
    ever_connected: bool,
    next_seq: u64,
    backoff: BackoffPolicy,
    io_timeout: Duration,
    stats: SenderStats,
}

impl<A: FnMut() -> SocketAddr> ResilientSender<A> {
    /// New sender over an address provider. No connection is made until
    /// the first `send`.
    pub fn new(addr: A, backoff: BackoffPolicy) -> Self {
        ResilientSender {
            addr,
            conn: None,
            ever_connected: false,
            next_seq: 1,
            backoff,
            io_timeout: Duration::from_secs(5),
            stats: SenderStats::default(),
        }
    }

    /// Builder: socket connect/read/write timeout.
    pub fn with_io_timeout(mut self, t: Duration) -> Self {
        self.io_timeout = t;
        self
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// Sequence number the next frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn connection(&mut self) -> Result<&mut FrameSender, TransportError> {
        if self.conn.is_none() {
            let addr = (self.addr)();
            let reattempt = self.ever_connected;
            // Mark the attempt *before* connecting: a torn or garbage
            // handshake is a connection event too, so the establishment
            // that follows it counts as a reconnect, not a first contact.
            self.ever_connected = true;
            let sender = FrameSender::connect_with_timeout(addr, self.io_timeout)?;
            if reattempt {
                // Re-establishment, not the first connection of the run.
                self.stats.reconnects += 1;
            }
            self.conn = Some(sender);
        }
        Ok(self.conn.as_mut().expect("just inserted"))
    }

    /// Ship one frame with at-least-once delivery and exactly-once
    /// application: retries with backoff across connection failures, and
    /// relies on the receiver's last-applied handshake/acks to skip
    /// frames that already landed.
    ///
    /// Returns the sequence number the frame was assigned.
    pub fn send(&mut self, payload: &[u8]) -> Result<u64, TransportError> {
        self.send_rung(QosRung::FullRes, payload)
    }

    /// [`Self::send`] at an explicit degradation rung: the rung byte
    /// rides in every (re)transmission's header, so a replay after a
    /// reconnect is still decoded the way the original would have been.
    pub fn send_rung(&mut self, rung: QosRung, payload: &[u8]) -> Result<u64, TransportError> {
        let seq = self.next_seq;
        let mut attempt = 0u32;
        let mut first_try = true;
        loop {
            let result = self.try_once(seq, rung, payload, first_try);
            match result {
                Ok(deduped) => {
                    self.next_seq = seq + 1;
                    self.stats.frames_acked += 1;
                    if deduped {
                        self.stats.deduplicated += 1;
                    }
                    return Ok(seq);
                }
                Err(e @ TransportError::BadFrame(_)) => {
                    // The payload itself is unacceptable; replaying the
                    // same bytes cannot succeed.
                    return Err(e);
                }
                Err(e) => {
                    self.conn = None;
                    attempt += 1;
                    if attempt >= self.backoff.max_attempts() {
                        return Err(e);
                    }
                    match self.backoff.checked_delay(attempt - 1) {
                        Some(d) => std::thread::sleep(d),
                        None => {
                            // Wall-clock retry budget exhausted: give up
                            // in bounded time even though attempts remain.
                            self.stats.retry_budget_exhausted += 1;
                            return Err(e);
                        }
                    }
                    first_try = false;
                }
            }
        }
    }

    /// One attempt: ensure a connection, then either dedup against the
    /// receiver's last-applied sequence or transmit. `Ok(true)` means the
    /// receiver already had the frame.
    fn try_once(
        &mut self,
        seq: u64,
        rung: QosRung,
        payload: &[u8],
        first_try: bool,
    ) -> Result<bool, TransportError> {
        let replay = !first_try;
        if self.connection()?.peer_last_applied() >= seq {
            // The previous transmission landed; only the ack was lost.
            return Ok(true);
        }
        if replay {
            self.stats.replays += 1;
        }
        self.conn
            .as_mut()
            .expect("connected above")
            .send_seq_rung(seq, rung, payload)?;
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xe8b7_be43);
        assert_ne!(crc32(b"frame"), crc32(b"framf"), "one-bit difference");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let mut p = BackoffPolicy::new(1)
            .with_base(Duration::from_millis(100))
            .with_cap(Duration::from_millis(800));
        let d: Vec<Duration> = (0..6).map(|k| p.delay(k)).collect();
        for (k, d) in d.iter().enumerate() {
            // Jitter keeps each delay within [0.5, 1.0]× the exponential.
            let nominal = Duration::from_millis((100u64 << k).min(800));
            assert!(*d <= nominal, "attempt {k}: {d:?} > {nominal:?}");
            assert!(*d >= nominal / 2, "attempt {k}: {d:?} < half nominal");
        }
        assert!(d[5] <= Duration::from_millis(800), "cap respected");
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let delays = |seed| {
            let mut p = BackoffPolicy::new(seed);
            (0..5).map(|k| p.delay(k)).collect::<Vec<_>>()
        };
        assert_eq!(delays(9), delays(9));
        assert_ne!(delays(9), delays(10));
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        BackoffPolicy::new(0).with_max_attempts(0);
    }

    #[test]
    fn backoff_survives_absurd_attempt_counts() {
        // A long outage can push the attempt counter far past the point
        // where `base << attempt` would overflow. The delay must stay
        // finite and capped, never panic or wrap to something tiny.
        let cap = Duration::from_secs(2);
        let mut p = BackoffPolicy::new(7).with_cap(cap);
        for attempt in [17, 20, 31, 32, 63, 64, 1_000, 1_000_000, u32::MAX] {
            let d = p.delay(attempt);
            assert!(d <= cap, "attempt {attempt}: {d:?} exceeds the cap");
            assert!(
                d >= cap / 2,
                "attempt {attempt}: {d:?} collapsed below half the cap — overflow wrap?"
            );
        }
        // Also with a base large enough that the shift itself saturates
        // (powers of two so the jitter multiply is exact in f64).
        let mut big = BackoffPolicy::new(8)
            .with_base(Duration::from_secs(1 << 40))
            .with_cap(Duration::from_secs(1 << 41));
        let d = big.delay(u32::MAX);
        assert!(d <= Duration::from_secs(1 << 41), "saturating, capped");
    }

    #[test]
    fn retry_wall_budget_exhausts_in_bounded_time() {
        // 1000 attempts × 2 s cap would spin for ~half an hour against a
        // dead receiver; the wall budget bounds the total sleep instead.
        let budget = Duration::from_millis(400);
        let mut p = BackoffPolicy::new(3)
            .with_base(Duration::from_millis(100))
            .with_cap(Duration::from_millis(200))
            .with_max_attempts(1000)
            .with_max_total_delay(budget);
        let mut total = Duration::ZERO;
        let mut attempts = 0u32;
        while let Some(d) = p.checked_delay(attempts) {
            total += d;
            attempts += 1;
            assert!(attempts < 100, "budget never exhausted");
        }
        assert!(
            total <= budget,
            "slept {total:?} past the {budget:?} budget"
        );
        assert!(attempts >= 2, "a 400 ms budget affords at least two waits");
        assert!(attempts < 1000, "exhausted long before the attempt bound");
    }

    #[test]
    fn retry_budget_overflow_and_saturation_edges() {
        // Duration::MAX budget: the saturating spent-counter must never
        // wrap into a spurious exhaustion, even with enormous delays.
        let mut p = BackoffPolicy::new(11)
            .with_base(Duration::from_secs(1 << 40))
            .with_cap(Duration::from_secs(1 << 41))
            .with_max_total_delay(Duration::MAX);
        for attempt in [0, 31, 64, u32::MAX] {
            let d = p.checked_delay(attempt).expect("MAX budget never refuses");
            assert!(d <= Duration::from_secs(1 << 41));
        }
        // Zero budget: refused immediately, nothing slept.
        let mut z = BackoffPolicy::new(11).with_max_total_delay(Duration::ZERO);
        assert_eq!(z.checked_delay(0), None);
        assert_eq!(z.total_delay_spent(), Duration::ZERO);
        // No budget: checked_delay behaves exactly like delay (same RNG
        // stream) and never refuses.
        let mut a = BackoffPolicy::new(13);
        let mut b = BackoffPolicy::new(13);
        for k in 0..6 {
            assert_eq!(a.checked_delay(k), Some(b.delay(k)));
        }
        // The final grant is clamped so the cumulative sleep never
        // exceeds the budget, then the next call refuses.
        let budget = Duration::from_millis(150);
        let mut c = BackoffPolicy::new(17)
            .with_base(Duration::from_millis(100))
            .with_cap(Duration::from_millis(100))
            .with_max_total_delay(budget);
        let mut total = Duration::ZERO;
        while let Some(d) = c.checked_delay(0) {
            total += d;
        }
        assert!(total <= budget);
        assert_eq!(
            c.total_delay_spent(),
            total,
            "spent must track the clamped grants actually slept"
        );
    }

    #[test]
    fn resilient_sender_counts_retry_budget_exhaustion() {
        use std::net::TcpListener;
        // A listener that never accepts: loopback connects land in the
        // backlog but no hello ever arrives, so every attempt times out —
        // and the wall budget (not the 1000-attempt bound) ends the send.
        let dead = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = dead.local_addr().expect("addr");
        let mut sender = ResilientSender::new(
            move || addr,
            BackoffPolicy::new(21)
                .with_base(Duration::from_millis(10))
                .with_cap(Duration::from_millis(20))
                .with_max_attempts(1000)
                .with_max_total_delay(Duration::from_millis(100)),
        )
        .with_io_timeout(Duration::from_millis(100));
        let started = std::time::Instant::now();
        let err = sender.send(b"doomed").unwrap_err();
        assert!(!matches!(err, TransportError::BadFrame(_)), "I/O, not nack");
        assert_eq!(sender.stats().retry_budget_exhausted, 1);
        assert_eq!(sender.stats().frames_acked, 0);
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "exhaustion must arrive in bounded wall time"
        );
    }

    #[test]
    fn client_delay_is_pure_and_replayable() {
        let p = BackoffPolicy::new(99);
        // Same (seed, client, attempt) → same delay, and asking does not
        // disturb the policy (it takes &self), so interleaving order is
        // irrelevant — the DES replay property.
        assert_eq!(p.client_delay(7, 3), p.client_delay(7, 3));
        let fresh = BackoffPolicy::new(99);
        assert_eq!(p.client_delay(7, 3), fresh.client_delay(7, 3));
        // Different seeds draw different jitter.
        assert_ne!(
            BackoffPolicy::new(1).client_delay(7, 3),
            BackoffPolicy::new(2).client_delay(7, 3)
        );
    }

    #[test]
    fn client_delay_spreads_a_fleet() {
        // 1000 clients retrying the same attempt at the same virtual
        // instant must not cluster: delays stay in the jitter band and
        // take many distinct values.
        let p = BackoffPolicy::new(5)
            .with_base(Duration::from_millis(100))
            .with_cap(Duration::from_secs(60));
        let nominal = Duration::from_millis(400); // attempt 2 → base·4
        let delays: Vec<Duration> = (0..1000).map(|c| p.client_delay(c, 2)).collect();
        let mut distinct = delays.clone();
        distinct.sort();
        distinct.dedup();
        assert!(
            distinct.len() > 900,
            "only {} distinct delays",
            distinct.len()
        );
        for d in &delays {
            assert!(
                *d <= nominal && *d >= nominal / 2,
                "{d:?} outside jitter band"
            );
        }
    }

    #[test]
    fn client_delay_survives_absurd_attempt_counts() {
        // Mirrors `backoff_survives_absurd_attempt_counts` for the pure
        // per-client path: the shift saturates and the cap holds.
        let cap = Duration::from_secs(2);
        let p = BackoffPolicy::new(7).with_cap(cap);
        for attempt in [17, 31, 32, 64, 1_000_000, u32::MAX] {
            let d = p.client_delay(123, attempt);
            assert!(d <= cap, "attempt {attempt}: {d:?} exceeds the cap");
            assert!(d >= cap / 2, "attempt {attempt}: {d:?} below half the cap");
        }
    }

    #[test]
    fn resilient_sender_resumes_after_mid_handshake_disconnect() {
        use crate::net_transport::FrameReceiver;
        use std::io::Write as _;
        use std::net::TcpListener;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        // A saboteur endpoint that accepts the connection, writes only
        // half the handshake hello, then slams the connection shut —
        // the sender is disconnected *mid-handshake*.
        let saboteur = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let saboteur_addr = saboteur.local_addr().expect("addr");
        let sab_thread = std::thread::spawn(move || {
            if let Ok((mut stream, _)) = saboteur.accept() {
                stream.write_all(b"AHL2\x01\x02").ok(); // 6 of 12 bytes
                                                        // dropped here: mid-handshake reset
            }
        });

        let receiver = FrameReceiver::start().expect("bind real receiver");
        let real_addr = receiver.addr();
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let mut sender = ResilientSender::new(
            move || {
                // First connection goes to the saboteur, retries go to
                // the real receiver that came back.
                if c.fetch_add(1, Ordering::SeqCst) == 0 {
                    saboteur_addr
                } else {
                    real_addr
                }
            },
            BackoffPolicy::new(42).with_base(Duration::from_millis(5)),
        )
        .with_io_timeout(Duration::from_millis(500));

        let model = wrf::WrfModel::new(wrf::ModelConfig::aila_default().with_decimation(16))
            .expect("valid");
        let seq = sender
            .send(&model.frame().to_bytes())
            .expect("recovered from the torn handshake");
        assert_eq!(seq, 1);
        assert_eq!(sender.stats().frames_acked, 1);
        assert!(calls.load(Ordering::SeqCst) >= 2, "retried past the tear");
        assert_eq!(receiver.frames_received(), 1, "frame landed after resume");
        sab_thread.join().expect("saboteur exits");
    }
}
