//! The optimization method — the paper's §IV-B linear program.
//!
//! Decision variables (after the paper's linearization by dividing the
//! interval constraints by the number of solved frames `S`):
//!
//! - `t` — execution time per simulation step,
//! - `z = F/S` — frames output per frame solved (the output frequency),
//! - `y = T/S` — frames transferred per frame solved.
//!
//! ```text
//! minimize t
//! s.t.  t + TIO·z ≤ (O/b)·y              (Eq. 5: continuous visualization)
//!       t ≥ (O/(D/n + b) − TIO)·z        (Eq. 6: no overflow within horizon n)
//!       y ≤ z                            (cannot transfer unwritten frames)
//!       TLB ≤ t ≤ TUB                    (Eq. 7: the machine's range)
//!       LB ≤ z ≤ UB                      (Eq. 8: output-interval bounds)
//!       0 ≤ y ≤ UB
//! ```
//!
//! Because `z` does not appear in the objective, the program is solved
//! lexicographically: first `min t`, then — with `t` pinned at its optimum
//! — `max z`, which maximizes the temporal resolution of visualization,
//! the paper's stated secondary objective. Eq. 9 (`OI·F = ts·S`) converts
//! the optimal `z` to the output interval: `OI = ts / z`.
//!
//! Two practical notes the paper leaves implicit:
//!
//! - On a link faster than the machine can produce frames, Eq. 5 is
//!   unsatisfiable at *any* setting (the visualization end is always
//!   starved by the simulation, not by the network); the constraint is
//!   then dropped — transfers simply idle between frames.
//! - The optimal `t` maps to a processor count by choosing the profiled
//!   time **closest from above**: rounding down would run faster than the
//!   disk-overflow bound allows.

use super::{BindingConstraint, DecisionAlgorithm, DecisionInputs};
use lp::{Problem, Relation, Solution};

/// LP-based steady-state decision algorithm (GLPK stand-in inside).
#[derive(Debug, Clone, Default)]
pub struct Optimization {
    last_binding: Option<BindingConstraint>,
}

/// Scalar ingredients of the LP, extracted once.
struct LpTerms {
    o_over_b: f64,
    tio: f64,
    k_disk: f64,
    t_lb: f64,
    t_ub: f64,
    z_lb: f64,
    z_ub: f64,
}

impl LpTerms {
    fn from_inputs(inp: &DecisionInputs<'_>) -> Self {
        let o = inp.frame_bytes as f64;
        let b = inp.bandwidth_bps.max(1.0);
        // Disk budget: free space minus the safety reserve (the LP plans
        // to consume its whole budget over the horizon — see
        // [`crate::decision::DISK_RESERVE_FRACTION`]).
        let reserve = crate::decision::DISK_RESERVE_FRACTION * inp.disk_capacity_bytes as f64;
        let d =
            crate::decision::DISK_BUDGET_FRACTION * (inp.free_disk_bytes as f64 - reserve).max(0.0);
        let n = inp.horizon_secs.max(1.0);
        // z = ts/OI with both in simulated minutes; one frame per step is
        // z = 1.
        let ts_min = inp.dt_sim_secs / 60.0;
        let z_lb = (ts_min / inp.max_oi_min).min(1.0);
        LpTerms {
            o_over_b: o / b,
            tio: inp.io_secs_per_frame,
            k_disk: o / (d / n + b) - inp.io_secs_per_frame,
            t_lb: inp.proc_table.min_time(),
            t_ub: inp.proc_table.max_time(),
            z_lb,
            z_ub: (ts_min / inp.min_oi_min).min(1.0).max(z_lb),
        }
    }

    /// Build the LP with the given objective; optionally with Eq. 5, and
    /// optionally with `t` pinned.
    fn problem(
        &self,
        objective: [f64; 3],
        maximize: bool,
        with_eq5: bool,
        pin_t: Option<f64>,
    ) -> Problem {
        let mut p = if maximize {
            Problem::maximize(&objective)
        } else {
            Problem::minimize(&objective)
        };
        match pin_t {
            Some(t) => p.set_bounds(0, t, t),
            None => p.set_bounds(0, self.t_lb, self.t_ub),
        }
        p.set_bounds(1, self.z_lb, self.z_ub);
        p.set_bounds(2, 0.0, self.z_ub);
        if with_eq5 {
            p.add_constraint(&[1.0, self.tio, -self.o_over_b], Relation::Le, 0.0);
        }
        p.add_constraint(&[1.0, -self.k_disk, 0.0], Relation::Ge, 0.0);
        p.add_constraint(&[0.0, -1.0, 1.0], Relation::Le, 0.0);
        p
    }
}

impl Optimization {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Render the phase-1 linear program for the given observations in
    /// CPLEX LP text format — what a GLPK user would inspect. Variables:
    /// `x0 = t`, `x1 = z`, `x2 = y`.
    pub fn lp_text(inp: &DecisionInputs<'_>) -> String {
        let terms = LpTerms::from_inputs(inp);
        terms
            .problem([1.0, 0.0, 0.0], false, true, None)
            .to_lp_format()
    }

    /// Solve lexicographically; returns `(t*, z*)`, or `None` when even
    /// the relaxed program is infeasible (the disk is doomed within the
    /// horizon at every allowed setting).
    fn solve(inp: &DecisionInputs<'_>) -> Option<(f64, f64)> {
        let terms = LpTerms::from_inputs(inp);
        let min_t = [1.0, 0.0, 0.0];
        let max_z = [0.0, 1.0, 0.0];

        // Phase 1 with Eq. 5; drop Eq. 5 when the link outruns production.
        let mut with_eq5 = true;
        let t_opt = match terms.problem(min_t, false, true, None).solve().ok()? {
            Solution::Optimal { x, .. } => x[0],
            _ => {
                with_eq5 = false;
                match terms.problem(min_t, false, false, None).solve().ok()? {
                    Solution::Optimal { x, .. } => x[0],
                    _ => return None,
                }
            }
        };

        // Phase 2: pin t at the optimum, maximize temporal resolution.
        match terms
            .problem(max_z, true, with_eq5, Some(t_opt))
            .solve()
            .ok()?
        {
            Solution::Optimal { x, .. } => Some((t_opt, x[1])),
            // Unreachable in exact arithmetic (phase 1's optimum is
            // feasible here); absorb numerical corner cases safely.
            _ => Some((t_opt, terms.z_lb)),
        }
    }
}

impl DecisionAlgorithm for Optimization {
    fn name(&self) -> &'static str {
        "optimization"
    }

    fn decide(&mut self, inp: &DecisionInputs<'_>) -> (usize, f64) {
        match Self::solve(inp) {
            Some((t_opt, z)) => {
                // Classify the binding force: if the optimal step time sits
                // above the machine's floor, the disk horizon pushed it
                // there; otherwise, if the chosen frequency is below its
                // ceiling, either the disk term or Eq. 5 capped z.
                let terms = LpTerms::from_inputs(inp);
                self.last_binding = Some(if t_opt > terms.t_lb + 1e-9 {
                    BindingConstraint::DiskBound
                } else if z + 1e-9 < terms.z_ub {
                    if terms.k_disk > 0.0 && z >= t_opt / terms.k_disk - 1e-9 {
                        BindingConstraint::DiskBound
                    } else {
                        BindingConstraint::VisualizationBound
                    }
                } else {
                    BindingConstraint::MachineBound
                });
                let ts_min = inp.dt_sim_secs / 60.0;
                let oi = (ts_min / z.max(1e-12)).clamp(inp.min_oi_min, inp.max_oi_min);
                // Profiled time closest to t* from above (see module docs).
                let procs = inp
                    .proc_table
                    .entries()
                    .iter()
                    .filter(|&&(_, t)| t >= t_opt - 1e-9)
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
                    .map(|&(p, _)| p)
                    .unwrap_or_else(|| inp.proc_table.fastest().0);
                (procs, oi)
            }
            None => {
                // Infeasible: even the slowest machine at minimum output
                // frequency overflows within the horizon. Take the safest
                // corner (slowest configuration, sparsest output) and let
                // the CRITICAL machinery absorb the rest.
                self.last_binding = Some(BindingConstraint::InfeasibleSafeCorner);
                (inp.proc_table.slowest().0, inp.max_oi_min)
            }
        }
    }

    fn last_binding(&self) -> Option<BindingConstraint> {
        self.last_binding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ApplicationConfig;
    use crate::decision::testutil::{inputs, table};

    fn current() -> ApplicationConfig {
        ApplicationConfig::initial(48, 3.0, 24.0)
    }

    #[test]
    fn fast_network_full_disk_headroom_runs_flat_out() {
        let t = table();
        let cur = current();
        let mut inp = inputs(&t, &cur, 90.0);
        // 100 MB/s ≫ production rate: Eq. 5 is dropped, disk slack is
        // huge → maximum processors, maximum output frequency.
        inp.bandwidth_bps = 1e8;
        let (procs, oi) = Optimization::new().decide(&inp);
        assert_eq!(procs, 48, "min t ⇒ maximum processors");
        assert!(
            (oi - 3.0).abs() < 1e-6,
            "max temporal resolution, oi = {oi}"
        );
    }

    #[test]
    fn slow_network_pushes_oi_to_maximum_and_obeys_disk_bound() {
        let t = table();
        let cur = current();
        let mut inp = inputs(&t, &cur, 60.0);
        inp.bandwidth_bps = 7.5e3; // the cross-continent 60 Kbps link
        inp.horizon_secs = 20.0 * 3600.0;
        // Budget = half the headroom above the reserve ≈ 24 GB over the
        // 20 h horizon → k ≈ 293 s → t ≥ 293·z_lb ≈ 28 s: the simulation
        // must slow to the closest profiled time above that (40 s on one
        // processor), and z is pinned at its floor → OI = 25.
        let (procs, oi) = Optimization::new().decide(&inp);
        assert!(
            (oi - 25.0).abs() < 1e-6,
            "starving link → sparsest output, oi = {oi}"
        );
        assert_eq!(procs, 1);
        assert!(t.time_for(procs).unwrap() >= 28.0);
    }

    #[test]
    fn scarce_disk_slow_link_takes_safe_corner() {
        let t = table();
        let cur = current();
        let mut inp = inputs(&t, &cur, 2.0);
        inp.free_disk_bytes = 2_000_000_000; // 2 GB left
        inp.bandwidth_bps = 7.5e3;
        inp.horizon_secs = 40.0 * 3600.0;
        // k ≈ 4674 s; even z_lb needs t ≈ 449 s > maxtime → infeasible.
        let (procs, oi) = Optimization::new().decide(&inp);
        assert!((oi - 25.0).abs() < 1e-6);
        assert_eq!(procs, 1, "slowest configuration");
    }

    #[test]
    fn binding_disk_constraint_rounds_time_up_not_down() {
        let t = table();
        let cur = current();
        let mut inp = inputs(&t, &cur, 30.0);
        inp.free_disk_bytes = 30_000_000_000;
        inp.bandwidth_bps = 1e5; // 100 KB/s
        inp.horizon_secs = 30.0 * 3600.0;
        // k ≈ 264 s → t* ≈ 25.3 s, strictly between the 12 s and 40 s
        // table entries: the mapping must choose 40 s (1 proc), because
        // 12 s would overflow the disk within the horizon.
        let (procs, oi) = Optimization::new().decide(&inp);
        assert!((oi - 25.0).abs() < 1e-6, "z driven to its floor, oi = {oi}");
        assert_eq!(procs, 1);
        assert!(t.time_for(procs).unwrap() >= 25.3);
    }

    #[test]
    fn moderate_link_lands_between_the_extremes() {
        let t = table();
        let cur = current();
        let mut inp = inputs(&t, &cur, 95.0);
        // O/b = 10 s: Eq. 5 feasible; with t = 2.5 it demands
        // z ≥ 2.5/(10 − 0.7) ≈ 0.269, while the disk bound caps z at
        // t/k ≈ 2.5/8.15 ≈ 0.307 → OI = ts/z ≈ 2.4/0.307 ≈ 7.8 min:
        // an interior point between the 3- and 25-minute bounds.
        inp.bandwidth_bps = 1e7;
        let (procs, oi) = Optimization::new().decide(&inp);
        assert_eq!(procs, 48);
        assert!((3.5..10.0).contains(&oi), "interior OI, oi = {oi}");
    }

    #[test]
    fn lp_text_renders_the_formulation() {
        let t = table();
        let cur = current();
        let inp = inputs(&t, &cur, 60.0);
        let text = Optimization::lp_text(&inp);
        assert!(text.starts_with("Minimize"));
        // Eq. 5, Eq. 6, y <= z: three constraint rows.
        assert_eq!(text.matches("\n c").count(), 3, "{text}");
        assert!(text.contains("x0"), "t appears");
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn oi_always_within_bounds_across_conditions() {
        let t = table();
        let cur = current();
        for bw in [7.5e3, 1e5, 5e6, 1e8] {
            for free in [5.0, 20.0, 50.0, 95.0] {
                let mut inp = inputs(&t, &cur, free);
                inp.bandwidth_bps = bw;
                let (procs, oi) = Optimization::new().decide(&inp);
                assert!((3.0..=25.0).contains(&oi), "bw={bw} free={free} oi={oi}");
                assert!(t.time_for(procs).is_some());
            }
        }
    }

    #[test]
    fn binding_diagnostics_classify_the_regimes() {
        let t = table();
        let cur = current();
        let mut algo = Optimization::new();
        assert_eq!(algo.last_binding(), None, "no decision yet");

        // Plentiful everything: machine-bound at full frequency.
        let mut inp = inputs(&t, &cur, 90.0);
        inp.bandwidth_bps = 1e8;
        algo.decide(&inp);
        assert_eq!(algo.last_binding(), Some(BindingConstraint::MachineBound));

        // Disk horizon forces a slower step (budget ≈ 24 GB over 20 h →
        // t* ≈ 22 s, inside the table's range): disk-bound.
        let mut inp = inputs(&t, &cur, 60.0);
        inp.bandwidth_bps = 1e5;
        inp.horizon_secs = 20.0 * 3600.0;
        algo.decide(&inp);
        assert_eq!(algo.last_binding(), Some(BindingConstraint::DiskBound));

        // Impossible disk: the safe corner.
        let mut inp = inputs(&t, &cur, 2.0);
        inp.free_disk_bytes = 2_000_000_000;
        inp.bandwidth_bps = 7.5e3;
        inp.horizon_secs = 40.0 * 3600.0;
        algo.decide(&inp);
        assert_eq!(
            algo.last_binding(),
            Some(BindingConstraint::InfeasibleSafeCorner)
        );
    }

    #[test]
    fn chosen_time_never_violates_the_disk_bound_when_feasible() {
        // Property-style sweep: whenever the LP is feasible, the profiled
        // time of the chosen processor count satisfies t ≥ k·z(OI).
        let t = table();
        let cur = current();
        for bw in [7.5e3, 5e4, 1e6, 7e6] {
            for free in [15.0, 40.0, 75.0] {
                for horizon_h in [5.0, 20.0, 60.0] {
                    let mut inp = inputs(&t, &cur, free);
                    inp.bandwidth_bps = bw;
                    inp.horizon_secs = horizon_h * 3600.0;
                    let (procs, oi) = Optimization::new().decide(&inp);
                    let terms_k = inp.frame_bytes as f64
                        / (inp.free_disk_bytes as f64 / inp.horizon_secs + bw)
                        - inp.io_secs_per_frame;
                    let z = (inp.dt_sim_secs / 60.0) / oi;
                    let chosen_t = t.time_for(procs).unwrap();
                    // Feasible iff the bound fits under maxtime at z_lb.
                    let feasible =
                        terms_k * (inp.dt_sim_secs / 60.0) / inp.max_oi_min <= t.max_time() + 1e-9;
                    if feasible {
                        assert!(
                            chosen_t >= terms_k * z - 1e-6,
                            "bw={bw} free={free} n={horizon_h}: t={chosen_t} < k·z={}",
                            terms_k * z
                        );
                    }
                }
            }
        }
    }
}
