//! Non-adaptive baseline: the configuration a user without the framework
//! would submit — maximum processors, output every few simulated minutes,
//! never reconsidered.
//!
//! The paper invokes this implicitly: "a non-adaptive solution would
//! result in stalling of the simulation much earlier than in the greedy
//! algorithm". This baseline makes that claim testable: the only
//! protection left is the manager's CRITICAL stall (without which the
//! simulation would simply lose frames to a full disk).

use super::{DecisionAlgorithm, DecisionInputs};

/// Fixed configuration: `(max procs, min output interval)`, forever.
#[derive(Debug, Clone, Default)]
pub struct StaticBaseline {
    _private: (),
}

impl StaticBaseline {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DecisionAlgorithm for StaticBaseline {
    fn name(&self) -> &'static str {
        "static-baseline"
    }

    fn decide(&mut self, inp: &DecisionInputs<'_>) -> (usize, f64) {
        (inp.proc_table.fastest().0, inp.min_oi_min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ApplicationConfig;
    use crate::decision::testutil::{inputs, table};

    #[test]
    fn ignores_every_observation() {
        let t = table();
        let cur = ApplicationConfig::initial(48, 3.0, 24.0);
        let mut algo = StaticBaseline::new();
        for free in [100.0, 50.0, 11.0, 1.0] {
            for bw in [7.5e3, 1e8] {
                let mut inp = inputs(&t, &cur, free);
                inp.bandwidth_bps = bw;
                assert_eq!(algo.decide(&inp), (48, 3.0), "free={free} bw={bw}");
            }
        }
    }
}
