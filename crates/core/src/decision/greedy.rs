//! The Greedy-Threshold algorithm — the paper's Algorithm 1, verbatim.
//!
//! ```text
//! Input: oldOI, minOI, maxOI, oldtime, mintime, maxtime
//! D ← remaining free disk space
//! if D ≤ 10%            : set CRITICAL flag            (manager's job here)
//! else if D ≤ 50%:
//!     if D ≥ 25%        : newOI ← oldOI + (50−D)/25 · (maxOI − oldOI)
//!     else if oldOI = maxOI :
//!                         newtime ← oldtime + (25−D)/15 · (maxtime − oldtime)
//! else if D ≥ 60%:
//!     if oldtime > mintime : newtime ← oldtime − (D−60)/40 · (oldtime − mintime)
//!     else if oldOI > minOI: newOI ← oldOI − (D−60)/40 · (oldOI − minOI)
//! ```
//!
//! The new execution time maps to a processor count through the
//! benchmark-profiling table, exactly as the paper does.

use super::{DecisionAlgorithm, DecisionInputs};

/// Reactive threshold heuristic. Thresholds are the paper's:
/// `lowdiskspace-thresholdset = {50, 25}`,
/// `highdiskspace-thresholdset = {60}`.
#[derive(Debug, Clone, Default)]
pub struct GreedyThreshold {
    _private: (),
}

impl GreedyThreshold {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl DecisionAlgorithm for GreedyThreshold {
    fn name(&self) -> &'static str {
        "greedy-threshold"
    }

    fn decide(&mut self, inp: &DecisionInputs<'_>) -> (usize, f64) {
        let d = inp.free_disk_percent;
        let old_oi = inp.current.output_interval_min;
        let (min_oi, max_oi) = (inp.min_oi_min, inp.max_oi_min);
        // Old execution time: the profiled time at the current processor
        // count (falling back to the fastest entry if the count is no
        // longer in the table after a resolution change).
        let old_time = inp
            .proc_table
            .time_for(inp.current.num_procs)
            .unwrap_or_else(|| inp.proc_table.min_time());
        let min_time = inp.proc_table.min_time();
        let max_time = inp.proc_table.max_time();

        let mut new_oi = old_oi;
        let mut new_time = old_time;

        if d <= 10.0 {
            // CRITICAL: the manager stalls the simulation; parameters
            // stay put so the resume continues from the same settings.
        } else if d <= 50.0 {
            if d >= 25.0 {
                new_oi = old_oi + (50.0 - d) / 25.0 * (max_oi - old_oi);
            } else if (old_oi - max_oi).abs() < 1e-9 {
                new_time = old_time + (25.0 - d) / 15.0 * (max_time - old_time);
            } else {
                // Below 25% with OI not yet maxed: push OI to its maximum
                // first (the (50−D)/25 factor exceeds 1 here, clamped).
                new_oi = max_oi;
            }
        } else if d >= 60.0 {
            if old_time > min_time + 1e-9 {
                new_time = old_time - (d - 60.0) / 40.0 * (old_time - min_time);
            } else if old_oi > min_oi + 1e-9 {
                new_oi = old_oi - (d - 60.0) / 40.0 * (old_oi - min_oi);
            }
        }
        // 50 < D < 60: dead band, no change.

        let new_oi = new_oi.clamp(min_oi, max_oi);
        let (procs, _) = inp.proc_table.procs_closest_to_time(new_time);
        (procs, new_oi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ApplicationConfig;
    use crate::decision::testutil::{inputs, table};

    fn current(procs: usize, oi: f64) -> ApplicationConfig {
        ApplicationConfig {
            num_procs: procs,
            output_interval_min: oi,
            resolution_km: 24.0,
            nest_active: false,
            critical: false,
        }
    }

    #[test]
    fn plenty_of_disk_keeps_max_speed_min_oi() {
        let t = table();
        let cur = current(48, 3.0);
        let inp = inputs(&t, &cur, 95.0);
        let (procs, oi) = GreedyThreshold::new().decide(&inp);
        assert_eq!(procs, 48, "already fastest, stays fastest");
        // oldtime == mintime, so the OI branch fires and walks OI down
        // toward minOI (already there).
        assert_eq!(oi, 3.0);
    }

    #[test]
    fn moderate_pressure_increases_oi_proportionally() {
        let t = table();
        let cur = current(48, 5.0);
        // D = 40: newOI = 5 + (10/25)·(25−5) = 13.
        let inp = inputs(&t, &cur, 40.0);
        let (procs, oi) = GreedyThreshold::new().decide(&inp);
        assert_eq!(procs, 48, "processors untouched in the OI branch");
        assert!((oi - 13.0).abs() < 1e-9, "oi = {oi}");
    }

    #[test]
    fn at_threshold_50_oi_unchanged() {
        let t = table();
        let cur = current(48, 5.0);
        let inp = inputs(&t, &cur, 50.0);
        let (_, oi) = GreedyThreshold::new().decide(&inp);
        assert!((oi - 5.0).abs() < 1e-9, "(50−50)/25 = 0 → no change");
    }

    #[test]
    fn severe_pressure_with_maxed_oi_slows_simulation() {
        let t = table();
        let cur = current(48, 25.0);
        // D = 20, oldOI = maxOI: newtime = 2.5 + (5/15)·(40−2.5) = 15.
        let inp = inputs(&t, &cur, 20.0);
        let (procs, oi) = GreedyThreshold::new().decide(&inp);
        assert_eq!(oi, 25.0);
        // Closest table time to 15.0 s is 12.0 s → 4 procs.
        assert_eq!(procs, 4);
    }

    #[test]
    fn severe_pressure_without_maxed_oi_maxes_oi_first() {
        let t = table();
        let cur = current(48, 10.0);
        let inp = inputs(&t, &cur, 20.0);
        let (procs, oi) = GreedyThreshold::new().decide(&inp);
        assert_eq!(oi, 25.0, "OI forced to max before slowing the solver");
        assert_eq!(procs, 48);
    }

    #[test]
    fn recovery_speeds_up_first() {
        let t = table();
        let cur = current(4, 25.0); // slowed down earlier: 12 s/step
                                    // D = 80: newtime = 12 − (20/40)·(12−2.5) = 7.25 → closest 6 s → 12 procs.
        let inp = inputs(&t, &cur, 80.0);
        let (procs, oi) = GreedyThreshold::new().decide(&inp);
        assert_eq!(procs, 12);
        assert_eq!(
            oi, 25.0,
            "OI untouched until the solver is back at full speed"
        );
    }

    #[test]
    fn recovery_then_decreases_oi() {
        let t = table();
        let cur = current(48, 25.0); // already fastest
                                     // D = 100: newOI = 25 − (40/40)·(25−3) = 3.
        let inp = inputs(&t, &cur, 100.0);
        let (procs, oi) = GreedyThreshold::new().decide(&inp);
        assert_eq!(procs, 48);
        assert!((oi - 3.0).abs() < 1e-9);
    }

    #[test]
    fn dead_band_between_50_and_60_changes_nothing() {
        let t = table();
        let cur = current(24, 10.0);
        let inp = inputs(&t, &cur, 55.0);
        let (procs, oi) = GreedyThreshold::new().decide(&inp);
        assert_eq!(procs, 24);
        assert!((oi - 10.0).abs() < 1e-9);
    }

    #[test]
    fn critical_zone_freezes_parameters() {
        let t = table();
        let cur = current(24, 20.0);
        let inp = inputs(&t, &cur, 5.0);
        let (procs, oi) = GreedyThreshold::new().decide(&inp);
        assert_eq!(procs, 24);
        assert!((oi - 20.0).abs() < 1e-9);
    }

    #[test]
    fn oi_always_within_bounds() {
        let t = table();
        for d in [0.0, 15.0, 30.0, 45.0, 55.0, 70.0, 100.0] {
            for oi0 in [3.0, 10.0, 25.0] {
                let cur = current(12, oi0);
                let inp = inputs(&t, &cur, d);
                let (procs, oi) = GreedyThreshold::new().decide(&inp);
                assert!((3.0..=25.0).contains(&oi), "D={d}, oi0={oi0} → oi={oi}");
                assert!(t.time_for(procs).is_some(), "procs from the table");
            }
        }
    }
}
