//! Deterministic chaos-soak harness: seeded fault storms, an invariant
//! checker, and a shrinker.
//!
//! SIM-SITU's thesis (PAPERS.md) is that a modeled failure response must
//! be validated against *systematic* stress, not single-fault anecdotes.
//! This module generates long, composed fault storms from a seed —
//! flapping links, crashes landing mid-recovery, disk pressure during
//! catch-up, correlated outage+crash, WAN collapses — runs them through
//! the DES pipeline with the degradation ladder engaged, and checks a
//! battery of invariants over the outcome:
//!
//! - **Conservation / exactly-once** (`conservation`, `exactly-once`):
//!   every emitted frame is written or dropped, every written frame is
//!   shipped or still held, and the visualization track holds exactly one
//!   fix per freshly delivered frame, in simulated-time order — replays
//!   and recoveries never double-apply.
//! - **Determinism** (`determinism`): the same storm run twice produces
//!   byte-identical counters, series, and track — the property that makes
//!   every failure replayable from its seed.
//! - **Bounded staleness per rung** (`staleness`): outside fault windows,
//!   the visualization lags the simulation by no more than the rung's
//!   budget — the ladder trades fidelity for timeliness, not for
//!   unbounded lag.
//! - **Recovery budget** (`recovery-budget`): every storm completes, and
//!   within a wall budget derived from the fault-free baseline plus the
//!   storm's scheduled disruption — a recovery livelock (or a ladder
//!   deadlocked at [`QosRung::Pause`]) blows this bound.
//! - **Ladder consistency** (`ladder`): the rung series moves at most one
//!   rung per epoch, every demotion is justified by recorded pressure,
//!   and the counters (`deepest_rung`, demotions − promotions) agree with
//!   the series. [`InvariantBudgets::max_rung`] can cap the ladder — the
//!   deliberately-breakable invariant the soak tests use to prove the
//!   harness catches and shrinks failures.
//!
//! When a storm fails, [`shrink`] greedily removes scheduled events while
//! the same violation kind reproduces, yielding a minimal replayable
//! schedule; [`StormSpec::replay_line`] prints it in one line for a bug
//! report, and [`soak`] writes it as a CI artifact.
//!
//! The soak also drives the fan-out broker ([`crate::broker`]) through
//! seeded *load* storms — thundering herds, correlated mass disconnects,
//! link sags, flap squads — with its own invariant battery: bounded ring
//! memory (`broker-memory`), zero live-frame starvation during catch-up
//! (`live-starvation`), admission fairness (`admission-fairness`),
//! cursor/frame conservation (`broker-conservation`), bounded p99
//! staleness (`broker-staleness`), plus the shared determinism and
//! recovery checks. Failing load storms shrink the same way
//! ([`shrink_broker`]).

use crate::broker::{run_broker, BrokerConfig, BrokerOutcome, LoadEvent, LoadScenario};
use crate::decision::AlgorithmKind;
use crate::fault::{Fault, FaultPlan, SplitMix64};
use crate::orchestrator::{Orchestrator, RunOutcome};
use crate::qos::{QosConfig, QosRung};
use cyclone::{Mission, Site};
use std::fmt;
use std::path::PathBuf;

// ---------------------------------------------------------------------
// Storm specification and generation
// ---------------------------------------------------------------------

/// One fully deterministic chaos mission: a mission length, a scaled-down
/// disk, and a scripted fault storm. Everything a failure needs to be
/// replayed exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct StormSpec {
    /// Seed the storm was generated from (kept for the replay line even
    /// after shrinking edits the schedule).
    pub seed: u64,
    /// Simulated mission length, hours.
    pub mission_hours: f64,
    /// Scripted fault events, `(wall_hours, fault)`.
    pub events: Vec<(f64, Fault)>,
    /// Simulation-site disk capacity, bytes (scaled-down live-emission
    /// disk, sized in real-frame multiples).
    pub disk_capacity: u64,
    /// Ideal link bandwidth, bits per second.
    pub bandwidth_bps: f64,
    /// Run with the degradation ladder on.
    pub qos: bool,
}

impl StormSpec {
    /// Generate the storm for a seed: 1–3 composed fault motifs over a
    /// 18–48-simulated-hour mission. Deterministic — the same seed always
    /// yields the same storm.
    pub fn generate(seed: u64) -> StormSpec {
        let mut rng = SplitMix64::new(seed);
        let mission_hours = 18.0 + 30.0 * rng.unit_f64();
        let disk_capacity = [60_000u64, 100_000, 200_000][(rng.next_u64() % 3) as usize];
        let motifs = 1 + (rng.next_u64() % 3) as usize;
        let mut events = Vec::new();
        for _ in 0..motifs {
            push_motif(&mut rng, disk_capacity, &mut events);
        }
        StormSpec {
            seed,
            mission_hours,
            events,
            disk_capacity,
            bandwidth_bps: 30_000.0,
            qos: true,
        }
    }

    /// The storm with its fault schedule removed — the fault-free
    /// baseline the recovery budget is measured against.
    pub fn baseline(&self) -> StormSpec {
        StormSpec {
            events: Vec::new(),
            ..self.clone()
        }
    }

    /// One-line replayable description, printed on failure and written
    /// as the CI artifact.
    pub fn replay_line(&self) -> String {
        let events: Vec<String> = self
            .events
            .iter()
            .map(|(at, f)| format!("({at:.4}, {f:?})"))
            .collect();
        format!(
            "CHAOS-REPLAY seed={} mission_h={:.3} disk={} bw={} qos={} events=[{}]",
            self.seed,
            self.mission_hours,
            self.disk_capacity,
            self.bandwidth_bps,
            self.qos,
            events.join(", ")
        )
    }
}

/// Append one composed fault motif. Each motif is *survivable by
/// construction*: collapsed links restore, flaps end on a healthy
/// half-period, outages expire — so completion is a checkable invariant
/// rather than a coin flip.
fn push_motif(rng: &mut SplitMix64, disk_capacity: u64, events: &mut Vec<(f64, Fault)>) {
    match rng.next_u64() % 6 {
        0 => {
            // WAN collapse: the link drops to a fraction of a percent,
            // then restores.
            let at = 0.05 + 0.5 * rng.unit_f64();
            let dur = 0.1 + 0.3 * rng.unit_f64();
            events.push((
                at,
                Fault::LinkDegradation {
                    factor: 0.001 + 0.009 * rng.unit_f64(),
                },
            ));
            events.push((at + dur, Fault::LinkDegradation { factor: 1.0 }));
        }
        1 => {
            // Flapping link: an even flip count ends the flap healthy.
            let at = 0.05 + 0.4 * rng.unit_f64();
            events.push((
                at,
                Fault::BandwidthFlap {
                    factor: 0.02 + 0.28 * rng.unit_f64(),
                    half_period_hours: 0.02 + 0.06 * rng.unit_f64(),
                    flips: 4 + 2 * (rng.next_u64() % 4) as u32,
                },
            ));
        }
        2 => {
            // Receiver outage, then disk pressure landing exactly as the
            // catch-up drain starts.
            let at = 0.05 + 0.4 * rng.unit_f64();
            let dur = 0.05 + 0.15 * rng.unit_f64();
            events.push((
                at,
                Fault::ReceiverOutage {
                    duration_hours: dur,
                },
            ));
            events.push((
                at + dur,
                Fault::DiskPressure {
                    bytes: disk_capacity / 2,
                    duration_hours: 0.1 + 0.2 * rng.unit_f64(),
                },
            ));
        }
        3 => {
            // Correlated outage + simulation crash at the same instant.
            let at = 0.05 + 0.5 * rng.unit_f64();
            events.push((
                at,
                Fault::ReceiverOutage {
                    duration_hours: 0.05 + 0.2 * rng.unit_f64(),
                },
            ));
            events.push((at, Fault::SimCrash));
        }
        4 => {
            // Whole-pipeline kill, optionally with staged storage damage.
            let at = 0.05 + 0.5 * rng.unit_f64();
            match rng.next_u64() % 3 {
                0 => events.push((at - 1e-3, Fault::TornWrite)),
                1 => events.push((at - 1e-3, Fault::CorruptCheckpoint)),
                _ => {}
            }
            events.push((at, Fault::ProcessKill { at_hours: at }));
        }
        _ => {
            // Crash landing during the kill's recovery window.
            let at = 0.05 + 0.5 * rng.unit_f64();
            events.push((at, Fault::ProcessKill { at_hours: at }));
            events.push((at + 0.01, Fault::SimCrash));
        }
    }
}

/// Run one storm through the DES (live-emission transport: real encoded
/// frames, real track) and return the outcome.
pub fn run_storm(spec: &StormSpec) -> RunOutcome {
    let mut mission = Mission::aila()
        .with_duration_hours(spec.mission_hours)
        .with_decimation(16);
    // Chaos missions decide every 6 modeled minutes so the controller
    // gets enough epochs to walk the ladder within a sub-wall-hour storm.
    mission.decision_interval_hours = 0.1;
    let mut orch = Orchestrator::new(
        Site::inter_department(),
        mission,
        AlgorithmKind::Optimization,
    )
    .with_fault_plan(FaultPlan::from_events(spec.events.clone()))
    .with_live_emission(spec.disk_capacity, spec.bandwidth_bps);
    if spec.qos {
        orch = orch.with_qos(QosConfig::default());
    }
    orch.run()
}

// ---------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------

/// Budgets the invariant checker enforces. The defaults are tuned so the
/// seeded corpus runs green while each bound still has teeth (shrinking
/// any of them substantially makes real storms fail).
#[derive(Debug, Clone, PartialEq)]
pub struct InvariantBudgets {
    /// Max visualization staleness (simulated minutes behind the solver)
    /// per rung 0–3, checked at decision epochs outside fault windows.
    /// [`QosRung::Pause`] is exempt: parked shipping is *meant* to lag.
    pub staleness_min: [f64; 4],
    /// Wall hours after a fault window inside which staleness is excused
    /// (catch-up grace).
    pub staleness_grace_hours: f64,
    /// Multiplier on the fault-free baseline wall time.
    pub recovery_factor: f64,
    /// Multiplier on the storm's summed disruption hours.
    pub disruption_factor: f64,
    /// Flat wall allowance per kill or crash, hours (covers the modeled
    /// requeue + checkpoint-fallback penalties).
    pub per_recovery_hours: f64,
    /// Flat margin, wall hours.
    pub margin_hours: f64,
    /// Cap on the deepest rung the ladder may reach (`None` = the full
    /// ladder is allowed). Setting `Some(0)` under a collapse storm is
    /// the deliberately-broken invariant the harness tests use.
    pub max_rung: Option<u8>,
    /// Max worst-tick p99 frame staleness a broker load storm may show,
    /// seconds. The ring retains 60 × 30 s = 1800 s of frames, and a
    /// resume past the tail sheds down to the ring, so under the default
    /// sizing staleness is structurally ≤ 1800 s; the default budget
    /// leaves headroom over that. Tightening it toward zero is the
    /// deliberately-broken invariant the broker shrink test uses.
    pub broker_staleness_secs: f64,
}

impl Default for InvariantBudgets {
    fn default() -> Self {
        InvariantBudgets {
            staleness_min: [400.0, 500.0, 600.0, 900.0],
            staleness_grace_hours: 1.0,
            recovery_factor: 1.5,
            disruption_factor: 3.0,
            per_recovery_hours: 0.75,
            margin_hours: 1.0,
            max_rung: None,
            broker_staleness_secs: 2400.0,
        }
    }
}

/// One invariant violation, carrying enough context to read the failure
/// without re-running the storm.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A frame-conservation identity broke.
    Conservation(String),
    /// The track and the delivery counters disagree (lost or
    /// double-applied frames).
    ExactlyOnce(String),
    /// Visualization staleness exceeded the rung's budget outside any
    /// fault window.
    Staleness {
        /// Wall hours of the offending decision epoch.
        wall_hours: f64,
        /// Rung in force at that epoch.
        rung: u8,
        /// Observed staleness, simulated minutes.
        staleness_min: f64,
        /// The budget it exceeded.
        budget_min: f64,
    },
    /// The run blew its wall budget (or never completed).
    RecoveryBudget {
        /// Wall hours the run consumed.
        wall_hours: f64,
        /// The budget it was allowed.
        budget_hours: f64,
        /// Whether the mission completed at all.
        completed: bool,
    },
    /// The rung/pressure series is inconsistent with the controller's
    /// contract.
    Ladder(String),
    /// Two runs of the same storm diverged.
    Determinism(String),
    /// The ladder went deeper than [`InvariantBudgets::max_rung`].
    RungCap {
        /// Deepest rung reached.
        deepest: u8,
        /// The configured cap.
        cap: u8,
    },
    /// The broker ring held more frames than its retention — per-client
    /// state leaked into shared frame memory.
    BrokerMemory {
        /// Peak frames observed in the ring.
        peak_frames: u64,
        /// The configured retention bound.
        retention: u64,
    },
    /// Catch-up replay starved live frames on ticks where the live pot
    /// could afford them.
    LiveStarvation {
        /// Number of starved ticks.
        ticks: u64,
    },
    /// Some client waited longer for admission than the whole fleet
    /// should need to drain through the gate — lockstep retries.
    AdmissionFairness {
        /// Longest observed admission wait, seconds.
        max_wait_secs: f64,
        /// The fairness bound it exceeded.
        bound_secs: f64,
    },
    /// Broker cursor bookkeeping broke: delivered + shed ≠ cursor
    /// advances.
    BrokerConservation(String),
    /// Worst-tick p99 frame staleness exceeded
    /// [`InvariantBudgets::broker_staleness_secs`].
    BrokerStaleness {
        /// Observed worst p99 staleness, seconds.
        p99_secs: f64,
        /// The budget it exceeded.
        budget_secs: f64,
    },
}

impl Violation {
    /// Stable kind tag, used by the shrinker to demand the *same*
    /// failure keeps reproducing as it removes events.
    pub fn kind(&self) -> &'static str {
        match self {
            Violation::Conservation(_) => "conservation",
            Violation::ExactlyOnce(_) => "exactly-once",
            Violation::Staleness { .. } => "staleness",
            Violation::RecoveryBudget { .. } => "recovery-budget",
            Violation::Ladder(_) => "ladder",
            Violation::Determinism(_) => "determinism",
            Violation::RungCap { .. } => "rung-cap",
            Violation::BrokerMemory { .. } => "broker-memory",
            Violation::LiveStarvation { .. } => "live-starvation",
            Violation::AdmissionFairness { .. } => "admission-fairness",
            Violation::BrokerConservation(_) => "broker-conservation",
            Violation::BrokerStaleness { .. } => "broker-staleness",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Conservation(msg) => write!(f, "[conservation] {msg}"),
            Violation::ExactlyOnce(msg) => write!(f, "[exactly-once] {msg}"),
            Violation::Staleness {
                wall_hours,
                rung,
                staleness_min,
                budget_min,
            } => write!(
                f,
                "[staleness] {staleness_min:.1} sim-min behind at wall {wall_hours:.2} h \
                 on rung {rung} (budget {budget_min:.0})"
            ),
            Violation::RecoveryBudget {
                wall_hours,
                budget_hours,
                completed,
            } => write!(
                f,
                "[recovery-budget] wall {wall_hours:.2} h vs budget {budget_hours:.2} h \
                 (completed: {completed})"
            ),
            Violation::Ladder(msg) => write!(f, "[ladder] {msg}"),
            Violation::Determinism(msg) => write!(f, "[determinism] {msg}"),
            Violation::RungCap { deepest, cap } => {
                write!(f, "[rung-cap] ladder reached rung {deepest}, cap {cap}")
            }
            Violation::BrokerMemory {
                peak_frames,
                retention,
            } => write!(
                f,
                "[broker-memory] ring held {peak_frames} frames, retention {retention}"
            ),
            Violation::LiveStarvation { ticks } => write!(
                f,
                "[live-starvation] catch-up starved live frames on {ticks} tick(s)"
            ),
            Violation::AdmissionFairness {
                max_wait_secs,
                bound_secs,
            } => write!(
                f,
                "[admission-fairness] worst admission wait {max_wait_secs:.1} s, \
                 bound {bound_secs:.1} s"
            ),
            Violation::BrokerConservation(msg) => write!(f, "[broker-conservation] {msg}"),
            Violation::BrokerStaleness {
                p99_secs,
                budget_secs,
            } => write!(
                f,
                "[broker-staleness] worst p99 staleness {p99_secs:.0} s, \
                 budget {budget_secs:.0} s"
            ),
        }
    }
}

/// Wall-hour windows during which the storm is actively disrupting the
/// pipeline (staleness is excused inside them, and the recovery budget
/// grows with their total length).
fn disruption_windows(spec: &StormSpec, run_end_hours: f64) -> Vec<(f64, f64)> {
    let mut windows = Vec::new();
    for &(at, fault) in &spec.events {
        match fault {
            Fault::ReceiverOutage { duration_hours }
            | Fault::DiskPressure { duration_hours, .. } => {
                windows.push((at, at + duration_hours));
            }
            Fault::LinkDegradation { factor } if factor < 0.5 => {
                // Degraded until the next restoring LinkDegradation.
                let restore = spec
                    .events
                    .iter()
                    .filter(|&&(t2, f2)| {
                        t2 > at && matches!(f2, Fault::LinkDegradation { factor } if factor >= 0.5)
                    })
                    .map(|&(t2, _)| t2)
                    .fold(f64::INFINITY, f64::min);
                windows.push((at, restore.min(run_end_hours)));
            }
            Fault::LinkDegradation { .. } => {}
            Fault::BandwidthFlap {
                half_period_hours,
                flips,
                ..
            } => {
                windows.push((at, at + half_period_hours * flips as f64));
            }
            Fault::SimCrash
            | Fault::ProcessKill { .. }
            | Fault::TornWrite
            | Fault::CorruptCheckpoint => {
                windows.push((at, at));
            }
        }
    }
    windows
}

/// Total scheduled disruption, hours (overlaps counted once).
fn disruption_hours(windows: &[(f64, f64)]) -> f64 {
    let mut sorted: Vec<(f64, f64)> = windows.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut covered = f64::NEG_INFINITY;
    for &(s, e) in &sorted {
        let s = s.max(covered);
        if e > s {
            total += e - s;
            covered = e;
        }
    }
    total
}

/// Check every invariant over a finished storm. `baseline_wall_hours` is
/// the fault-free run's wall time (see [`StormSpec::baseline`]).
pub fn check_invariants(
    spec: &StormSpec,
    out: &RunOutcome,
    baseline_wall_hours: f64,
    budgets: &InvariantBudgets,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let c = &out.counters;

    // I1a — frame conservation.
    if c.frames_emitted != c.frames_written + c.frames_dropped {
        violations.push(Violation::Conservation(format!(
            "emitted {} != written {} + dropped {}",
            c.frames_emitted, c.frames_written, c.frames_dropped
        )));
    }
    if c.frames_written != c.frames_shipped + c.frames_in_flight {
        violations.push(Violation::Conservation(format!(
            "written {} != shipped {} + in-flight {}",
            c.frames_written, c.frames_shipped, c.frames_in_flight
        )));
    }

    // I1b — exactly-once delivery: one track fix per freshly delivered
    // frame, applied in simulated-time order, nothing double-applied.
    let fixes = out.track.fixes();
    if c.frames_rendered > c.frames_shipped {
        violations.push(Violation::ExactlyOnce(format!(
            "rendered {} > shipped {}",
            c.frames_rendered, c.frames_shipped
        )));
    }
    let nfix = fixes.len() as u64;
    if nfix < c.frames_rendered || nfix > c.frames_shipped {
        violations.push(Violation::ExactlyOnce(format!(
            "{} track fixes vs rendered {} / shipped {}",
            nfix, c.frames_rendered, c.frames_shipped
        )));
    }
    if out.completed && (c.frames_in_flight != 0 || nfix != c.frames_rendered) {
        violations.push(Violation::ExactlyOnce(format!(
            "completed run left {} frames in flight, {} fixes vs {} rendered",
            c.frames_in_flight, nfix, c.frames_rendered
        )));
    }
    if let Some(w) = fixes
        .windows(2)
        .find(|w| w[1].sim_minutes <= w[0].sim_minutes)
    {
        violations.push(Violation::ExactlyOnce(format!(
            "track order broke: fix at {} sim-min followed by {}",
            w[0].sim_minutes, w[1].sim_minutes
        )));
    }

    // I3 — bounded staleness per rung, outside fault windows.
    let windows = disruption_windows(spec, out.wall_hours);
    let excused = |wall_h: f64| {
        wall_h < 0.2 // warm-up: the first frames are still being cut
            || windows
                .iter()
                .any(|&(s, e)| wall_h >= s && wall_h <= e + budgets.staleness_grace_hours)
    };
    if let (Some(rung_s), Some(sim_s), Some(viz_s)) = (
        out.series.get("qos_rung"),
        out.series.get("sim_progress"),
        out.series.get("viz_progress"),
    ) {
        for &(t, r) in &rung_s.points {
            let rung = r as usize;
            let wall_h = t / 3600.0;
            if rung >= 4 || excused(wall_h) {
                continue;
            }
            let sim = sim_s.value_at(t).unwrap_or(0.0);
            let viz = viz_s.value_at(t).unwrap_or(0.0);
            let staleness = sim - viz;
            if staleness > budgets.staleness_min[rung] {
                violations.push(Violation::Staleness {
                    wall_hours: wall_h,
                    rung: rung as u8,
                    staleness_min: staleness,
                    budget_min: budgets.staleness_min[rung],
                });
            }
        }
    }

    // I4 — recovery budget: the storm completes, within a wall budget
    // derived from the baseline plus the scheduled disruption.
    let recoveries = spec
        .events
        .iter()
        .filter(|(_, f)| matches!(f, Fault::SimCrash | Fault::ProcessKill { .. }))
        .count() as f64;
    let budget_hours = baseline_wall_hours * budgets.recovery_factor
        + disruption_hours(&windows) * budgets.disruption_factor
        + recoveries * budgets.per_recovery_hours
        + budgets.margin_hours;
    if !out.completed || out.wall_hours > budget_hours {
        violations.push(Violation::RecoveryBudget {
            wall_hours: out.wall_hours,
            budget_hours,
            completed: out.completed,
        });
    }

    // I5 — ladder consistency between the series and the counters.
    let qos_cfg = QosConfig::default();
    match (out.series.get("qos_rung"), out.series.get("qos_pressure")) {
        (Some(rung_s), Some(press_s)) if spec.qos => {
            let mut prev = QosRung::FullRes.as_byte() as i64;
            for (&(t, r), &(_, p)) in rung_s.points.iter().zip(&press_s.points) {
                let r = r as i64;
                if (r - prev).abs() > 1 {
                    violations.push(Violation::Ladder(format!(
                        "rung jumped {prev} -> {r} in one epoch at wall {:.2} h",
                        t / 3600.0
                    )));
                }
                if r == prev + 1 && p + 1e-9 < qos_cfg.demote_at[prev as usize] {
                    violations.push(Violation::Ladder(format!(
                        "demotion {prev} -> {r} at wall {:.2} h under pressure {p:.3} \
                         (threshold {:.2})",
                        t / 3600.0,
                        qos_cfg.demote_at[prev as usize]
                    )));
                }
                prev = r;
            }
            let series_deepest = rung_s.max_value().unwrap_or(0.0) as u8;
            if series_deepest != c.deepest_rung {
                violations.push(Violation::Ladder(format!(
                    "deepest_rung counter {} vs series max {}",
                    c.deepest_rung, series_deepest
                )));
            }
            let final_rung = rung_s.last_value().unwrap_or(0.0) as i64;
            if c.qos_demotions as i64 - c.qos_promotions as i64 != final_rung {
                violations.push(Violation::Ladder(format!(
                    "demotions {} - promotions {} != final rung {}",
                    c.qos_demotions, c.qos_promotions, final_rung
                )));
            }
        }
        _ if spec.qos => violations.push(Violation::Ladder(
            "qos enabled but rung/pressure series missing".into(),
        )),
        _ => {
            if c.deepest_rung != 0 || c.qos_demotions != 0 {
                violations.push(Violation::Ladder(format!(
                    "qos disabled but deepest_rung={} demotions={}",
                    c.deepest_rung, c.qos_demotions
                )));
            }
        }
    }

    // The deliberately-breakable cap.
    if let Some(cap) = budgets.max_rung {
        if c.deepest_rung > cap {
            violations.push(Violation::RungCap {
                deepest: c.deepest_rung,
                cap,
            });
        }
    }

    violations
}

/// Compare two runs of the same storm field-by-field; `Some(reason)` on
/// the first divergence.
pub fn compare_runs(a: &RunOutcome, b: &RunOutcome) -> Option<String> {
    if a.counters != b.counters {
        return Some(format!(
            "counters diverged:\n{:?}\nvs\n{:?}",
            a.counters, b.counters
        ));
    }
    if (a.wall_hours, a.sim_minutes) != (b.wall_hours, b.sim_minutes) {
        return Some("wall/sim totals diverged".into());
    }
    for name in [
        "sim_progress",
        "free_disk_pct",
        "viz_progress",
        "procs",
        "output_interval",
        "binding_constraint",
        "qos_rung",
        "qos_pressure",
    ] {
        let (sa, sb) = (a.series.get(name), b.series.get(name));
        match (sa, sb) {
            (Some(sa), Some(sb)) if sa.points != sb.points => {
                return Some(format!("series {name:?} diverged"));
            }
            (Some(_), None) | (None, Some(_)) => {
                return Some(format!("series {name:?} present in only one run"));
            }
            _ => {}
        }
    }
    if a.track.to_csv() != b.track.to_csv() {
        return Some("visualization track diverged".into());
    }
    None
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// A failing storm reduced to a minimal schedule that still reproduces
/// the violation.
#[derive(Debug, Clone)]
pub struct ShrunkStorm {
    /// The reduced spec (same seed and sizing, fewer events).
    pub spec: StormSpec,
    /// The violations the reduced spec still produces.
    pub violations: Vec<Violation>,
}

/// Greedy ddmin-lite: repeatedly drop event chunks (halves first, then
/// single events) while at least one violation of the original kinds
/// keeps reproducing. The result is 1-minimal: removing any single
/// remaining event makes the failure vanish.
pub fn shrink(spec: &StormSpec, budgets: &InvariantBudgets, kinds: &[&'static str]) -> ShrunkStorm {
    let baseline_wall = run_storm(&spec.baseline()).wall_hours;
    let still_fails = |events: &[(f64, Fault)]| -> Option<Vec<Violation>> {
        let candidate = StormSpec {
            events: events.to_vec(),
            ..spec.clone()
        };
        let out = run_storm(&candidate);
        let violations = check_invariants(&candidate, &out, baseline_wall, budgets);
        violations
            .iter()
            .any(|v| kinds.contains(&v.kind()))
            .then_some(violations)
    };

    let mut events = spec.events.clone();
    let mut violations = still_fails(&events).unwrap_or_default();
    // Chunked passes: drop halves, quarters, ... while the failure holds.
    let mut chunk = events.len().div_ceil(2);
    while chunk >= 1 && !events.is_empty() {
        let mut start = 0;
        while start < events.len() {
            let mut candidate = events.clone();
            candidate.drain(start..(start + chunk).min(candidate.len()));
            if let Some(v) = still_fails(&candidate) {
                events = candidate;
                violations = v;
                // Re-scan from the front at this granularity.
                start = 0;
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2).min(events.len().max(1));
    }
    ShrunkStorm {
        spec: StormSpec {
            events,
            ..spec.clone()
        },
        violations,
    }
}

// ---------------------------------------------------------------------
// Broker load storms
// ---------------------------------------------------------------------

/// One deterministic broker load storm: a fleet size and a scripted
/// schedule of herds, disconnects, sags, and flappers (seconds offsets).
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerStormSpec {
    /// Seed the storm was generated from.
    pub seed: u64,
    /// Base fleet size ramped in at the start.
    pub fleet: u64,
    /// Scripted load events, `(at_secs, event)`.
    pub events: Vec<(f64, LoadEvent)>,
}

impl BrokerStormSpec {
    /// Generate the load storm for a seed: a base arrival ramp plus 1–3
    /// composed load motifs. Deterministic, and survivable by
    /// construction — sags restore, outages end with time to drain,
    /// disconnect fractions are admissible — so a drained run is a
    /// checkable invariant.
    pub fn generate(seed: u64) -> BrokerStormSpec {
        let mut rng = SplitMix64::new(seed ^ 0xB20C_E550);
        let fleet = 200 + rng.next_u64() % 600;
        let mut events = vec![(
            0.0,
            LoadEvent::ArrivalRamp {
                clients: fleet,
                over_secs: 600.0,
            },
        )];
        let motifs = 1 + (rng.next_u64() % 3) as usize;
        for _ in 0..motifs {
            push_broker_motif(&mut rng, &mut events);
        }
        BrokerStormSpec {
            seed,
            fleet,
            events,
        }
    }

    /// The broker configuration this storm runs under (default sizing,
    /// two-hour production horizon).
    pub fn to_config(&self) -> BrokerConfig {
        let mut cfg = BrokerConfig::new(
            self.seed,
            LoadScenario {
                events: self.events.clone(),
            },
        );
        cfg.horizon_secs = 2.0 * 3600.0;
        cfg
    }

    /// One-line replayable description.
    pub fn replay_line(&self) -> String {
        let events: Vec<String> = self
            .events
            .iter()
            .map(|(at, ev)| format!("({at:.1}s, {ev:?})"))
            .collect();
        format!(
            "BROKER-REPLAY seed={} fleet={} events=[{}]",
            self.seed,
            self.fleet,
            events.join(", ")
        )
    }
}

/// Append one composed broker load motif (offsets in seconds).
fn push_broker_motif(rng: &mut SplitMix64, events: &mut Vec<(f64, LoadEvent)>) {
    match rng.next_u64() % 4 {
        0 => {
            // Thundering herd: a burst of new viewers all at once.
            let at = 600.0 * rng.unit_f64();
            events.push((
                at,
                LoadEvent::ArrivalRamp {
                    clients: 100 + rng.next_u64() % 300,
                    over_secs: 0.0,
                },
            ));
        }
        1 => {
            // Correlated mass disconnect; the outage always ends at
            // least 20 minutes before the two-hour horizon, leaving the
            // catch-up storm room to drain.
            let at = 900.0 + 2700.0 * rng.unit_f64();
            events.push((
                at,
                LoadEvent::MassDisconnect {
                    frac: 0.3 + 0.7 * rng.unit_f64(),
                    outage_secs: 300.0 + 2100.0 * rng.unit_f64(),
                },
            ));
        }
        2 => {
            // Link sag — degraded but never collapsed, and it restores.
            let at = 600.0 + 3600.0 * rng.unit_f64();
            events.push((
                at,
                LoadEvent::LinkSag {
                    factor: 0.05 + 0.45 * rng.unit_f64(),
                    for_secs: 300.0 + 900.0 * rng.unit_f64(),
                },
            ));
        }
        _ => {
            // Flap squad: clients that drop every period — expected to
            // trip the breaker, which is survival, not failure.
            let at = 300.0 + 1500.0 * rng.unit_f64();
            events.push((
                at,
                LoadEvent::FlapSquad {
                    clients: 5 + rng.next_u64() % 15,
                    period_secs: 60.0 + 120.0 * rng.unit_f64(),
                },
            ));
        }
    }
}

/// Check the broker invariant battery over one load-storm outcome.
pub fn check_broker_invariants(
    spec: &BrokerStormSpec,
    out: &BrokerOutcome,
    budgets: &InvariantBudgets,
) -> Vec<Violation> {
    let cfg = spec.to_config();
    let c = out.counters;
    let mut violations = Vec::new();
    if c.peak_ring_frames > cfg.retention_frames {
        violations.push(Violation::BrokerMemory {
            peak_frames: c.peak_ring_frames,
            retention: cfg.retention_frames,
        });
    }
    if c.starvation_ticks > 0 {
        violations.push(Violation::LiveStarvation {
            ticks: c.starvation_ticks,
        });
    }
    if c.frames_delivered + c.frames_shed != c.cursor_advance {
        violations.push(Violation::BrokerConservation(format!(
            "delivered {} + shed {} != cursor advances {}",
            c.frames_delivered, c.frames_shed, c.cursor_advance
        )));
    }
    // Fairness: the virtual FIFO drains the whole population through the
    // gate in clients/rate seconds; nobody may wait much longer than
    // one full drain (2× covers a reconnect storm re-queueing everyone
    // behind fresh arrivals, plus a flat margin for backoff jitter).
    let bound = 2.0 * c.clients_total as f64 / cfg.admission_rate_per_sec + 30.0;
    if out.max_admission_wait_secs > bound {
        violations.push(Violation::AdmissionFairness {
            max_wait_secs: out.max_admission_wait_secs,
            bound_secs: bound,
        });
    }
    if out.p99_staleness_secs > budgets.broker_staleness_secs {
        violations.push(Violation::BrokerStaleness {
            p99_secs: out.p99_staleness_secs,
            budget_secs: budgets.broker_staleness_secs,
        });
    }
    if !out.drained {
        violations.push(Violation::RecoveryBudget {
            wall_hours: out.wall_secs / 3600.0,
            budget_hours: (cfg.horizon_secs * 10.0 + 3600.0) / 3600.0,
            completed: false,
        });
    }
    violations
}

/// Compare two runs of the same broker storm; `Some(reason)` on the
/// first divergence.
pub fn compare_broker_runs(a: &BrokerOutcome, b: &BrokerOutcome) -> Option<String> {
    if a.counters != b.counters {
        return Some(format!(
            "counters diverged: {:?} vs {:?}",
            a.counters, b.counters
        ));
    }
    if a.p99_staleness_secs != b.p99_staleness_secs {
        return Some("p99 staleness diverged".into());
    }
    if a.live_bytes != b.live_bytes || a.catchup_bytes != b.catchup_bytes {
        return Some("served bytes diverged".into());
    }
    if a.recovery_secs != b.recovery_secs {
        return Some("recovery time diverged".into());
    }
    if a.wall_secs != b.wall_secs {
        return Some("wall time diverged".into());
    }
    None
}

/// A failing broker storm reduced to a minimal schedule (see
/// [`ShrunkStorm`]).
#[derive(Debug, Clone)]
pub struct ShrunkBrokerStorm {
    /// The reduced spec (same seed and fleet, fewer events).
    pub spec: BrokerStormSpec,
    /// The violations the reduced spec still produces.
    pub violations: Vec<Violation>,
}

/// Greedy ddmin-lite over a broker storm's load events — the same
/// halves-then-singles reduction as [`shrink`], demanding a violation of
/// the original kinds keeps reproducing.
pub fn shrink_broker(
    spec: &BrokerStormSpec,
    budgets: &InvariantBudgets,
    kinds: &[&'static str],
) -> ShrunkBrokerStorm {
    let still_fails = |events: &[(f64, LoadEvent)]| -> Option<Vec<Violation>> {
        let candidate = BrokerStormSpec {
            events: events.to_vec(),
            ..spec.clone()
        };
        let out = run_broker(candidate.to_config());
        let violations = check_broker_invariants(&candidate, &out, budgets);
        violations
            .iter()
            .any(|v| kinds.contains(&v.kind()))
            .then_some(violations)
    };

    let mut events = spec.events.clone();
    let mut violations = still_fails(&events).unwrap_or_default();
    let mut chunk = events.len().div_ceil(2);
    while chunk >= 1 && !events.is_empty() {
        let mut start = 0;
        while start < events.len() {
            let mut candidate = events.clone();
            candidate.drain(start..(start + chunk).min(candidate.len()));
            if let Some(v) = still_fails(&candidate) {
                events = candidate;
                violations = v;
                start = 0;
            } else {
                start += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2).min(events.len().max(1));
    }
    ShrunkBrokerStorm {
        spec: BrokerStormSpec {
            events,
            ..spec.clone()
        },
        violations,
    }
}

// ---------------------------------------------------------------------
// The soak loop
// ---------------------------------------------------------------------

/// Soak configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of seeded storms to run.
    pub storms: u64,
    /// Number of seeded broker load storms to run after the fault
    /// storms (0 = skip the serving tier).
    pub broker_storms: u64,
    /// First seed; storm `i` uses `seed0 + i`.
    pub seed0: u64,
    /// Invariant budgets.
    pub budgets: InvariantBudgets,
    /// Run every storm twice and require byte-identical outcomes.
    pub verify_determinism: bool,
    /// Shrink failing storms to a minimal schedule.
    pub shrink_failures: bool,
    /// Where to write replay artifacts for failing storms (`None` =
    /// don't write; CI uploads this directory on failure).
    pub artifact_dir: Option<PathBuf>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            storms: 50,
            broker_storms: 50,
            seed0: 0xC1A05,
            budgets: InvariantBudgets::default(),
            verify_determinism: true,
            shrink_failures: true,
            artifact_dir: None,
        }
    }
}

/// One failing storm, with its shrunk reproduction when shrinking was
/// enabled.
#[derive(Debug, Clone)]
pub struct SoakFailure {
    /// The original generated storm.
    pub spec: StormSpec,
    /// Everything the invariant checker flagged.
    pub violations: Vec<Violation>,
    /// The minimal reproduction.
    pub shrunk: Option<ShrunkStorm>,
}

impl SoakFailure {
    /// Human-readable failure report with both replay lines.
    pub fn report(&self) -> String {
        let mut s = format!("storm seed {} failed:\n", self.spec.seed);
        for v in &self.violations {
            s.push_str(&format!("  {v}\n"));
        }
        s.push_str(&format!("  {}\n", self.spec.replay_line()));
        if let Some(shrunk) = &self.shrunk {
            s.push_str(&format!(
                "shrunk to {} event(s):\n  {}\n",
                shrunk.spec.events.len(),
                shrunk.spec.replay_line()
            ));
        }
        s
    }
}

/// One failing broker load storm, with its shrunk reproduction when
/// shrinking was enabled.
#[derive(Debug, Clone)]
pub struct BrokerSoakFailure {
    /// The original generated load storm.
    pub spec: BrokerStormSpec,
    /// Everything the broker invariant checker flagged.
    pub violations: Vec<Violation>,
    /// The minimal reproduction.
    pub shrunk: Option<ShrunkBrokerStorm>,
}

impl BrokerSoakFailure {
    /// Human-readable failure report with both replay lines.
    pub fn report(&self) -> String {
        let mut s = format!("broker storm seed {} failed:\n", self.spec.seed);
        for v in &self.violations {
            s.push_str(&format!("  {v}\n"));
        }
        s.push_str(&format!("  {}\n", self.spec.replay_line()));
        if let Some(shrunk) = &self.shrunk {
            s.push_str(&format!(
                "shrunk to {} event(s):\n  {}\n",
                shrunk.spec.events.len(),
                shrunk.spec.replay_line()
            ));
        }
        s
    }
}

/// What a soak produced.
#[derive(Debug, Clone)]
pub struct SoakOutcome {
    /// Storms actually run.
    pub storms_run: u64,
    /// Total simulated hours across all storms.
    pub sim_hours: f64,
    /// Total modeled wall hours across all storms.
    pub wall_hours: f64,
    /// Histogram of each storm's deepest rung (index = rung byte).
    pub deepest_rung_histogram: [u64; 5],
    /// Failing storms (empty on a green soak).
    pub failures: Vec<SoakFailure>,
    /// Broker load storms actually run.
    pub broker_storms_run: u64,
    /// Failing broker load storms (empty on a green soak).
    pub broker_failures: Vec<BrokerSoakFailure>,
}

impl SoakOutcome {
    /// True when every storm — fault and load alike — satisfied every
    /// invariant.
    pub fn green(&self) -> bool {
        self.failures.is_empty() && self.broker_failures.is_empty()
    }

    /// All failure reports, fault storms first.
    pub fn failure_reports(&self) -> String {
        self.failures
            .iter()
            .map(SoakFailure::report)
            .chain(self.broker_failures.iter().map(BrokerSoakFailure::report))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Run `cfg.storms` seeded fault storms and check every invariant on
/// each. Failures are shrunk to minimal replayable schedules and written
/// to the artifact directory when one is configured.
pub fn soak(cfg: &ChaosConfig) -> SoakOutcome {
    let mut outcome = SoakOutcome {
        storms_run: 0,
        sim_hours: 0.0,
        wall_hours: 0.0,
        deepest_rung_histogram: [0; 5],
        failures: Vec::new(),
        broker_storms_run: 0,
        broker_failures: Vec::new(),
    };
    for i in 0..cfg.storms {
        let spec = StormSpec::generate(cfg.seed0 + i);
        let baseline_wall = run_storm(&spec.baseline()).wall_hours;
        let out = run_storm(&spec);
        outcome.storms_run += 1;
        outcome.sim_hours += out.sim_minutes / 60.0;
        outcome.wall_hours += out.wall_hours;
        outcome.deepest_rung_histogram[(out.deepest_rung as usize).min(4)] += 1;
        let mut violations = check_invariants(&spec, &out, baseline_wall, &cfg.budgets);
        if cfg.verify_determinism {
            let again = run_storm(&spec);
            if let Some(reason) = compare_runs(&out, &again) {
                violations.push(Violation::Determinism(reason));
            }
        }
        if violations.is_empty() {
            continue;
        }
        let kinds: Vec<&'static str> = violations.iter().map(|v| v.kind()).collect();
        let shrunk = cfg
            .shrink_failures
            .then(|| shrink(&spec, &cfg.budgets, &kinds));
        let failure = SoakFailure {
            spec,
            violations,
            shrunk,
        };
        if let Some(dir) = &cfg.artifact_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!("shrunk_storm_seed_{}.txt", failure.spec.seed));
            let _ = std::fs::write(&path, failure.report());
        }
        outcome.failures.push(failure);
    }
    for i in 0..cfg.broker_storms {
        let spec = BrokerStormSpec::generate(cfg.seed0 + i);
        let out = run_broker(spec.to_config());
        outcome.broker_storms_run += 1;
        outcome.wall_hours += out.wall_secs / 3600.0;
        let mut violations = check_broker_invariants(&spec, &out, &cfg.budgets);
        if cfg.verify_determinism {
            let again = run_broker(spec.to_config());
            if let Some(reason) = compare_broker_runs(&out, &again) {
                violations.push(Violation::Determinism(reason));
            }
        }
        if violations.is_empty() {
            continue;
        }
        let kinds: Vec<&'static str> = violations.iter().map(|v| v.kind()).collect();
        let shrunk = cfg
            .shrink_failures
            .then(|| shrink_broker(&spec, &cfg.budgets, &kinds));
        let failure = BrokerSoakFailure {
            spec,
            violations,
            shrunk,
        };
        if let Some(dir) = &cfg.artifact_dir {
            let _ = std::fs::create_dir_all(dir);
            let path = dir.join(format!(
                "shrunk_broker_storm_seed_{}.txt",
                failure.spec.seed
            ));
            let _ = std::fs::write(&path, failure.report());
        }
        outcome.broker_failures.push(failure);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_generation_is_deterministic_and_survivable() {
        for seed in 0..40u64 {
            let a = StormSpec::generate(seed);
            assert_eq!(a, StormSpec::generate(seed), "seed {seed} not reproducible");
            assert!((18.0..=48.0).contains(&a.mission_hours));
            assert!(!a.events.is_empty());
            for &(at, fault) in &a.events {
                assert!(
                    (0.0..1.0).contains(&at),
                    "fault at {at} outside the storm window"
                );
                match fault {
                    Fault::BandwidthFlap { flips, .. } => {
                        assert_eq!(flips % 2, 0, "flaps must end healthy");
                    }
                    Fault::LinkDegradation { factor } if factor < 0.5 => {
                        // Every collapse is followed by a restore.
                        assert!(
                            a.events.iter().any(|&(t2, f2)| t2 > at
                                && matches!(f2, Fault::LinkDegradation { factor } if factor >= 0.5)),
                            "collapse at {at} never restores: {a:?}"
                        );
                    }
                    _ => {}
                }
            }
        }
        assert_ne!(
            StormSpec::generate(1).events,
            StormSpec::generate(2).events,
            "different seeds differ"
        );
    }

    #[test]
    fn disruption_accounting_merges_overlaps() {
        assert_eq!(disruption_hours(&[(0.0, 1.0), (0.5, 1.5)]), 1.5);
        assert_eq!(disruption_hours(&[(0.0, 1.0), (2.0, 3.0)]), 2.0);
        assert_eq!(
            disruption_hours(&[(1.0, 1.0)]),
            0.0,
            "point events are free"
        );
        let spec = StormSpec {
            seed: 0,
            mission_hours: 20.0,
            events: vec![
                (0.2, Fault::LinkDegradation { factor: 0.01 }),
                (0.5, Fault::LinkDegradation { factor: 1.0 }),
                (
                    0.4,
                    Fault::ReceiverOutage {
                        duration_hours: 0.3,
                    },
                ),
            ],
            disk_capacity: 100_000,
            bandwidth_bps: 30_000.0,
            qos: true,
        };
        let w = disruption_windows(&spec, 10.0);
        // Collapse runs 0.2→0.5 (restored), outage 0.4→0.7: union 0.5 h.
        assert!((disruption_hours(&w) - 0.5).abs() < 1e-9, "{w:?}");
    }

    #[test]
    fn one_storm_runs_green_under_default_budgets() {
        let spec = StormSpec::generate(0xC1A05);
        let baseline = run_storm(&spec.baseline());
        let out = run_storm(&spec);
        let violations = check_invariants(
            &spec,
            &out,
            baseline.wall_hours,
            &InvariantBudgets::default(),
        );
        assert!(
            violations.is_empty(),
            "storm should be green:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(out.completed);
    }

    #[test]
    fn determinism_comparator_accepts_a_replay_and_flags_divergence() {
        let spec = StormSpec::generate(7);
        let a = run_storm(&spec);
        let b = run_storm(&spec);
        assert_eq!(compare_runs(&a, &b), None, "same storm replays identically");
        let mut c = b.clone();
        c.report.counters.frames_written += 1;
        assert!(compare_runs(&a, &c).is_some());
    }

    #[test]
    fn broker_storm_generation_is_deterministic_and_survivable() {
        for seed in 0..40u64 {
            let a = BrokerStormSpec::generate(seed);
            assert_eq!(
                a,
                BrokerStormSpec::generate(seed),
                "seed {seed} not reproducible"
            );
            assert!((200..800).contains(&a.fleet));
            assert!(
                matches!(a.events[0].1, LoadEvent::ArrivalRamp { .. }),
                "every storm starts with the base ramp"
            );
            for &(at, ref ev) in &a.events {
                assert!((0.0..4300.0).contains(&at));
                if let LoadEvent::MassDisconnect { frac, outage_secs } = *ev {
                    assert!((0.0..=1.0).contains(&frac));
                    // Survivable by construction: the outage ends well
                    // before the two-hour horizon.
                    assert!(at + outage_secs < 2.0 * 3600.0 - 600.0);
                }
                if let LoadEvent::LinkSag { factor, .. } = *ev {
                    assert!(factor >= 0.05, "sags degrade, never collapse");
                }
            }
        }
        assert_ne!(
            BrokerStormSpec::generate(1).events,
            BrokerStormSpec::generate(2).events
        );
    }

    #[test]
    fn one_broker_storm_runs_green_and_replays() {
        let spec = BrokerStormSpec::generate(0xC1A05);
        let out = run_broker(spec.to_config());
        let violations = check_broker_invariants(&spec, &out, &InvariantBudgets::default());
        assert!(
            violations.is_empty(),
            "broker storm should be green:\n{}",
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        let again = run_broker(spec.to_config());
        assert_eq!(compare_broker_runs(&out, &again), None);
        let mut forged = again.clone();
        forged.counters.frames_delivered += 1;
        assert!(compare_broker_runs(&out, &forged).is_some());
        assert!(spec.replay_line().contains("BROKER-REPLAY"));
    }

    #[test]
    fn broker_violations_display_their_kinds() {
        let cases: Vec<Violation> = vec![
            Violation::BrokerMemory {
                peak_frames: 70,
                retention: 60,
            },
            Violation::LiveStarvation { ticks: 3 },
            Violation::AdmissionFairness {
                max_wait_secs: 99.0,
                bound_secs: 38.0,
            },
            Violation::BrokerConservation("x".into()),
            Violation::BrokerStaleness {
                p99_secs: 2500.0,
                budget_secs: 2400.0,
            },
        ];
        for v in cases {
            assert!(
                v.to_string().contains(&format!("[{}]", v.kind())),
                "{v} missing kind tag"
            );
        }
    }

    #[test]
    fn replay_line_is_complete_and_violations_display() {
        let spec = StormSpec::generate(3);
        let line = spec.replay_line();
        assert!(line.contains("seed=3"));
        assert!(line.contains("events=["));
        let v = Violation::RungCap { deepest: 4, cap: 0 };
        assert_eq!(v.kind(), "rung-cap");
        assert!(v.to_string().contains("rung 4"));
        let s = Violation::Staleness {
            wall_hours: 1.0,
            rung: 2,
            staleness_min: 700.0,
            budget_min: 600.0,
        };
        assert!(s.to_string().contains("rung 2"));
    }
}
