//! Online mode: the pipeline as live, communicating daemons.
//!
//! The DES orchestrator answers the paper's quantitative questions; this
//! module demonstrates (and end-to-end tests) the *architecture*: real
//! threads for the simulation process, the frame sender, the frame
//! receiver + visualization process, and the application manager — glued
//! together exactly as in the paper's Figure 2:
//!
//! - the manager writes the **application configuration file** (a real
//!   JSON file) every decision epoch,
//! - the simulation process **polls that file**, stalls on CRITICAL, and
//!   applies new configurations,
//! - frames are real encoded [`ncdf`] datasets moving through a bounded
//!   channel standing in for the wide-area link, throttled to the modeled
//!   bandwidth, with the receiver **acking** each frame after it is
//!   applied — the sender only settles a frame in its ledger once the
//!   remote end durably has it,
//! - the receiver decodes frames and feeds the visualization (eye
//!   tracking via [`viz::TrackLog`]).
//!
//! With [`OnlineOptions::durability`] set, the whole pipeline is
//! crash-consistent: the frame ledger is write-ahead journaled, payloads
//! and receiver state live in checksummed snapshot files, the model and
//! manager checkpoint on a cadence, and [`crate::recovery`] can rebuild a
//! killed incarnation from disk.
//!
//! Modeled wall time is compressed: `time_scale` real seconds per modeled
//! second, so a multi-hour experiment plays out in real milliseconds
//! while every component genuinely runs concurrently.

use crate::config::ApplicationConfig;
use crate::decision::{AlgorithmKind, DecisionInputs, CRITICAL_FREE_PERCENT};
use crate::fault::{Fault, FaultPlan};
use crate::manager::ManagerState;
use crate::recovery::{self, CheckpointMeta, DurabilityOptions};
use cyclone::{Mission, Site};
use parking_lot::Mutex;
use resources::{Disk, FrameStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use viz::TrackLog;
use wrf::WrfModel;

/// Encoded frame payloads awaiting shipment, keyed by frame id.
type PayloadTable = Arc<Mutex<Vec<(u64, f64, Vec<u8>)>>>;

/// Options for an online run.
#[derive(Debug, Clone)]
pub struct OnlineOptions {
    /// Real seconds slept per modeled wall second (e.g. `2e-5` runs a
    /// modeled hour in 72 ms).
    pub time_scale: f64,
    /// Where the application configuration file lives.
    pub config_path: PathBuf,
    /// Capacity of the (scaled-down) simulation-site disk, bytes. Online
    /// frames are the decimated model's actual encodings, so the disk is
    /// sized in frame multiples rather than Table IV gigabytes.
    pub disk_capacity: u64,
    /// Modeled link bandwidth, bytes per modeled second.
    pub bandwidth_bps: f64,
    /// Scripted faults, fired by a live injector thread at their modeled
    /// wall times (same vocabulary as the DES orchestrator).
    pub fault_plan: FaultPlan,
    /// Crash-consistent durable state (`None` = the pre-durability
    /// volatile pipeline, for tests and quick demos).
    pub durability: Option<DurabilityOptions>,
}

impl OnlineOptions {
    /// Fast defaults for demos and tests: unique temp config file, a disk
    /// that holds roughly 12 frames, and a link that moves one frame in a
    /// couple of modeled minutes.
    pub fn fast(tag: &str) -> Self {
        OnlineOptions {
            time_scale: 2e-5,
            config_path: std::env::temp_dir()
                .join(format!("adaptive-online-{tag}-{}.json", std::process::id())),
            disk_capacity: 40_000_000,
            bandwidth_bps: 30_000.0,
            fault_plan: FaultPlan::new(),
            durability: None,
        }
    }

    /// Builder: scripted faults.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Builder: crash-consistent durable state rooted at
    /// `durability.state_dir`.
    pub fn with_durability(mut self, durability: DurabilityOptions) -> Self {
        self.durability = Some(durability);
        self
    }
}

/// How an incarnation died (set when a scripted [`Fault::ProcessKill`]
/// fired), plus the storage damage staged to land with it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KillEvent {
    /// Modeled wall hours into the run at which the kill fired.
    pub at_hours: f64,
    /// A [`Fault::TornWrite`] was staged: the supervisor tears the
    /// journal tail before restarting.
    pub torn_write: bool,
    /// A [`Fault::CorruptCheckpoint`] was staged: the supervisor flips
    /// bytes in the newest checkpoint before restarting.
    pub corrupt_checkpoint: bool,
}

/// What an online run observed.
#[derive(Debug)]
pub struct OnlineReport {
    /// Modeled simulated minutes reached by the simulation thread.
    pub sim_minutes: f64,
    /// Frames written to the (virtual) simulation-site disk. In durable
    /// mode this is the ledger's cumulative count across incarnations.
    pub frames_written: u64,
    /// Frames that crossed the link (ledger cumulative in durable mode).
    pub frames_shipped: u64,
    /// Frames decoded and visualized at the remote end.
    pub frames_rendered: u64,
    /// Frames still on the simulation-site disk (pending + in flight)
    /// when the run ended.
    pub frames_in_flight: u64,
    /// Decision epochs the manager ran.
    pub decisions: u64,
    /// Stall episodes observed by the simulation thread.
    pub stalls: u64,
    /// The cyclone track accumulated by the visualization process.
    pub track: TrackLog,
    /// True when the mission duration was fully simulated.
    pub completed: bool,
    /// Injected simulation crashes the process recovered from.
    pub crashes: u64,
    /// Receiver outages the transport recovered from (sender reconnects).
    pub reconnects: u64,
    /// Whole-pipeline kill→restart cycles the recovery supervisor drove.
    pub recoveries: u64,
    /// Journal replays performed while booting incarnations.
    pub journal_replays: u64,
    /// Frames rebuilt from a dead incarnation's disk.
    pub frames_recovered: u64,
    /// Free disk at the end of the run, percent.
    pub final_free_disk_pct: f64,
    /// Set when a scripted [`Fault::ProcessKill`] ended this incarnation;
    /// [`crate::recovery::run_with_recovery`] consumes it.
    pub kill: Option<KillEvent>,
}

/// Run the live pipeline for `mission` on `site`'s characteristics.
///
/// One call is one *incarnation*: with durability configured, a scripted
/// [`Fault::ProcessKill`] makes every thread stop dead (no draining, no
/// final checkpoint — the moral equivalent of `kill -9` given that the
/// threads share our address space) and the report comes back with
/// [`OnlineReport::kill`] set for the supervisor to act on.
pub fn run_online(
    site: &Site,
    mission: &Mission,
    algorithm: AlgorithmKind,
    options: &OnlineOptions,
) -> OnlineReport {
    // --- Boot: cold, or rebuilt from a prior incarnation's disk -----
    let boot = options.durability.as_ref().map(|d| {
        recovery::bootstrap(d, options.disk_capacity)
            .expect("durable state directory is usable")
    });
    let durable = options.durability.clone();
    let mut journal_replays = 0u64;
    let mut frames_recovered = 0u64;
    let mut base_stalls = 0u64;
    let mut base_crashes = 0u64;
    let mut boot_model: Option<WrfModel> = None;
    let mut boot_next_output: Option<f64> = None;
    let mut boot_config: Option<ApplicationConfig> = None;
    let mut boot_manager: Option<ManagerState> = None;
    let mut boot_track = TrackLog::new();
    let mut boot_watermark = 0u64;
    let mut skip_outputs_through = f64::NEG_INFINITY;
    let mut next_checkpoint_seq = 0u64;
    let mut initial_payloads: Vec<(u64, f64, Vec<u8>)> = Vec::new();

    let store = match boot {
        Some(b) => {
            journal_replays = b.journal_replays;
            frames_recovered = b.frames_recovered;
            base_stalls = b.base_stalls;
            base_crashes = b.base_crashes;
            boot_model = b.model;
            boot_next_output = b.next_output_min;
            boot_config = b.config;
            boot_manager = b.manager;
            boot_track = b.track;
            boot_watermark = b.applied_watermark;
            skip_outputs_through = b.skip_outputs_through;
            next_checkpoint_seq = b.next_checkpoint_seq;
            initial_payloads = b.payloads;
            Arc::new(Mutex::new(b.store))
        }
        None => Arc::new(Mutex::new(FrameStore::new(Disk::new(
            options.disk_capacity,
        )))),
    };

    // Live fault state, shared between the injector and the daemons: the
    // link's current degradation factor, whether the receiver host is
    // reachable, a pending simulation-process crash, and the kill switch
    // that ends the whole incarnation at once.
    let link_factor = Arc::new(Mutex::new(1.0f64));
    let receiver_down = Arc::new(AtomicBool::new(false));
    let crash_pending = Arc::new(AtomicBool::new(false));
    let killed = Arc::new(AtomicBool::new(false));
    // Encoded frame payloads awaiting shipment, keyed by frame id. In
    // durable mode each payload also lives in a checksummed file under
    // frames/; this table is the warm copy.
    let payloads: PayloadTable = Arc::new(Mutex::new(initial_payloads));
    let done = Arc::new(AtomicBool::new(false));
    // Manager epoch state mirrored for the checkpointing sim thread.
    let manager_state = Arc::new(Mutex::new(boot_manager.unwrap_or(ManagerState {
        epochs: 0,
        peak_bandwidth_bps: 0.0,
        degraded_epochs: 0,
    })));
    // Receiver's applied watermark (last applied frame id + 1), mirrored
    // for checkpoint metadata.
    let watermark = Arc::new(AtomicU64::new(boot_watermark));
    // The "network": a rendezvous channel carrying encoded frames, plus
    // the ack path back — the sender settles a frame only after the
    // receiver has durably applied it.
    let (frame_tx, frame_rx) = crossbeam::channel::bounded::<(u64, f64, Vec<u8>)>(1);
    let (ack_tx, ack_rx) = crossbeam::channel::bounded::<u64>(1);

    let initial = boot_config.clone().unwrap_or_else(|| {
        ApplicationConfig::initial(
            site.cluster.max_cores,
            mission.min_output_interval_min,
            mission.model.resolution_km,
        )
    });
    initial
        .write_file(&options.config_path)
        .expect("config file is writable");

    let scale = options.time_scale;
    let nap = |modeled_secs: f64| {
        std::thread::sleep(Duration::from_secs_f64((modeled_secs * scale).min(0.25)));
    };

    let mut sim_minutes = 0.0f64;
    let mut completed = false;
    let mut track = TrackLog::new();
    let mut frames_rendered = 0u64;
    let mut decisions = 0u64;
    let mut stalls = 0u64;
    let mut crashes = 0u64;
    let mut reconnects = 0u64;
    let mut kill_event: Option<KillEvent> = None;

    crossbeam::thread::scope(|s| {
        // --- Simulation process -------------------------------------
        let sim_store = Arc::clone(&store);
        let sim_payloads = Arc::clone(&payloads);
        let sim_done = Arc::clone(&done);
        let sim_cfg_path = options.config_path.clone();
        let sim_crash = Arc::clone(&crash_pending);
        let sim_killed = Arc::clone(&killed);
        let sim_mgr_state = Arc::clone(&manager_state);
        let sim_watermark = Arc::clone(&watermark);
        let sim_durable = durable.clone();
        let sim_boot_model = boot_model;
        let sim = s.spawn(move |_| {
            let mut model = match sim_boot_model {
                Some(m) => m,
                None => WrfModel::new(mission.model).expect("valid mission model"),
            };
            let mut next_output =
                boot_next_output.unwrap_or(mission.min_output_interval_min);
            let mut stalls = 0u64;
            let mut crashes = 0u64;
            let mut was_stalled = false;
            // Checkpoint cadence, simulated minutes (0 = disabled).
            let ckpt_every = sim_durable
                .as_ref()
                .map(|d| d.checkpoint_every_min)
                .unwrap_or(0.0);
            let mut next_ckpt = if ckpt_every > 0.0 {
                // First cadence boundary strictly ahead of the resume point.
                (model.sim_minutes() / ckpt_every).floor() * ckpt_every + ckpt_every
            } else {
                f64::INFINITY
            };
            let mut ckpt_seq = next_checkpoint_seq;
            while model.sim_minutes() < mission.duration_minutes() {
                if sim_killed.load(Ordering::SeqCst) {
                    return (model.sim_minutes(), stalls, crashes);
                }
                if sim_crash.swap(false, Ordering::SeqCst) {
                    // The process died; the job handler relaunches it from
                    // the last checkpoint (restart overhead plus a requeue
                    // penalty, compressed to a nap). Simulated state is
                    // checkpointed, so no progress is lost — only time.
                    crashes += 1;
                    nap(3.0 * site.cluster.restart_overhead_secs);
                    continue;
                }
                let cfg = ApplicationConfig::read_file(&sim_cfg_path)
                    .expect("manager keeps the file valid");
                if cfg.critical {
                    if !was_stalled {
                        stalls += 1;
                        was_stalled = true;
                    }
                    nap(300.0);
                    continue;
                }
                was_stalled = false;
                // Apply schedule-driven resolution changes (the job
                // handler's stop/restart, compressed to a nap).
                let p = model.min_pressure_hpa();
                let res = mission.schedule.resolution_for(p);
                if (res - model.config().resolution_km).abs() > 1e-9 {
                    nap(site.cluster.restart_overhead_secs);
                    model.set_resolution(res).expect("schedule resolution");
                }
                if mission.schedule.nest_active(p) && !model.has_nest() {
                    model.spawn_nest();
                }

                model.advance_steps(1, 1).expect("finite integration");
                // Modeled compute time for this step at cfg.num_procs.
                let work = mission.work_points(res, model.has_nest());
                let t = site.cluster.scaling.predict(cfg.num_procs as f64, work);
                nap(t);

                if model.sim_minutes() + 1e-9 >= next_output {
                    if model.sim_minutes() <= skip_outputs_through + 1e-6 {
                        // This output is already on the durable record from
                        // a dead incarnation; re-simulation is bit-exact, so
                        // advance the schedule without storing a duplicate.
                        next_output = model.sim_minutes() + cfg.output_interval_min;
                    } else {
                        let ds = model.frame();
                        let bytes = ds.to_bytes().to_vec();
                        let stored = {
                            let mut st = sim_store.lock();
                            // Durable order: payload file first (fsynced),
                            // then the journal record that commits it — a
                            // Store record in the journal implies its bytes
                            // are on disk.
                            let mut payload_ok = true;
                            let mut payload_path = None;
                            if let Some(d) = &sim_durable {
                                let path =
                                    recovery::frame_path(&d.frames_dir(), st.next_id());
                                match wrf::checkpoint::write_snapshot_file(&path, &bytes)
                                {
                                    Ok(()) => payload_path = Some(path),
                                    Err(_) => payload_ok = false,
                                }
                            }
                            if !payload_ok {
                                // Payload not durable ⇒ do not commit.
                                None
                            } else {
                                match st.store(model.sim_minutes(), bytes.len() as u64)
                                {
                                    Ok(meta) => Some(meta),
                                    Err(_) => {
                                        if let Some(p) = payload_path {
                                            let _ = std::fs::remove_file(p);
                                        }
                                        None
                                    }
                                }
                            }
                        };
                        if let Some(meta) = stored {
                            next_output = model.sim_minutes() + cfg.output_interval_min;
                            // Park the payload where the sender finds it.
                            sim_payloads.lock().push((
                                meta.id,
                                model.sim_minutes(),
                                bytes,
                            ));
                        }
                        // On failure the frame is dropped; CRITICAL (set by
                        // the manager) throttles us before this is common.
                    }
                }

                if model.sim_minutes() + 1e-9 >= next_ckpt {
                    if let Some(d) = &sim_durable {
                        let meta = CheckpointMeta {
                            sim_minutes: model.sim_minutes(),
                            next_output_min: next_output,
                            config: cfg.clone(),
                            manager: *sim_mgr_state.lock(),
                            stalls: base_stalls + stalls,
                            crashes: base_crashes + crashes,
                            applied_watermark: sim_watermark.load(Ordering::SeqCst),
                        };
                        let dir = d.checkpoints_dir();
                        if recovery::write_checkpoint(
                            &dir,
                            ckpt_seq,
                            &meta,
                            &model.checkpoint(),
                        )
                        .is_ok()
                        {
                            ckpt_seq += 1;
                            recovery::prune_checkpoints(&dir, d.keep_checkpoints);
                        }
                    }
                    next_ckpt += ckpt_every;
                }
            }
            sim_done.store(true, Ordering::SeqCst);
            (model.sim_minutes(), stalls, crashes)
        });

        // --- Frame sender daemon ------------------------------------
        let send_store = Arc::clone(&store);
        let send_payloads = Arc::clone(&payloads);
        let send_done = Arc::clone(&done);
        let send_link = Arc::clone(&link_factor);
        let send_down = Arc::clone(&receiver_down);
        let send_killed = Arc::clone(&killed);
        let bw = options.bandwidth_bps;
        let sender = s.spawn(move |_| {
            loop {
                if send_killed.load(Ordering::SeqCst) {
                    break;
                }
                if send_down.load(Ordering::SeqCst) {
                    // Receiver unreachable: store-and-forward. Frames stay
                    // on the simulation-site disk; the sender retries until
                    // the injector restores the host.
                    nap(300.0);
                    continue;
                }
                let meta = send_store.lock().begin_transfer();
                match meta {
                    Some(meta) => {
                        let factor = (*send_link.lock()).max(1e-9);
                        nap(meta.bytes as f64 / (bw * factor));
                        let payload = {
                            let mut p = send_payloads.lock();
                            let idx = p.iter().position(|(id, _, _)| *id == meta.id);
                            idx.map(|i| p.remove(i))
                        };
                        match payload {
                            Some((id, t, bytes)) => {
                                if frame_tx.send((id, t, bytes)).is_err() {
                                    break; // receiver gone
                                }
                                // Wait for the receiver's ack: only then is
                                // the frame durably applied remotely, and
                                // only then does the ledger settle it. A
                                // kill between send and ack leaves the
                                // frame in flight — recovery reconciles it
                                // against the receiver's watermark.
                                match ack_rx.recv() {
                                    Ok(acked) if acked == meta.id => {}
                                    _ => break,
                                }
                            }
                            None => {
                                // Ledger entry with no payload (recovered
                                // from a prior incarnation whose payload
                                // file was damaged): settle it as
                                // shipped-and-lost so accounting stays
                                // conserved.
                            }
                        }
                        send_store
                            .lock()
                            .complete_transfer(meta.id)
                            .expect("we began it");
                    }
                    None => {
                        if send_done.load(Ordering::SeqCst) {
                            break;
                        }
                        nap(60.0);
                    }
                }
            }
            drop(frame_tx);
        });

        // --- Frame receiver + visualization process -----------------
        let viz_killed = Arc::clone(&killed);
        let viz_watermark = Arc::clone(&watermark);
        let viz_durable = durable.clone();
        let viz_boot_track = boot_track;
        let viz = s.spawn(move |_| {
            let mut track = viz_boot_track;
            let mut rendered = 0u64;
            while let Ok((id, _t, bytes)) = frame_rx.recv() {
                // A kill severs the link mid-conversation: the frame that
                // just arrived is *not* applied and never acked.
                if viz_killed.load(Ordering::SeqCst) {
                    break;
                }
                let mark = viz_watermark.load(Ordering::SeqCst);
                if id >= mark {
                    if let Ok(ds) = ncdf::Dataset::from_bytes(&bytes) {
                        track.ingest(&ds);
                        rendered += 1;
                    }
                    // Apply-then-persist-then-ack: the receiver's durable
                    // state always covers everything it has acknowledged.
                    viz_watermark.store(id + 1, Ordering::SeqCst);
                    if let Some(d) = &viz_durable {
                        let _ = recovery::save_receiver_state(
                            &d.receiver_path(),
                            id + 1,
                            &track,
                        );
                    }
                }
                // Duplicates (already below the watermark) are acked
                // without re-applying — replay idempotence.
                if ack_tx.send(id).is_err() {
                    break;
                }
            }
            (track, rendered)
        });

        // --- Application manager ------------------------------------
        let mgr_store = Arc::clone(&store);
        let mgr_done = Arc::clone(&done);
        let mgr_cfg_path = options.config_path.clone();
        let mgr_link = Arc::clone(&link_factor);
        let mgr_down = Arc::clone(&receiver_down);
        let mgr_killed = Arc::clone(&killed);
        let mgr_state = Arc::clone(&manager_state);
        let manager = s.spawn(move |_| {
            let mut algo = algorithm.build();
            let mut epochs = 0u64;
            while !mgr_done.load(Ordering::SeqCst) && !mgr_killed.load(Ordering::SeqCst)
            {
                nap(mission.decision_interval_hours * 3600.0);
                let (free_pct, free_bytes) = {
                    let st = mgr_store.lock();
                    (st.disk().free_percent(), st.disk().free())
                };
                let current = ApplicationConfig::read_file(&mgr_cfg_path)
                    .expect("file stays valid");
                let table = site.proc_table(mission, current.resolution_km, current.nest_active);
                // Online frames are real encodings of the decimated grid;
                // size O accordingly from a representative frame.
                let frame_bytes = (options.disk_capacity / 12).max(1);
                // The probe's view of the link: degraded by faults, and
                // effectively dead while the receiver host is down — the
                // decision algorithm sees the outage as a bandwidth
                // collapse and widens the output interval rather than
                // letting frames be dropped.
                let observed_factor = if mgr_down.load(Ordering::SeqCst) {
                    1e-6
                } else {
                    (*mgr_link.lock()).max(1e-9)
                };
                let observed_bps = options.bandwidth_bps * observed_factor;
                let inputs = DecisionInputs {
                    free_disk_percent: free_pct,
                    free_disk_bytes: free_bytes,
                    disk_capacity_bytes: options.disk_capacity,
                    bandwidth_bps: observed_bps,
                    frame_bytes,
                    io_secs_per_frame: site.cluster.io_time(frame_bytes),
                    proc_table: &table,
                    current: &current,
                    dt_sim_secs: mission.dt_secs(current.resolution_km),
                    min_oi_min: mission.min_output_interval_min,
                    max_oi_min: mission.max_output_interval_min,
                    horizon_secs: 12.0 * 3600.0,
                };
                let (procs, oi) = algo.decide(&inputs);
                let next = ApplicationConfig {
                    num_procs: procs,
                    output_interval_min: oi,
                    resolution_km: current.resolution_km,
                    nest_active: current.nest_active,
                    critical: free_pct <= CRITICAL_FREE_PERCENT,
                };
                next.write_file(&mgr_cfg_path).expect("config writable");
                epochs += 1;
                // Mirror the durable epoch state for checkpoints.
                let mut ms = mgr_state.lock();
                ms.epochs += 1;
                if observed_bps > ms.peak_bandwidth_bps {
                    ms.peak_bandwidth_bps = observed_bps;
                } else if observed_bps < ms.peak_bandwidth_bps * 0.25 {
                    ms.degraded_epochs += 1;
                }
            }
            epochs
        });

        // --- Fault injector -----------------------------------------
        let inj_store = Arc::clone(&store);
        let inj_done = Arc::clone(&done);
        let inj_link = Arc::clone(&link_factor);
        let inj_down = Arc::clone(&receiver_down);
        let inj_crash = Arc::clone(&crash_pending);
        let inj_killed = Arc::clone(&killed);
        let mut plan = options.fault_plan.events.clone();
        plan.sort_by(|a, b| a.0.total_cmp(&b.0));
        let injector = s.spawn(move |_| {
            let mut reconnects = 0u64;
            let mut clock_hours = 0.0f64;
            let mut kill: Option<KillEvent> = None;
            let mut torn_staged = false;
            let mut corrupt_staged = false;
            for (at_hours, fault) in plan {
                nap((at_hours - clock_hours).max(0.0) * 3600.0);
                clock_hours = at_hours.max(clock_hours);
                if inj_done.load(Ordering::SeqCst) {
                    break;
                }
                match fault {
                    Fault::LinkDegradation { factor } => {
                        *inj_link.lock() = factor;
                    }
                    Fault::BandwidthFlap {
                        factor,
                        half_period_hours,
                        flips,
                    } => {
                        for flip in 0..flips {
                            let degraded = flip % 2 == 0;
                            *inj_link.lock() = if degraded { factor } else { 1.0 };
                            if flip + 1 < flips {
                                nap(half_period_hours.max(1e-3) * 3600.0);
                                clock_hours += half_period_hours;
                            }
                            if inj_done.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                    }
                    Fault::DiskPressure {
                        bytes,
                        duration_hours,
                    } => {
                        let got = inj_store.lock().seize_external(bytes);
                        nap(duration_hours.max(1e-3) * 3600.0);
                        clock_hours += duration_hours;
                        inj_store.lock().release_external(got);
                    }
                    Fault::ReceiverOutage { duration_hours } => {
                        inj_down.store(true, Ordering::SeqCst);
                        nap(duration_hours.max(1e-3) * 3600.0);
                        clock_hours += duration_hours;
                        inj_down.store(false, Ordering::SeqCst);
                        reconnects += 1;
                    }
                    Fault::SimCrash => {
                        inj_crash.store(true, Ordering::SeqCst);
                    }
                    Fault::TornWrite => {
                        torn_staged = true;
                    }
                    Fault::CorruptCheckpoint => {
                        corrupt_staged = true;
                    }
                    Fault::ProcessKill { at_hours } => {
                        kill = Some(KillEvent {
                            at_hours,
                            torn_write: torn_staged,
                            corrupt_checkpoint: corrupt_staged,
                        });
                        inj_killed.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            }
            // Never leave a fault latched past the end of the plan: the
            // sender and simulation must be able to drain and finish.
            inj_down.store(false, Ordering::SeqCst);
            let held = inj_store.lock().external_bytes();
            if held > 0 {
                inj_store.lock().release_external(held);
            }
            (reconnects, kill)
        });

        let (sim_min, sim_stalls, sim_crashes) = sim.join().expect("simulation thread");
        sim_minutes = sim_min;
        stalls = base_stalls + sim_stalls;
        crashes = base_crashes + sim_crashes;
        completed = sim_minutes >= mission.duration_minutes();
        sender.join().expect("sender thread");
        let (t, rendered) = viz.join().expect("viz thread");
        track = t;
        frames_rendered = rendered;
        decisions = manager.join().expect("manager thread");
        let (rc, kill) = injector.join().expect("injector thread");
        reconnects = rc;
        kill_event = kill;
    })
    .expect("pipeline thread panicked");

    std::fs::remove_file(&options.config_path).ok();

    // Ledger-derived counters survive incarnations: the journal carries
    // them across a kill, so conservation holds at the boundary.
    let (frames_written, frames_shipped, frames_in_flight, final_free_disk_pct) = {
        let st = store.lock();
        (
            st.frames_stored(),
            st.frames_shipped(),
            (st.pending_count() + st.in_flight_count()) as u64,
            st.disk().free_percent(),
        )
    };

    if completed {
        if let Some(d) = &durable {
            recovery::mark_completed(d);
        }
    }
    let decisions = manager_state.lock().epochs.max(decisions);

    OnlineReport {
        sim_minutes,
        frames_written,
        frames_shipped,
        frames_rendered,
        frames_in_flight,
        decisions,
        stalls,
        track,
        completed,
        crashes,
        reconnects,
        recoveries: 0,
        journal_replays,
        frames_recovered,
        final_free_disk_pct,
        kill: kill_event,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::run_with_recovery;

    fn unique_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "adaptive-online-state-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn live_pipeline_moves_real_frames_end_to_end() {
        let site = Site::inter_department();
        // Heavier decimation keeps encoded frames small and the test fast.
        let mission = Mission::aila()
            .with_duration_hours(2.0)
            .with_decimation(16);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &OnlineOptions::fast("e2e"),
        );
        assert!(report.completed, "mission finished: {report:?}");
        assert!(report.frames_written > 0);
        assert!(report.frames_rendered > 0);
        assert!(report.frames_rendered <= report.frames_written);
        // The remote visualization actually tracked the cyclone.
        assert!(!report.track.fixes().is_empty());
        let fix = report.track.fixes()[0];
        assert!((fix.lon - 88.0).abs() < 3.0);
        // Conservation: every written frame is shipped or still held.
        assert_eq!(
            report.frames_written,
            report.frames_shipped + report.frames_in_flight,
            "{report:?}"
        );
    }

    #[test]
    fn disk_pressure_drives_the_critical_stall_path_end_to_end() {
        let site = Site::inter_department();
        let mut mission = Mission::aila()
            .with_duration_hours(3.0)
            .with_decimation(16);
        // Tighter epochs so the manager reacts within the fault window.
        mission.decision_interval_hours = 0.25;
        // An external writer seizes essentially the whole disk shortly
        // after start and holds it long enough for several decision
        // epochs: the manager must observe free disk below the CRITICAL
        // threshold and write CRITICAL into the configuration file, the
        // simulation process must stall on it, and once the space is
        // released the manager clears the flag and the simulation resumes
        // and completes the mission.
        let plan = FaultPlan::from_events(vec![(
            0.2,
            Fault::DiskPressure {
                bytes: u64::MAX / 2,
                duration_hours: 1.5,
            },
        )]);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &OnlineOptions::fast("critical-stall").with_fault_plan(plan),
        );
        assert!(report.stalls >= 1, "CRITICAL stalled the sim: {report:?}");
        assert!(report.completed, "resumed and finished: {report:?}");
        assert!(report.frames_rendered > 0);
    }

    #[test]
    fn injected_crash_and_outage_are_survived() {
        let site = Site::inter_department();
        let mut mission = Mission::aila()
            .with_duration_hours(2.0)
            .with_decimation(16);
        mission.decision_interval_hours = 0.25;
        let plan = FaultPlan::from_events(vec![
            (0.1, Fault::SimCrash),
            (0.3, Fault::ReceiverOutage { duration_hours: 0.5 }),
        ]);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &OnlineOptions::fast("crash-outage").with_fault_plan(plan),
        );
        assert!(report.completed, "{report:?}");
        assert_eq!(report.crashes, 1, "the crash was hit and recovered");
        assert_eq!(report.reconnects, 1, "the outage ended in a reconnect");
        assert!(report.frames_rendered > 0, "frames still flowed: {report:?}");
    }

    #[test]
    fn greedy_pipeline_also_runs() {
        let site = Site::intra_country();
        let mission = Mission::aila()
            .with_duration_hours(1.0)
            .with_decimation(16);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::GreedyThreshold,
            &OnlineOptions::fast("greedy"),
        );
        assert!(report.completed);
        assert!(report.frames_written > 0);
    }

    #[test]
    fn durable_pipeline_survives_a_kill_and_resumes_from_disk() {
        let site = Site::inter_department();
        let mut mission = Mission::aila()
            .with_duration_hours(2.0)
            .with_decimation(16);
        mission.decision_interval_hours = 0.5;
        let state_dir = unique_dir("kill-resume");
        let plan = FaultPlan::from_events(vec![(
            0.1,
            Fault::ProcessKill { at_hours: 0.1 },
        )]);
        let options = OnlineOptions::fast("kill-resume")
            .with_fault_plan(plan)
            .with_durability(
                DurabilityOptions::new(&state_dir).with_checkpoint_every_min(20.0),
            );
        let report = run_with_recovery(
            &site,
            &mission,
            AlgorithmKind::StaticBaseline,
            &options,
        );
        assert!(report.completed, "{report:?}");
        assert_eq!(report.recoveries, 1, "exactly one kill→restart: {report:?}");
        assert!(report.journal_replays >= 1, "{report:?}");
        assert!(report.frames_written > 0);
        // Conservation across the incarnation boundary.
        assert_eq!(
            report.frames_written,
            report.frames_shipped + report.frames_in_flight,
            "{report:?}"
        );
        let _ = std::fs::remove_dir_all(&state_dir);
    }

    /// The acceptance drill: kill the pipeline mid-epoch, restart it from
    /// disk, and require the completed remote track to be byte-identical
    /// to a fault-free run's. StaticBaseline keeps the output interval
    /// constant so the two schedules are comparable; the durable pipeline
    /// must neither lose nor duplicate a single frame.
    #[test]
    #[ignore = "slower end-to-end recovery drill; run with -- --ignored recovery_"]
    fn recovery_track_is_byte_identical_to_the_fault_free_run() {
        let site = Site::inter_department();
        let mut mission = Mission::aila()
            .with_duration_hours(3.0)
            .with_decimation(16);
        mission.decision_interval_hours = 0.5;

        // Control: fault-free durable run.
        let control_dir = unique_dir("recovery-control");
        let control = run_online(
            &site,
            &mission,
            AlgorithmKind::StaticBaseline,
            &OnlineOptions::fast("recovery-control").with_durability(
                DurabilityOptions::new(&control_dir).with_checkpoint_every_min(30.0),
            ),
        );
        assert!(control.completed, "{control:?}");
        assert!(control.kill.is_none());

        // Treatment: same mission, killed mid-run (a frame in flight is
        // likely), restarted by the supervisor.
        let state_dir = unique_dir("recovery-treatment");
        let plan = FaultPlan::from_events(vec![(
            0.12,
            Fault::ProcessKill { at_hours: 0.12 },
        )]);
        let treated = run_with_recovery(
            &site,
            &mission,
            AlgorithmKind::StaticBaseline,
            &OnlineOptions::fast("recovery-treatment")
                .with_fault_plan(plan)
                .with_durability(
                    DurabilityOptions::new(&state_dir).with_checkpoint_every_min(30.0),
                ),
        );
        assert!(treated.completed, "{treated:?}");
        assert_eq!(treated.recoveries, 1, "{treated:?}");
        assert!(treated.journal_replays >= 1);
        assert_eq!(
            treated.track.to_csv(),
            control.track.to_csv(),
            "recovered track must be byte-identical to the fault-free track"
        );
        assert_eq!(
            treated.frames_written,
            treated.frames_shipped + treated.frames_in_flight,
            "conservation across the incarnation boundary: {treated:?}"
        );
        let _ = std::fs::remove_dir_all(&control_dir);
        let _ = std::fs::remove_dir_all(&state_dir);
    }

    /// Kill + torn journal write + corrupt newest checkpoint, all at
    /// once: recovery truncates the torn tail, falls back past the bad
    /// checkpoint, and still finishes the mission with conservation
    /// intact.
    #[test]
    #[ignore = "slower end-to-end recovery drill; run with -- --ignored recovery_"]
    fn recovery_survives_torn_journal_and_corrupt_checkpoint() {
        let site = Site::inter_department();
        let mut mission = Mission::aila()
            .with_duration_hours(2.5)
            .with_decimation(16);
        mission.decision_interval_hours = 0.5;
        let state_dir = unique_dir("recovery-torn");
        let plan = FaultPlan::from_events(vec![
            (0.08, Fault::TornWrite),
            (0.09, Fault::CorruptCheckpoint),
            (0.1, Fault::ProcessKill { at_hours: 0.1 }),
        ]);
        let report = run_with_recovery(
            &site,
            &mission,
            AlgorithmKind::StaticBaseline,
            &OnlineOptions::fast("recovery-torn")
                .with_fault_plan(plan)
                .with_durability(
                    DurabilityOptions::new(&state_dir).with_checkpoint_every_min(20.0),
                ),
        );
        assert!(report.completed, "{report:?}");
        assert_eq!(report.recoveries, 1, "{report:?}");
        assert_eq!(
            report.frames_written,
            report.frames_shipped + report.frames_in_flight,
            "{report:?}"
        );
        let _ = std::fs::remove_dir_all(&state_dir);
    }
}
