//! Online mode: the pipeline live, against the wall clock.
//!
//! The DES orchestrator answers the paper's quantitative questions; this
//! module demonstrates (and end-to-end tests) the *architecture*: real
//! encoded frames, a real receiver/visualization thread, a real
//! application-configuration file on disk, real journal+checkpoint
//! durability — glued together exactly as in the paper's Figure 2.
//!
//! Since the unified-engine refactor this module is a thin *driver*: the
//! adaptation loop lives in [`crate::engine`] and [`run_online`] merely
//! instantiates it with the live environment —
//! [`ScaledClock`] (modeled seconds paced
//! against real time), [`ChannelTransport`]
//! (a bounded channel standing in for the wide-area link, with the
//! receiver **acking** each frame after it is durably applied),
//! [`JournalDurability`]
//! (payload-file-before-journal ordering plus cadenced checkpoints), and
//! [`LiveInjector`] (a scripted
//! [`Fault::ProcessKill`] halts the incarnation dead for
//! [`crate::recovery::run_with_recovery`] to rebuild from disk).
//!
//! - the manager writes the **application configuration file** (a real
//!   JSON file) every decision epoch,
//! - frames are real encoded [`ncdf`] datasets moving through a bounded
//!   channel throttled to the modeled bandwidth,
//! - the receiver decodes frames and feeds the visualization (eye
//!   tracking via [`viz::TrackLog`]).
//!
//! Modeled wall time is compressed: `time_scale` real seconds per modeled
//! second, so a multi-hour experiment plays out in real milliseconds
//! while the DES-vs-live parity test can set `time_scale = 0` and prove
//! the decision trace identical to the orchestrator's.

use crate::decision::AlgorithmKind;
use crate::engine::{
    ChannelTransport, EngineBoot, EngineSetup, EpochEngine, JournalDurability, LiveInjector,
    PipelineOptions, PipelineReport, ScaledClock,
};
use crate::fault::FaultPlan;
use crate::recovery::{self, DurabilityOptions};
use cyclone::{Mission, Site};
use resources::{Disk, FrameStore, Network};
use std::ops::{Deref, DerefMut};
use std::path::PathBuf;

pub use crate::engine::KillEvent;
pub use crate::fault::Fault;

/// Options for an online run: the live-only knobs plus the shared
/// [`PipelineOptions`] (one source of defaults with the DES driver).
#[derive(Debug, Clone)]
pub struct OnlineOptions {
    /// Real seconds slept per modeled wall second (e.g. `2e-5` runs a
    /// modeled hour in 72 ms; `0` runs on a purely virtual clock).
    pub time_scale: f64,
    /// Where the application configuration file lives.
    pub config_path: PathBuf,
    /// Capacity of the (scaled-down) simulation-site disk, bytes. Online
    /// frames are the decimated model's actual encodings, so the disk is
    /// sized in frame multiples rather than Table IV gigabytes.
    pub disk_capacity: u64,
    /// Modeled link bandwidth, bytes per modeled second.
    pub bandwidth_bps: f64,
    /// Shared pipeline knobs (wall cap, fault plan, durability, ...).
    pub pipeline: PipelineOptions,
}

impl OnlineOptions {
    /// Fast defaults for demos and tests: unique temp config file, a disk
    /// that holds roughly 12 frames, and a link that moves one frame in a
    /// couple of modeled minutes.
    pub fn fast(tag: &str) -> Self {
        OnlineOptions {
            time_scale: 2e-5,
            config_path: std::env::temp_dir()
                .join(format!("adaptive-online-{tag}-{}.json", std::process::id())),
            disk_capacity: 40_000_000,
            bandwidth_bps: 30_000.0,
            pipeline: PipelineOptions::default(),
        }
    }

    /// Builder: scripted faults.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.pipeline.fault_plan = plan;
        self
    }

    /// Builder: crash-consistent durable state rooted at
    /// `durability.state_dir`.
    pub fn with_durability(mut self, durability: DurabilityOptions) -> Self {
        self.pipeline.durability = Some(durability);
        self
    }

    /// Builder: real integrator worker-team sizing (fixed count, or
    /// follow the manager's decided processor count).
    pub fn with_physics_threads(mut self, mode: crate::engine::PhysicsThreads) -> Self {
        self.pipeline.physics_threads = mode;
        self
    }

    /// Builder: turn on the closed-loop degradation ladder (see
    /// [`crate::qos`]).
    pub fn with_qos(mut self, qos: crate::qos::QosConfig) -> Self {
        self.pipeline.qos = Some(qos);
        self
    }
}

/// What an online run observed: the shared [`PipelineReport`] plus the
/// kill marker the recovery supervisor consumes. Derefs into the report
/// (and transitively into [`crate::engine::PipelineCounters`]), so
/// `report.frames_written`, `report.track`, `report.completed` all read
/// as before.
#[derive(Debug)]
pub struct OnlineReport {
    /// The shared engine report.
    pub report: PipelineReport,
    /// Set when a scripted [`Fault::ProcessKill`] ended this incarnation;
    /// [`crate::recovery::run_with_recovery`] consumes it.
    pub kill: Option<KillEvent>,
}

impl Deref for OnlineReport {
    type Target = PipelineReport;
    fn deref(&self) -> &PipelineReport {
        &self.report
    }
}

impl DerefMut for OnlineReport {
    fn deref_mut(&mut self) -> &mut PipelineReport {
        &mut self.report
    }
}

/// Run the live pipeline for `mission` on `site`'s characteristics.
///
/// One call is one *incarnation*: with durability configured, a scripted
/// [`Fault::ProcessKill`] makes the engine stop dead (no draining, no
/// final checkpoint — the moral equivalent of `kill -9` given that the
/// receiver thread shares our address space) and the report comes back
/// with [`OnlineReport::kill`] set for the supervisor to act on.
pub fn run_online(
    site: &Site,
    mission: &Mission,
    algorithm: AlgorithmKind,
    options: &OnlineOptions,
) -> OnlineReport {
    // --- Boot: cold, or rebuilt from a prior incarnation's disk -------
    let boot = options.pipeline.durability.as_ref().map(|d| {
        recovery::bootstrap(d, options.disk_capacity).expect("durable state directory is usable")
    });
    let (
        store,
        engine_boot,
        boot_watermark,
        boot_track,
        payloads,
        next_ckpt_seq,
        boot_replays,
        boot_recovered,
    ) = match boot {
        Some(b) => (
            b.store,
            EngineBoot {
                model: b.model,
                next_output_min: b.next_output_min,
                config: b.config,
                manager: b.manager,
                skip_outputs_through: b.skip_outputs_through,
                base_stalls: b.base_stalls,
                base_crashes: b.base_crashes,
            },
            b.applied_watermark,
            b.track,
            b.payloads,
            b.next_checkpoint_seq,
            b.journal_replays,
            b.frames_recovered,
        ),
        None => (
            FrameStore::new(Disk::new(options.disk_capacity)),
            EngineBoot::default(),
            0,
            viz::TrackLog::new(),
            Vec::new(),
            0,
            0,
            0,
        ),
    };

    let resume_sim_minutes = engine_boot
        .model
        .as_ref()
        .map(|m| m.sim_minutes())
        .unwrap_or(0.0);
    let durability: Option<JournalDurability> = options
        .pipeline
        .durability
        .clone()
        .map(|d| JournalDurability::new(d, resume_sim_minutes, next_ckpt_seq));

    // Online frames are real encodings of the decimated grid; size the
    // decision algorithm's O from a representative frame (the disk holds
    // roughly 12 of them).
    let decision_bytes = (options.disk_capacity / 12).max(1);
    let receiver_path = options
        .pipeline
        .durability
        .as_ref()
        .map(|d| d.receiver_path());
    let transport = ChannelTransport::new(
        decision_bytes,
        receiver_path,
        boot_watermark,
        boot_track,
        payloads,
    );

    let setup = EngineSetup {
        site: site.clone(),
        mission: mission.clone(),
        algorithm,
        options: options.pipeline.clone(),
        store,
        net: Network::ideal(options.bandwidth_bps),
        steering_script: Vec::new(),
        publish_config: Some(options.config_path.clone()),
        drain_on_complete: true,
        boot: engine_boot,
        fleet: None,
    };
    let out = EpochEngine::new(
        setup,
        ScaledClock {
            scale: options.time_scale,
        },
        transport,
        durability,
        LiveInjector,
    )
    .run();

    std::fs::remove_file(&options.config_path).ok();

    let mut report = out.report;
    // Replays/recovered frames performed while *booting* this incarnation
    // belong to its report; the supervisor accumulates them across
    // incarnations.
    report.counters.journal_replays += boot_replays;
    report.counters.frames_recovered += boot_recovered;
    OnlineReport {
        report,
        kill: out.kill,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::run_with_recovery;

    fn unique_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "adaptive-online-state-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn live_pipeline_moves_real_frames_end_to_end() {
        let site = Site::inter_department();
        // Heavier decimation keeps encoded frames small and the test fast.
        let mission = Mission::aila().with_duration_hours(2.0).with_decimation(16);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &OnlineOptions::fast("e2e"),
        );
        assert!(report.completed, "mission finished: {report:?}");
        assert!(report.frames_written > 0);
        assert!(report.frames_rendered > 0);
        assert!(report.frames_rendered <= report.frames_written);
        // The remote visualization actually tracked the cyclone.
        assert!(!report.track.fixes().is_empty());
        let fix = report.track.fixes()[0];
        assert!((fix.lon - 88.0).abs() < 3.0);
        // Conservation: every written frame is shipped or still held.
        crate::engine::assert_frame_conservation(&report);
    }

    #[test]
    fn disk_pressure_drives_the_critical_stall_path_end_to_end() {
        let site = Site::inter_department();
        let mut mission = Mission::aila().with_duration_hours(3.0).with_decimation(16);
        // Tighter epochs so the manager reacts within the fault window.
        // (On the unified engine the live pipeline runs on one modeled
        // clock, so this mission completes in ~0.2 modeled wall hours.)
        mission.decision_interval_hours = 0.05;
        // An external writer seizes essentially the whole disk shortly
        // after start and holds it long enough for several decision
        // epochs: the manager must observe free disk below the CRITICAL
        // threshold and write CRITICAL into the configuration file, the
        // simulation must stall on it, and once the space is released the
        // manager clears the flag and the simulation resumes and
        // completes the mission.
        let plan = FaultPlan::from_events(vec![(
            0.04,
            Fault::DiskPressure {
                bytes: u64::MAX / 2,
                duration_hours: 0.1,
            },
        )]);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &OnlineOptions::fast("critical-stall").with_fault_plan(plan),
        );
        assert!(report.stalls >= 1, "CRITICAL stalled the sim: {report:?}");
        assert!(report.completed, "resumed and finished: {report:?}");
        assert!(report.frames_rendered > 0);
    }

    #[test]
    fn injected_crash_and_outage_are_survived() {
        let site = Site::inter_department();
        let mut mission = Mission::aila().with_duration_hours(2.0).with_decimation(16);
        mission.decision_interval_hours = 0.25;
        // Both faults land inside the ~0.135 modeled wall hours the
        // mission takes on the unified engine's modeled clock.
        let plan = FaultPlan::from_events(vec![
            (0.02, Fault::SimCrash),
            (
                0.05,
                Fault::ReceiverOutage {
                    duration_hours: 0.02,
                },
            ),
        ]);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &OnlineOptions::fast("crash-outage").with_fault_plan(plan),
        );
        assert!(report.completed, "{report:?}");
        assert_eq!(report.crashes, 1, "the crash was hit and recovered");
        assert_eq!(report.reconnects, 1, "the outage ended in a reconnect");
        assert!(
            report.frames_rendered > 0,
            "frames still flowed: {report:?}"
        );
    }

    #[test]
    fn greedy_pipeline_also_runs() {
        let site = Site::intra_country();
        let mission = Mission::aila().with_duration_hours(1.0).with_decimation(16);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::GreedyThreshold,
            &OnlineOptions::fast("greedy"),
        );
        assert!(report.completed);
        assert!(report.frames_written > 0);
    }

    #[test]
    fn durable_pipeline_survives_a_kill_and_resumes_from_disk() {
        let site = Site::inter_department();
        let mut mission = Mission::aila().with_duration_hours(2.0).with_decimation(16);
        mission.decision_interval_hours = 0.5;
        let state_dir = unique_dir("kill-resume");
        // The StaticBaseline mission finishes in ~0.047 modeled wall
        // hours; the kill must land mid-run, after the first checkpoints.
        let plan = FaultPlan::from_events(vec![(0.02, Fault::ProcessKill { at_hours: 0.02 })]);
        let options = OnlineOptions::fast("kill-resume")
            .with_fault_plan(plan)
            .with_durability(DurabilityOptions::new(&state_dir).with_checkpoint_every_min(20.0));
        let report = run_with_recovery(&site, &mission, AlgorithmKind::StaticBaseline, &options);
        assert!(report.completed, "{report:?}");
        assert_eq!(report.recoveries, 1, "exactly one kill→restart: {report:?}");
        assert!(report.journal_replays >= 1, "{report:?}");
        assert!(report.frames_written > 0);
        // Conservation across the incarnation boundary.
        crate::engine::assert_frame_conservation(&report);
        let _ = std::fs::remove_dir_all(&state_dir);
    }

    /// The acceptance drill: kill the pipeline mid-epoch, restart it from
    /// disk, and require the completed remote track to be byte-identical
    /// to a fault-free run's. StaticBaseline keeps the output interval
    /// constant so the two schedules are comparable; the durable pipeline
    /// must neither lose nor duplicate a single frame.
    #[test]
    #[ignore = "slower end-to-end recovery drill; run with -- --ignored recovery_"]
    fn recovery_track_is_byte_identical_to_the_fault_free_run() {
        let site = Site::inter_department();
        let mut mission = Mission::aila().with_duration_hours(3.0).with_decimation(16);
        mission.decision_interval_hours = 0.5;

        // Control: fault-free durable run.
        let control_dir = unique_dir("recovery-control");
        let control = run_online(
            &site,
            &mission,
            AlgorithmKind::StaticBaseline,
            &OnlineOptions::fast("recovery-control").with_durability(
                DurabilityOptions::new(&control_dir).with_checkpoint_every_min(30.0),
            ),
        );
        assert!(control.completed, "{control:?}");
        assert!(control.kill.is_none());

        // Treatment: same mission, killed mid-run (a frame in flight is
        // likely), restarted by the supervisor.
        let state_dir = unique_dir("recovery-treatment");
        let plan = FaultPlan::from_events(vec![(0.03, Fault::ProcessKill { at_hours: 0.03 })]);
        let treated = run_with_recovery(
            &site,
            &mission,
            AlgorithmKind::StaticBaseline,
            &OnlineOptions::fast("recovery-treatment")
                .with_fault_plan(plan)
                .with_durability(
                    DurabilityOptions::new(&state_dir).with_checkpoint_every_min(30.0),
                ),
        );
        assert!(treated.completed, "{treated:?}");
        assert_eq!(treated.recoveries, 1, "{treated:?}");
        assert!(treated.journal_replays >= 1);
        assert_eq!(
            treated.track.to_csv(),
            control.track.to_csv(),
            "recovered track must be byte-identical to the fault-free track"
        );
        crate::engine::assert_frame_conservation(&treated);
        let _ = std::fs::remove_dir_all(&control_dir);
        let _ = std::fs::remove_dir_all(&state_dir);
    }

    /// Kill + torn journal write + corrupt newest checkpoint, all at
    /// once: recovery truncates the torn tail, falls back past the bad
    /// checkpoint, and still finishes the mission with conservation
    /// intact.
    #[test]
    #[ignore = "slower end-to-end recovery drill; run with -- --ignored recovery_"]
    fn recovery_survives_torn_journal_and_corrupt_checkpoint() {
        let site = Site::inter_department();
        let mut mission = Mission::aila().with_duration_hours(2.5).with_decimation(16);
        mission.decision_interval_hours = 0.5;
        let state_dir = unique_dir("recovery-torn");
        let plan = FaultPlan::from_events(vec![
            (0.012, Fault::TornWrite),
            (0.014, Fault::CorruptCheckpoint),
            (0.016, Fault::ProcessKill { at_hours: 0.016 }),
        ]);
        let report = run_with_recovery(
            &site,
            &mission,
            AlgorithmKind::StaticBaseline,
            &OnlineOptions::fast("recovery-torn")
                .with_fault_plan(plan)
                .with_durability(
                    DurabilityOptions::new(&state_dir).with_checkpoint_every_min(20.0),
                ),
        );
        assert!(report.completed, "{report:?}");
        assert_eq!(report.recoveries, 1, "{report:?}");
        crate::engine::assert_frame_conservation(&report);
        let _ = std::fs::remove_dir_all(&state_dir);
    }
}
