//! Online mode: the pipeline as live, communicating daemons.
//!
//! The DES orchestrator answers the paper's quantitative questions; this
//! module demonstrates (and end-to-end tests) the *architecture*: real
//! threads for the simulation process, the frame sender, the frame
//! receiver + visualization process, and the application manager — glued
//! together exactly as in the paper's Figure 2:
//!
//! - the manager writes the **application configuration file** (a real
//!   JSON file) every decision epoch,
//! - the simulation process **polls that file**, stalls on CRITICAL, and
//!   applies new configurations,
//! - frames are real encoded [`ncdf`] datasets moving through a bounded
//!   channel standing in for the wide-area link, throttled to the modeled
//!   bandwidth,
//! - the receiver decodes frames and feeds the visualization (eye
//!   tracking via [`viz::TrackLog`]).
//!
//! Modeled wall time is compressed: `time_scale` real seconds per modeled
//! second, so a multi-hour experiment plays out in real milliseconds
//! while every component genuinely runs concurrently.

use crate::config::ApplicationConfig;
use crate::decision::{AlgorithmKind, DecisionInputs, CRITICAL_FREE_PERCENT};
use crate::fault::{Fault, FaultPlan};
use cyclone::{Mission, Site};
use parking_lot::Mutex;
use resources::{Disk, FrameStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use viz::TrackLog;
use wrf::WrfModel;

/// Encoded frame payloads awaiting shipment, keyed by sim-minutes.
type PayloadTable = Arc<Mutex<Vec<(f64, Vec<u8>)>>>;

/// Options for an online run.
#[derive(Debug, Clone)]
pub struct OnlineOptions {
    /// Real seconds slept per modeled wall second (e.g. `2e-5` runs a
    /// modeled hour in 72 ms).
    pub time_scale: f64,
    /// Where the application configuration file lives.
    pub config_path: PathBuf,
    /// Capacity of the (scaled-down) simulation-site disk, bytes. Online
    /// frames are the decimated model's actual encodings, so the disk is
    /// sized in frame multiples rather than Table IV gigabytes.
    pub disk_capacity: u64,
    /// Modeled link bandwidth, bytes per modeled second.
    pub bandwidth_bps: f64,
    /// Scripted faults, fired by a live injector thread at their modeled
    /// wall times (same vocabulary as the DES orchestrator).
    pub fault_plan: FaultPlan,
}

impl OnlineOptions {
    /// Fast defaults for demos and tests: unique temp config file, a disk
    /// that holds roughly 12 frames, and a link that moves one frame in a
    /// couple of modeled minutes.
    pub fn fast(tag: &str) -> Self {
        OnlineOptions {
            time_scale: 2e-5,
            config_path: std::env::temp_dir()
                .join(format!("adaptive-online-{tag}-{}.json", std::process::id())),
            disk_capacity: 40_000_000,
            bandwidth_bps: 30_000.0,
            fault_plan: FaultPlan::new(),
        }
    }

    /// Builder: scripted faults.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }
}

/// What an online run observed.
#[derive(Debug)]
pub struct OnlineReport {
    /// Modeled simulated minutes reached by the simulation thread.
    pub sim_minutes: f64,
    /// Frames written to the (virtual) simulation-site disk.
    pub frames_written: u64,
    /// Frames that crossed the link.
    pub frames_shipped: u64,
    /// Frames decoded and visualized at the remote end.
    pub frames_rendered: u64,
    /// Decision epochs the manager ran.
    pub decisions: u64,
    /// Stall episodes observed by the simulation thread.
    pub stalls: u64,
    /// The cyclone track accumulated by the visualization process.
    pub track: TrackLog,
    /// True when the mission duration was fully simulated.
    pub completed: bool,
    /// Injected simulation crashes the process recovered from.
    pub crashes: u64,
    /// Receiver outages the transport recovered from (sender reconnects).
    pub reconnects: u64,
}

/// Run the live pipeline for `mission` on `site`'s characteristics.
pub fn run_online(
    site: &Site,
    mission: &Mission,
    algorithm: AlgorithmKind,
    options: &OnlineOptions,
) -> OnlineReport {
    let store = Arc::new(Mutex::new(FrameStore::new(Disk::new(
        options.disk_capacity,
    ))));
    // Live fault state, shared between the injector and the daemons: the
    // link's current degradation factor, whether the receiver host is
    // reachable, and a pending simulation-process crash.
    let link_factor = Arc::new(Mutex::new(1.0f64));
    let receiver_down = Arc::new(AtomicBool::new(false));
    let crash_pending = Arc::new(AtomicBool::new(false));
    // Encoded frame payloads awaiting shipment, keyed by sim-minutes. A
    // real deployment keeps these on the disk the FrameStore models; here
    // the store handles byte accounting and this side table the contents.
    let payloads: PayloadTable = Arc::new(Mutex::new(Vec::new()));
    let done = Arc::new(AtomicBool::new(false));
    // The "network": a rendezvous channel carrying encoded frames; the
    // sender throttles itself to the modeled bandwidth before sending.
    let (frame_tx, frame_rx) = crossbeam::channel::bounded::<(u64, f64, Vec<u8>)>(1);

    let initial = ApplicationConfig::initial(
        site.cluster.max_cores,
        mission.min_output_interval_min,
        mission.model.resolution_km,
    );
    initial
        .write_file(&options.config_path)
        .expect("config file is writable");

    let scale = options.time_scale;
    let nap = |modeled_secs: f64| {
        std::thread::sleep(Duration::from_secs_f64((modeled_secs * scale).min(0.25)));
    };

    let mut frames_written = 0u64;
    let mut frames_shipped = 0u64;
    let mut frames_rendered = 0u64;
    let mut decisions = 0u64;
    let mut stalls = 0u64;
    let mut sim_minutes = 0.0f64;
    let mut completed = false;
    let mut track = TrackLog::new();
    let mut crashes = 0u64;
    let mut reconnects = 0u64;

    crossbeam::thread::scope(|s| {
        // --- Simulation process -------------------------------------
        let sim_store = Arc::clone(&store);
        let sim_payloads = Arc::clone(&payloads);
        let sim_done = Arc::clone(&done);
        let sim_cfg_path = options.config_path.clone();
        let sim_crash = Arc::clone(&crash_pending);
        let sim = s.spawn(move |_| {
            let mut model = WrfModel::new(mission.model).expect("valid mission model");
            let mut next_output = mission.min_output_interval_min;
            let mut stalls = 0u64;
            let mut written = 0u64;
            let mut crashes = 0u64;
            let mut was_stalled = false;
            while model.sim_minutes() < mission.duration_minutes() {
                if sim_crash.swap(false, Ordering::SeqCst) {
                    // The process died; the job handler relaunches it from
                    // the last checkpoint (restart overhead plus a requeue
                    // penalty, compressed to a nap). Simulated state is
                    // checkpointed, so no progress is lost — only time.
                    crashes += 1;
                    nap(3.0 * site.cluster.restart_overhead_secs);
                    continue;
                }
                let cfg = ApplicationConfig::read_file(&sim_cfg_path)
                    .expect("manager keeps the file valid");
                if cfg.critical {
                    if !was_stalled {
                        stalls += 1;
                        was_stalled = true;
                    }
                    nap(300.0);
                    continue;
                }
                was_stalled = false;
                // Apply schedule-driven resolution changes (the job
                // handler's stop/restart, compressed to a nap).
                let p = model.min_pressure_hpa();
                let res = mission.schedule.resolution_for(p);
                if (res - model.config().resolution_km).abs() > 1e-9 {
                    nap(site.cluster.restart_overhead_secs);
                    model.set_resolution(res).expect("schedule resolution");
                }
                if mission.schedule.nest_active(p) && !model.has_nest() {
                    model.spawn_nest();
                }

                model.advance_steps(1, 1).expect("finite integration");
                // Modeled compute time for this step at cfg.num_procs.
                let work = mission.work_points(res, model.has_nest());
                let t = site.cluster.scaling.predict(cfg.num_procs as f64, work);
                nap(t);

                if model.sim_minutes() + 1e-9 >= next_output {
                    let ds = model.frame();
                    let bytes = ds.to_bytes().to_vec();
                    let stored = sim_store
                        .lock()
                        .store(model.sim_minutes(), bytes.len() as u64)
                        .is_ok();
                    if stored {
                        written += 1;
                        next_output = model.sim_minutes() + cfg.output_interval_min;
                        // Park the payload where the sender finds it.
                        sim_payloads.lock().push((model.sim_minutes(), bytes));
                    }
                    // On failure the frame is dropped; CRITICAL (set by
                    // the manager) throttles us before this is common.
                }
            }
            sim_done.store(true, Ordering::SeqCst);
            (model.sim_minutes(), written, stalls, crashes)
        });

        // --- Frame sender daemon ------------------------------------
        let send_store = Arc::clone(&store);
        let send_payloads = Arc::clone(&payloads);
        let send_done = Arc::clone(&done);
        let send_link = Arc::clone(&link_factor);
        let send_down = Arc::clone(&receiver_down);
        let bw = options.bandwidth_bps;
        let sender = s.spawn(move |_| {
            let mut shipped = 0u64;
            loop {
                if send_down.load(Ordering::SeqCst) {
                    // Receiver unreachable: store-and-forward. Frames stay
                    // on the simulation-site disk; the sender retries until
                    // the injector restores the host.
                    nap(300.0);
                    continue;
                }
                let meta = send_store.lock().begin_transfer();
                match meta {
                    Some(meta) => {
                        let factor = (*send_link.lock()).max(1e-9);
                        nap(meta.bytes as f64 / (bw * factor));
                        let payload = {
                            let mut p = send_payloads.lock();
                            let idx = p
                                .iter()
                                .position(|(t, _)| (*t - meta.sim_minutes).abs() < 1e-9);
                            idx.map(|i| p.remove(i))
                        };
                        send_store
                            .lock()
                            .complete_transfer(meta.id)
                            .expect("we began it");
                        if let Some((t, bytes)) = payload {
                            if frame_tx.send((meta.id, t, bytes)).is_err() {
                                break; // receiver gone
                            }
                        }
                        shipped += 1;
                    }
                    None => {
                        if send_done.load(Ordering::SeqCst) {
                            break;
                        }
                        nap(60.0);
                    }
                }
            }
            drop(frame_tx);
            shipped
        });

        // --- Frame receiver + visualization process -----------------
        let viz = s.spawn(move |_| {
            let mut track = TrackLog::new();
            let mut rendered = 0u64;
            while let Ok((_id, _t, bytes)) = frame_rx.recv() {
                if let Ok(ds) = ncdf::Dataset::from_bytes(&bytes) {
                    track.ingest(&ds);
                    rendered += 1;
                }
            }
            (track, rendered)
        });

        // --- Application manager ------------------------------------
        let mgr_store = Arc::clone(&store);
        let mgr_done = Arc::clone(&done);
        let mgr_cfg_path = options.config_path.clone();
        let mgr_link = Arc::clone(&link_factor);
        let mgr_down = Arc::clone(&receiver_down);
        let manager = s.spawn(move |_| {
            let mut algo = algorithm.build();
            let mut epochs = 0u64;
            while !mgr_done.load(Ordering::SeqCst) {
                nap(mission.decision_interval_hours * 3600.0);
                let (free_pct, free_bytes) = {
                    let st = mgr_store.lock();
                    (st.disk().free_percent(), st.disk().free())
                };
                let current = ApplicationConfig::read_file(&mgr_cfg_path)
                    .expect("file stays valid");
                let table = site.proc_table(mission, current.resolution_km, current.nest_active);
                // Online frames are real encodings of the decimated grid;
                // size O accordingly from a representative frame.
                let frame_bytes = (options.disk_capacity / 12).max(1);
                // The probe's view of the link: degraded by faults, and
                // effectively dead while the receiver host is down — the
                // decision algorithm sees the outage as a bandwidth
                // collapse and widens the output interval rather than
                // letting frames be dropped.
                let observed_factor = if mgr_down.load(Ordering::SeqCst) {
                    1e-6
                } else {
                    (*mgr_link.lock()).max(1e-9)
                };
                let inputs = DecisionInputs {
                    free_disk_percent: free_pct,
                    free_disk_bytes: free_bytes,
                    disk_capacity_bytes: options.disk_capacity,
                    bandwidth_bps: options.bandwidth_bps * observed_factor,
                    frame_bytes,
                    io_secs_per_frame: site.cluster.io_time(frame_bytes),
                    proc_table: &table,
                    current: &current,
                    dt_sim_secs: mission.dt_secs(current.resolution_km),
                    min_oi_min: mission.min_output_interval_min,
                    max_oi_min: mission.max_output_interval_min,
                    horizon_secs: 12.0 * 3600.0,
                    };
                let (procs, oi) = algo.decide(&inputs);
                let next = ApplicationConfig {
                    num_procs: procs,
                    output_interval_min: oi,
                    resolution_km: current.resolution_km,
                    nest_active: current.nest_active,
                    critical: free_pct <= CRITICAL_FREE_PERCENT,
                };
                next.write_file(&mgr_cfg_path).expect("config writable");
                epochs += 1;
            }
            epochs
        });

        // --- Fault injector -----------------------------------------
        let inj_store = Arc::clone(&store);
        let inj_done = Arc::clone(&done);
        let inj_link = Arc::clone(&link_factor);
        let inj_down = Arc::clone(&receiver_down);
        let inj_crash = Arc::clone(&crash_pending);
        let mut plan = options.fault_plan.events.clone();
        plan.sort_by(|a, b| a.0.total_cmp(&b.0));
        let injector = s.spawn(move |_| {
            let mut reconnects = 0u64;
            let mut clock_hours = 0.0f64;
            for (at_hours, fault) in plan {
                nap((at_hours - clock_hours).max(0.0) * 3600.0);
                clock_hours = at_hours.max(clock_hours);
                if inj_done.load(Ordering::SeqCst) {
                    break;
                }
                match fault {
                    Fault::LinkDegradation { factor } => {
                        *inj_link.lock() = factor;
                    }
                    Fault::BandwidthFlap {
                        factor,
                        half_period_hours,
                        flips,
                    } => {
                        for flip in 0..flips {
                            let degraded = flip % 2 == 0;
                            *inj_link.lock() = if degraded { factor } else { 1.0 };
                            if flip + 1 < flips {
                                nap(half_period_hours.max(1e-3) * 3600.0);
                                clock_hours += half_period_hours;
                            }
                            if inj_done.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                    }
                    Fault::DiskPressure {
                        bytes,
                        duration_hours,
                    } => {
                        let got = inj_store.lock().seize_external(bytes);
                        nap(duration_hours.max(1e-3) * 3600.0);
                        clock_hours += duration_hours;
                        inj_store.lock().release_external(got);
                    }
                    Fault::ReceiverOutage { duration_hours } => {
                        inj_down.store(true, Ordering::SeqCst);
                        nap(duration_hours.max(1e-3) * 3600.0);
                        clock_hours += duration_hours;
                        inj_down.store(false, Ordering::SeqCst);
                        reconnects += 1;
                    }
                    Fault::SimCrash => {
                        inj_crash.store(true, Ordering::SeqCst);
                    }
                }
            }
            // Never leave a fault latched past the end of the plan: the
            // sender and simulation must be able to drain and finish.
            inj_down.store(false, Ordering::SeqCst);
            let held = inj_store.lock().external_bytes();
            if held > 0 {
                inj_store.lock().release_external(held);
            }
            reconnects
        });

        let (sim_min, written, sim_stalls, sim_crashes) =
            sim.join().expect("simulation thread");
        sim_minutes = sim_min;
        frames_written = written;
        stalls = sim_stalls;
        crashes = sim_crashes;
        completed = sim_minutes >= mission.duration_minutes();
        frames_shipped = sender.join().expect("sender thread");
        let (t, rendered) = viz.join().expect("viz thread");
        track = t;
        frames_rendered = rendered;
        decisions = manager.join().expect("manager thread");
        reconnects = injector.join().expect("injector thread");
    })
    .expect("pipeline thread panicked");

    std::fs::remove_file(&options.config_path).ok();

    OnlineReport {
        sim_minutes,
        frames_written,
        frames_shipped,
        frames_rendered,
        decisions,
        stalls,
        track,
        completed,
        crashes,
        reconnects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_pipeline_moves_real_frames_end_to_end() {
        let site = Site::inter_department();
        // Heavier decimation keeps encoded frames small and the test fast.
        let mission = Mission::aila()
            .with_duration_hours(2.0)
            .with_decimation(16);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &OnlineOptions::fast("e2e"),
        );
        assert!(report.completed, "mission finished: {report:?}");
        assert!(report.frames_written > 0);
        assert!(report.frames_rendered > 0);
        assert!(report.frames_rendered <= report.frames_written);
        // The remote visualization actually tracked the cyclone.
        assert!(!report.track.fixes().is_empty());
        let fix = report.track.fixes()[0];
        assert!((fix.lon - 88.0).abs() < 3.0);
    }

    #[test]
    fn disk_pressure_drives_the_critical_stall_path_end_to_end() {
        let site = Site::inter_department();
        let mut mission = Mission::aila()
            .with_duration_hours(3.0)
            .with_decimation(16);
        // Tighter epochs so the manager reacts within the fault window.
        mission.decision_interval_hours = 0.25;
        // An external writer seizes essentially the whole disk shortly
        // after start and holds it long enough for several decision
        // epochs: the manager must observe free disk below the CRITICAL
        // threshold and write CRITICAL into the configuration file, the
        // simulation process must stall on it, and once the space is
        // released the manager clears the flag and the simulation resumes
        // and completes the mission.
        let plan = FaultPlan::from_events(vec![(
            0.2,
            Fault::DiskPressure {
                bytes: u64::MAX / 2,
                duration_hours: 1.5,
            },
        )]);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &OnlineOptions::fast("critical-stall").with_fault_plan(plan),
        );
        assert!(report.stalls >= 1, "CRITICAL stalled the sim: {report:?}");
        assert!(report.completed, "resumed and finished: {report:?}");
        assert!(report.frames_rendered > 0);
    }

    #[test]
    fn injected_crash_and_outage_are_survived() {
        let site = Site::inter_department();
        let mut mission = Mission::aila()
            .with_duration_hours(2.0)
            .with_decimation(16);
        mission.decision_interval_hours = 0.25;
        let plan = FaultPlan::from_events(vec![
            (0.1, Fault::SimCrash),
            (0.3, Fault::ReceiverOutage { duration_hours: 0.5 }),
        ]);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &OnlineOptions::fast("crash-outage").with_fault_plan(plan),
        );
        assert!(report.completed, "{report:?}");
        assert_eq!(report.crashes, 1, "the crash was hit and recovered");
        assert_eq!(report.reconnects, 1, "the outage ended in a reconnect");
        assert!(report.frames_rendered > 0, "frames still flowed: {report:?}");
    }

    #[test]
    fn greedy_pipeline_also_runs() {
        let site = Site::intra_country();
        let mission = Mission::aila()
            .with_duration_hours(1.0)
            .with_decimation(16);
        let report = run_online(
            &site,
            &mission,
            AlgorithmKind::GreedyThreshold,
            &OnlineOptions::fast("greedy"),
        );
        assert!(report.completed);
        assert!(report.frames_written > 0);
    }
}
