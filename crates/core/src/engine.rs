//! One epoch engine for both execution modes.
//!
//! The paper's application manager runs a single adaptation loop —
//! observe disk and bandwidth, decide (processors, output interval),
//! simulate an epoch, emit frames, persist, advance — yet this repo used
//! to implement that loop twice: once on the DES clock
//! ([`crate::orchestrator`]) and once as live daemons
//! ([`crate::online`]). This module extracts the loop into one
//! [`EpochEngine`] state machine, parameterized by four environment
//! traits so the two drivers differ only in the trait impls they plug in:
//!
//! | Trait             | DES driver                 | Live driver                     |
//! |-------------------|----------------------------|---------------------------------|
//! | [`Clock`]         | [`VirtualClock`] (no-op)   | [`ScaledClock`] (scaled sleeps) |
//! | [`FrameTransport`]| [`ModeledTransport`]       | [`ChannelTransport`]            |
//! | [`Durability`]    | [`NoDurability`]           | [`JournalDurability`]           |
//! | [`FaultInjector`] | [`ModeledInjector`]        | [`LiveInjector`]                |
//!
//! (The parity harness uses a third transport, [`InProcessTransport`]:
//! real encoded frames and a real track, but no receiver thread.)
//!
//! The engine advances on the DES scheduler in *both* modes — the live
//! driver simply paces event deltas against the wall clock and moves real
//! encoded frames through a real receiver thread. One loop, one fault
//! model, one accounting structure ([`PipelineCounters`]) — so every
//! future change to the adaptation loop lands once.

use crate::config::ApplicationConfig;
use crate::decision::{AlgorithmKind, BindingConstraint, RESUME_FREE_PERCENT};
use crate::fault::{Fault, FaultPlan};
use crate::jobhandler::{JobHandler, SimProcessState};
use crate::manager::{ApplicationManager, EpochContext, ManagerState};
use crate::qos::{self, QosConfig, QosController, QosRung, QosSignals};
use crate::recovery::{self, CheckpointMeta, DurabilityOptions};
use crate::steering::{SteeringCommand, SteeringState};
use cyclone::{Mission, Site};
use des::{EventId, Scheduler, Series, SeriesSet, ShardPoll, SimTime};
use perfmodel::ProcTable;
use resources::{FrameStore, Network, SharedCores, WanQueue};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use viz::TrackLog;
use wrf::WrfModel;

// ---------------------------------------------------------------------
// Shared run configuration
// ---------------------------------------------------------------------

/// How many *real* integrator workers the physics runs on.
///
/// The manager's decided processor count (`num_procs`) is a *modeled*
/// quantity: it drives the performance law, the LP, and the paper's
/// figures, and stays meaningful on any host. This knob is the *real*
/// counterpart — the size of the persistent rank team
/// ([`wrf::WorkerPool`]) actually integrating the PDE. Bitwise
/// serial/parallel parity makes the two independent: following the
/// decision changes wall time, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysicsThreads {
    /// A fixed worker count, independent of the manager's decisions
    /// (1 = fully deterministic scheduling, plenty for decimated grids).
    Fixed(usize),
    /// Size the rank team to the manager's decided processor count each
    /// step — the paper's premise ("adding processors speeds up the
    /// simulation") made real. The team is clamped to the host's cores.
    FollowDecision,
}

impl Default for PhysicsThreads {
    fn default() -> Self {
        PhysicsThreads::Fixed(1)
    }
}

impl PhysicsThreads {
    /// Worker count to use given the manager's current decision.
    pub fn resolve(self, decided_procs: usize) -> usize {
        match self {
            PhysicsThreads::Fixed(n) => n.max(1),
            PhysicsThreads::FollowDecision => decided_procs.max(1),
        }
    }
}

/// Knobs shared by every pipeline driver (DES and live). One source of
/// defaults, so the drivers cannot drift apart.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Give up (as the paper's dotted lines do) after this much modeled
    /// wall time.
    pub wall_cap_hours: f64,
    /// Real integrator worker-team sizing (see [`PhysicsThreads`]).
    pub physics_threads: PhysicsThreads,
    /// Seed for the network-variability walk.
    pub seed: u64,
    /// Period of the stalled-disk re-check, wall seconds.
    pub stall_probe_secs: f64,
    /// Scripted resource faults, fired at their modeled wall times.
    pub fault_plan: FaultPlan,
    /// Crash-consistent durable state (`None` = volatile run). The DES
    /// driver models durability analytically and ignores this; the live
    /// driver journals and checkpoints under the given directory.
    pub durability: Option<DurabilityOptions>,
    /// Closed-loop degradation controller (`None` = ladder off: every
    /// frame ships at full resolution, exactly the pre-ladder pipeline).
    pub qos: Option<QosConfig>,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            wall_cap_hours: 120.0,
            physics_threads: PhysicsThreads::default(),
            seed: 42,
            stall_probe_secs: 600.0,
            fault_plan: FaultPlan::new(),
            durability: None,
            qos: None,
        }
    }
}

// ---------------------------------------------------------------------
// Shared accounting
// ---------------------------------------------------------------------

/// Every counter the pipeline maintains, identical across drivers.
///
/// Conservation identities (asserted by
/// [`assert_frame_conservation`]):
///
/// ```text
/// frames_emitted == frames_written + frames_dropped
/// frames_written == frames_shipped + frames_in_flight
/// frames_rendered <= frames_shipped
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineCounters {
    /// Frames whose parallel I/O completed (whether or not the disk then
    /// accepted them).
    pub frames_emitted: u64,
    /// Frames written to the simulation-site disk (ledger-cumulative
    /// across incarnations in durable mode).
    pub frames_written: u64,
    /// Frames whose transfer to the visualization site completed.
    pub frames_shipped: u64,
    /// Frames decoded and rendered at the visualization site.
    pub frames_rendered: u64,
    /// Frames dropped because the disk was completely full.
    pub frames_dropped: u64,
    /// Frames still on the simulation-site disk (pending or mid-transfer)
    /// when the run ended.
    pub frames_in_flight: u64,
    /// Frames that survived a process kill on the durable ledger and were
    /// requeued for shipment by recovery.
    pub frames_recovered: u64,
    /// Completed restarts (configuration/resolution changes).
    pub restarts: u64,
    /// Stall episodes.
    pub stalls: u64,
    /// Simulation-process crashes injected (each costs a checkpoint
    /// relaunch with a requeue penalty).
    pub crashes: u64,
    /// Sender reconnects after receiver outages.
    pub reconnects: u64,
    /// Frames replayed (pushed back to the queue and re-sent) after a
    /// lost connection.
    pub replays: u64,
    /// Sends abandoned because a sender's retry *wall-clock* budget
    /// ([`crate::resilience::BackoffPolicy::with_max_total_delay`]) ran
    /// out. Live socket transports surface a permanently dead receiver
    /// here in bounded time; the modeled transport parks frames during an
    /// outage instead of spinning a sender, so DES runs report 0.
    pub retry_budget_exhausted: u64,
    /// Decision epochs that ran under a badly degraded link (measured
    /// bandwidth below a quarter of the best seen) — the store-and-
    /// forward regime where the manager widens the output interval
    /// rather than dropping frames.
    pub degraded_epochs: u64,
    /// Whole-pipeline kill→recover cycles (the recovery supervisor
    /// rebuilding an incarnation from the journal and checkpoints).
    pub recoveries: u64,
    /// Write-ahead journal replays performed while recovering.
    pub journal_replays: u64,
    /// Steering commands applied during the run.
    pub steering_commands_applied: u64,
    /// Decision epochs the application manager ran (epoch zero included).
    pub decisions: u64,
    /// Degradation-ladder demotions performed by the QoS controller
    /// (0 when the ladder is off).
    pub qos_demotions: u64,
    /// Degradation-ladder promotions performed by the QoS controller.
    pub qos_promotions: u64,
    /// Deepest ladder rung ever reached (0 = stayed at full resolution).
    pub deepest_rung: u8,
    /// Lowest free-disk percentage ever observed.
    pub min_free_disk_pct: f64,
    /// Free-disk percentage at the end of the run.
    pub final_free_disk_pct: f64,
    /// Wall hours at the first stall, if the run ever stalled.
    pub first_stall_wall_hours: Option<f64>,
}

impl Default for PipelineCounters {
    fn default() -> Self {
        PipelineCounters {
            frames_emitted: 0,
            frames_written: 0,
            frames_shipped: 0,
            frames_rendered: 0,
            frames_dropped: 0,
            frames_in_flight: 0,
            frames_recovered: 0,
            restarts: 0,
            stalls: 0,
            crashes: 0,
            reconnects: 0,
            replays: 0,
            retry_budget_exhausted: 0,
            degraded_epochs: 0,
            recoveries: 0,
            journal_replays: 0,
            steering_commands_applied: 0,
            decisions: 0,
            qos_demotions: 0,
            qos_promotions: 0,
            deepest_rung: 0,
            min_free_disk_pct: 100.0,
            final_free_disk_pct: 100.0,
            first_stall_wall_hours: None,
        }
    }
}

/// Everything one engine run produces, shared by both drivers.
/// [`crate::orchestrator::RunOutcome`] and
/// [`crate::online::OnlineReport`] embed this and deref into it.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// True when the full mission was simulated before the wall cap.
    pub completed: bool,
    /// True when the run ended (capped) while stalled on disk space.
    pub ended_stalled: bool,
    /// Modeled wall-clock hours consumed (to completion or the cap).
    pub wall_hours: f64,
    /// Simulated minutes reached.
    pub sim_minutes: f64,
    /// The figure time series (`sim_progress`, `free_disk_pct`,
    /// `viz_progress`, `procs`, `output_interval`, `binding_constraint`).
    pub series: SeriesSet,
    /// The cyclone track accumulated at the visualization end (empty for
    /// the modeled transport, which ships byte counts, not frames).
    pub track: TrackLog,
    /// All counters.
    pub counters: PipelineCounters,
}

impl Deref for PipelineReport {
    type Target = PipelineCounters;
    fn deref(&self) -> &PipelineCounters {
        &self.counters
    }
}

impl DerefMut for PipelineReport {
    fn deref_mut(&mut self) -> &mut PipelineCounters {
        &mut self.counters
    }
}

impl PipelineReport {
    /// Average simulation rate over the run, simulated minutes per wall
    /// hour.
    pub fn sim_rate_min_per_hour(&self) -> f64 {
        if self.wall_hours > 0.0 {
            self.sim_minutes / self.wall_hours
        } else {
            0.0
        }
    }
}

/// Assert the engine-level frame-conservation identities. Works on any
/// report that derefs into [`PipelineCounters`] — both drivers' reports
/// satisfy it regardless of which fault plan ran.
#[track_caller]
pub fn assert_frame_conservation(c: &PipelineCounters) {
    assert_eq!(
        c.frames_emitted,
        c.frames_written + c.frames_dropped,
        "every emitted frame is written or dropped: {c:?}"
    );
    assert_eq!(
        c.frames_written,
        c.frames_shipped + c.frames_in_flight,
        "every written frame is shipped or still held: {c:?}"
    );
    assert!(
        c.frames_rendered <= c.frames_shipped,
        "nothing renders before it ships: {c:?}"
    );
}

/// How an incarnation died (set when a scripted [`Fault::ProcessKill`]
/// fired under a [`FaultInjector`] that halts), plus the storage damage
/// staged to land with it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KillEvent {
    /// Modeled wall hours into the run at which the kill fired.
    pub at_hours: f64,
    /// A [`Fault::TornWrite`] was staged: the supervisor tears the
    /// journal tail before restarting.
    pub torn_write: bool,
    /// A [`Fault::CorruptCheckpoint`] was staged: the supervisor flips
    /// bytes in the newest checkpoint before restarting.
    pub corrupt_checkpoint: bool,
}

/// Numeric code for a binding constraint so it fits a time series
/// (0 machine, 1 disk, 2 visualization, 3 infeasible).
pub fn binding_code(b: BindingConstraint) -> f64 {
    match b {
        BindingConstraint::MachineBound => 0.0,
        BindingConstraint::DiskBound => 1.0,
        BindingConstraint::VisualizationBound => 2.0,
        BindingConstraint::InfeasibleSafeCorner => 3.0,
    }
}

// ---------------------------------------------------------------------
// Environment traits
// ---------------------------------------------------------------------

/// How modeled time relates to real time.
pub trait Clock {
    /// Called once per event with the modeled seconds elapsed since the
    /// previous event; a live clock sleeps here, a virtual clock returns
    /// immediately.
    fn pace(&mut self, modeled_dt_secs: f64);
}

/// Pure virtual time: the whole run completes as fast as the host can
/// pop events.
pub struct VirtualClock;

impl Clock for VirtualClock {
    fn pace(&mut self, _modeled_dt_secs: f64) {}
}

/// Wall-clock pacing: sleep `scale` real seconds per modeled second
/// (capped per event). A non-positive scale degenerates to virtual time.
pub struct ScaledClock {
    /// Real seconds slept per modeled second (e.g. `2e-5` runs a modeled
    /// hour in 72 ms).
    pub scale: f64,
}

impl Clock for ScaledClock {
    fn pace(&mut self, modeled_dt_secs: f64) {
        if self.scale > 0.0 && modeled_dt_secs > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(
                (modeled_dt_secs * self.scale).min(0.25),
            ));
        }
    }
}

/// How frames leave the simulation site and reach the visualization end.
pub trait FrameTransport {
    /// Produce the frame that parallel I/O will write: returns the bytes
    /// that land on the simulation-site disk plus the encoded payload
    /// that will later cross the link (empty for a modeled transport).
    /// `rung` is the degradation rung the QoS controller has in force —
    /// [`QosRung::FullRes`] whenever the ladder is off.
    fn emit(
        &mut self,
        model: &WrfModel,
        sim_min: f64,
        modeled_bytes: u64,
        rung: QosRung,
    ) -> (u64, Vec<u8>);

    /// Frame size the decision algorithm should plan with. The modeled
    /// transport plans with Table-IV frame sizes; live transports plan
    /// with a representative real encoding so a scaled-down disk is sized
    /// in frame multiples.
    fn decision_frame_bytes(&self, modeled_bytes: u64) -> u64 {
        modeled_bytes
    }

    /// Park a committed frame's payload until the sender ships it.
    fn park(&mut self, id: u64, sim_min: f64, payload: Vec<u8>);

    /// Deliver frame `id` to the visualization site (the transfer itself
    /// has already been timed by the engine). Returns true when the frame
    /// was freshly applied — i.e. a visualization render should follow —
    /// and false for duplicates below the receiver's watermark or ledger
    /// entries whose payload did not survive (settled shipped-and-lost).
    fn deliver(&mut self, id: u64, sim_min: f64) -> bool;

    /// The receiver's applied watermark (last applied frame id + 1), for
    /// checkpoint metadata.
    fn applied_watermark(&self) -> u64 {
        0
    }

    /// Tear the transport down and hand back the accumulated track.
    fn finish(&mut self) -> TrackLog;
}

/// The DES transport: frames are byte counts; shipping is fully modeled
/// and every delivered frame renders.
pub struct ModeledTransport;

impl FrameTransport for ModeledTransport {
    fn emit(
        &mut self,
        _model: &WrfModel,
        _sim_min: f64,
        modeled_bytes: u64,
        rung: QosRung,
    ) -> (u64, Vec<u8>) {
        // Scale the modeled frame by the rung's encoding ratio, exactly
        // as the real encodings shrink live payloads.
        let scaled = ((modeled_bytes as f64 * rung.byte_factor()).ceil() as u64).max(1);
        (scaled, Vec::new())
    }

    fn park(&mut self, _id: u64, _sim_min: f64, _payload: Vec<u8>) {}

    fn deliver(&mut self, _id: u64, _sim_min: f64) -> bool {
        true
    }

    fn finish(&mut self) -> TrackLog {
        TrackLog::new()
    }
}

/// Real encoded frames and a real track, applied in-process (no receiver
/// thread). Used by the DES↔live parity harness: it exercises the exact
/// live emission path while keeping the run single-threaded.
pub struct InProcessTransport {
    decision_bytes: u64,
    receiver_path: Option<PathBuf>,
    payloads: Vec<(u64, Vec<u8>)>,
    watermark: u64,
    track: TrackLog,
}

impl InProcessTransport {
    /// New transport planning decisions around `decision_bytes` per frame.
    pub fn new(decision_bytes: u64) -> Self {
        InProcessTransport {
            decision_bytes,
            receiver_path: None,
            payloads: Vec::new(),
            watermark: 0,
            track: TrackLog::new(),
        }
    }
}

fn pop_payload(payloads: &mut Vec<(u64, Vec<u8>)>, id: u64) -> Option<Vec<u8>> {
    let idx = payloads.iter().position(|(pid, _)| *pid == id)?;
    Some(payloads.remove(idx).1)
}

impl FrameTransport for InProcessTransport {
    fn emit(
        &mut self,
        model: &WrfModel,
        _sim_min: f64,
        _modeled_bytes: u64,
        rung: QosRung,
    ) -> (u64, Vec<u8>) {
        let bytes = qos::encode_frame(model, rung);
        (bytes.len() as u64, bytes)
    }

    fn decision_frame_bytes(&self, _modeled_bytes: u64) -> u64 {
        self.decision_bytes
    }

    fn park(&mut self, id: u64, _sim_min: f64, payload: Vec<u8>) {
        self.payloads.push((id, payload));
    }

    fn deliver(&mut self, id: u64, _sim_min: f64) -> bool {
        let Some(bytes) = pop_payload(&mut self.payloads, id) else {
            return false; // ledger entry without payload: shipped-and-lost
        };
        if id < self.watermark {
            return false; // duplicate below the watermark: replay idempotence
        }
        qos::ingest_tagged(&mut self.track, &bytes);
        self.watermark = id + 1;
        if let Some(path) = &self.receiver_path {
            let _ = recovery::save_receiver_state(path, self.watermark, &self.track);
        }
        true
    }

    fn applied_watermark(&self) -> u64 {
        self.watermark
    }

    fn finish(&mut self) -> TrackLog {
        std::mem::take(&mut self.track)
    }
}

/// The live transport: a bounded channel standing in for the wide-area
/// link, with a real receiver/visualization thread decoding frames,
/// persisting its durable state, and acking each frame after it is
/// applied — the engine settles a frame in the ledger only after the
/// remote end durably has it.
pub struct ChannelTransport {
    decision_bytes: u64,
    payloads: Vec<(u64, Vec<u8>)>,
    watermark: Arc<AtomicU64>,
    frame_tx: Option<crossbeam::channel::Sender<(u64, f64, Vec<u8>)>>,
    ack_rx: crossbeam::channel::Receiver<u64>,
    receiver: Option<std::thread::JoinHandle<TrackLog>>,
}

impl ChannelTransport {
    /// Spawn the receiver/visualization thread. `receiver_path` is where
    /// its durable state lives (`None` = volatile); `boot_watermark`,
    /// `boot_track`, and `payloads` resume a prior incarnation.
    pub fn new(
        decision_bytes: u64,
        receiver_path: Option<PathBuf>,
        boot_watermark: u64,
        boot_track: TrackLog,
        payloads: Vec<(u64, f64, Vec<u8>)>,
    ) -> Self {
        let watermark = Arc::new(AtomicU64::new(boot_watermark));
        let (frame_tx, frame_rx) = crossbeam::channel::bounded::<(u64, f64, Vec<u8>)>(1);
        let (ack_tx, ack_rx) = crossbeam::channel::bounded::<u64>(1);
        let thread_mark = Arc::clone(&watermark);
        let receiver = std::thread::spawn(move || {
            let mut track = boot_track;
            while let Ok((id, _t, bytes)) = frame_rx.recv() {
                let mark = thread_mark.load(Ordering::SeqCst);
                if id >= mark {
                    qos::ingest_tagged(&mut track, &bytes);
                    // Apply-then-persist-then-ack: the receiver's durable
                    // state always covers everything it has acknowledged.
                    thread_mark.store(id + 1, Ordering::SeqCst);
                    if let Some(path) = &receiver_path {
                        let _ = recovery::save_receiver_state(path, id + 1, &track);
                    }
                }
                // Duplicates (already below the watermark) are acked
                // without re-applying — replay idempotence.
                if ack_tx.send(id).is_err() {
                    break;
                }
            }
            track
        });
        ChannelTransport {
            decision_bytes,
            payloads: payloads.into_iter().map(|(id, _, b)| (id, b)).collect(),
            watermark,
            frame_tx: Some(frame_tx),
            ack_rx,
            receiver: Some(receiver),
        }
    }
}

impl FrameTransport for ChannelTransport {
    fn emit(
        &mut self,
        model: &WrfModel,
        _sim_min: f64,
        _modeled_bytes: u64,
        rung: QosRung,
    ) -> (u64, Vec<u8>) {
        let bytes = qos::encode_frame(model, rung);
        (bytes.len() as u64, bytes)
    }

    fn decision_frame_bytes(&self, _modeled_bytes: u64) -> u64 {
        self.decision_bytes
    }

    fn park(&mut self, id: u64, _sim_min: f64, payload: Vec<u8>) {
        self.payloads.push((id, payload));
    }

    fn deliver(&mut self, id: u64, sim_min: f64) -> bool {
        let Some(bytes) = pop_payload(&mut self.payloads, id) else {
            return false; // shipped-and-lost: settle without rendering
        };
        let mark_before = self.watermark.load(Ordering::SeqCst);
        let Some(tx) = &self.frame_tx else {
            return false;
        };
        if tx.send((id, sim_min, bytes)).is_err() {
            return false;
        }
        match self.ack_rx.recv() {
            Ok(acked) if acked == id => {}
            _ => return false,
        }
        id >= mark_before
    }

    fn applied_watermark(&self) -> u64 {
        self.watermark.load(Ordering::SeqCst)
    }

    fn finish(&mut self) -> TrackLog {
        self.frame_tx = None; // closes the channel; the receiver drains out
        match self.receiver.take() {
            Some(handle) => handle.join().unwrap_or_default(),
            None => TrackLog::new(),
        }
    }
}

/// One checkpoint's worth of state, cut by the engine when the
/// [`Durability`] layer says a checkpoint is due.
pub struct CheckpointCut {
    /// Simulated minutes at checkpoint time.
    pub sim_minutes: f64,
    /// Next scheduled output, simulated minutes.
    pub next_output_min: f64,
    /// Application configuration in force.
    pub config: ApplicationConfig,
    /// Manager epoch state.
    pub manager: ManagerState,
    /// Cumulative stall episodes.
    pub stalls: u64,
    /// Cumulative simulation crashes.
    pub crashes: u64,
    /// Receiver's applied watermark.
    pub applied_watermark: u64,
    /// Serialized model state.
    pub model_bytes: Vec<u8>,
}

/// How (and whether) the pipeline persists crash-consistent state.
pub trait Durability {
    /// Make frame `id`'s payload durable *before* its ledger record
    /// commits. Returning false vetoes the commit (the frame is dropped).
    fn persist_frame(&mut self, id: u64, payload: &[u8]) -> bool {
        let _ = (id, payload);
        true
    }

    /// Remove a persisted payload whose ledger commit failed after all.
    fn discard_frame(&mut self, id: u64) {
        let _ = id;
    }

    /// True when a checkpoint should be cut at this simulated minute.
    fn checkpoint_due(&self, sim_minutes: f64) -> bool {
        let _ = sim_minutes;
        false
    }

    /// Write one checkpoint bundle.
    fn write_checkpoint(&mut self, cut: &CheckpointCut) {
        let _ = cut;
    }

    /// The mission completed cleanly; retire the durable state.
    fn mark_completed(&mut self) {}
}

/// Volatile run: nothing is persisted.
pub struct NoDurability;

impl Durability for NoDurability {}

/// Journal + checkpoint durability rooted at a
/// [`DurabilityOptions::state_dir`] (see [`crate::recovery`] for the
/// on-disk layout). Payload files are fsynced before the journal record
/// that commits them; checkpoints are cut on a simulated-minute cadence.
pub struct JournalDurability {
    opts: DurabilityOptions,
    ckpt_seq: u64,
    next_ckpt: f64,
    every: f64,
}

impl JournalDurability {
    /// New durability layer resuming at `resume_sim_minutes` with
    /// `next_checkpoint_seq` as the next checkpoint file number.
    pub fn new(opts: DurabilityOptions, resume_sim_minutes: f64, next_checkpoint_seq: u64) -> Self {
        let every = opts.checkpoint_every_min;
        // First cadence boundary strictly ahead of the resume point.
        let next_ckpt = if every > 0.0 {
            (resume_sim_minutes / every).floor() * every + every
        } else {
            f64::INFINITY
        };
        JournalDurability {
            opts,
            ckpt_seq: next_checkpoint_seq,
            next_ckpt,
            every,
        }
    }
}

impl Durability for JournalDurability {
    fn persist_frame(&mut self, id: u64, payload: &[u8]) -> bool {
        // Durable order: payload file first (fsynced), then the journal
        // record that commits it — a Store record in the journal implies
        // its bytes are on disk.
        let path = recovery::frame_path(&self.opts.frames_dir(), id);
        wrf::checkpoint::write_snapshot_file(&path, payload).is_ok()
    }

    fn discard_frame(&mut self, id: u64) {
        let _ = std::fs::remove_file(recovery::frame_path(&self.opts.frames_dir(), id));
    }

    fn checkpoint_due(&self, sim_minutes: f64) -> bool {
        sim_minutes + 1e-9 >= self.next_ckpt
    }

    fn write_checkpoint(&mut self, cut: &CheckpointCut) {
        let meta = CheckpointMeta {
            sim_minutes: cut.sim_minutes,
            next_output_min: cut.next_output_min,
            config: cut.config.clone(),
            manager: cut.manager,
            stalls: cut.stalls,
            crashes: cut.crashes,
            applied_watermark: cut.applied_watermark,
        };
        let dir = self.opts.checkpoints_dir();
        if recovery::write_checkpoint(&dir, self.ckpt_seq, &meta, &cut.model_bytes).is_ok() {
            self.ckpt_seq += 1;
            recovery::prune_checkpoints(&dir, self.opts.keep_checkpoints);
        }
        self.next_ckpt += self.every;
    }

    fn mark_completed(&mut self) {
        recovery::mark_completed(&self.opts);
    }
}

impl<D: Durability> Durability for Option<D> {
    fn persist_frame(&mut self, id: u64, payload: &[u8]) -> bool {
        match self {
            Some(d) => d.persist_frame(id, payload),
            None => true,
        }
    }

    fn discard_frame(&mut self, id: u64) {
        if let Some(d) = self {
            d.discard_frame(id);
        }
    }

    fn checkpoint_due(&self, sim_minutes: f64) -> bool {
        match self {
            Some(d) => d.checkpoint_due(sim_minutes),
            None => false,
        }
    }

    fn write_checkpoint(&mut self, cut: &CheckpointCut) {
        if let Some(d) = self {
            d.write_checkpoint(cut);
        }
    }

    fn mark_completed(&mut self) {
        if let Some(d) = self {
            d.mark_completed();
        }
    }
}

/// What a [`Fault::ProcessKill`] does under this driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillAction {
    /// Model the whole kill→replay→relaunch cycle analytically inside
    /// the run (the DES driver).
    ModeledRecovery,
    /// Halt this incarnation dead and report a [`KillEvent`] for the
    /// recovery supervisor to act on (the live driver).
    HaltIncarnation,
}

/// How scripted faults that end a process are interpreted. All other
/// fault kinds behave identically across drivers and are handled by the
/// engine itself — this trait is the *only* driver-specific fault hook.
pub trait FaultInjector {
    /// What a whole-pipeline kill does under this driver.
    fn kill_action(&mut self) -> KillAction;
}

/// DES driver: kills are modeled analytically.
pub struct ModeledInjector;

impl FaultInjector for ModeledInjector {
    fn kill_action(&mut self) -> KillAction {
        KillAction::ModeledRecovery
    }
}

/// Live driver: kills halt the incarnation for the recovery supervisor.
pub struct LiveInjector;

impl FaultInjector for LiveInjector {
    fn kill_action(&mut self) -> KillAction {
        KillAction::HaltIncarnation
    }
}

// ---------------------------------------------------------------------
// Engine setup
// ---------------------------------------------------------------------

/// State carried into the engine when resuming a durable incarnation
/// (all `None`/empty on a cold start).
pub struct EngineBoot {
    /// Model to resume from (`None` = cold start from the mission config).
    pub model: Option<WrfModel>,
    /// Next scheduled output in simulated minutes (`None` = mission
    /// minimum).
    pub next_output_min: Option<f64>,
    /// Configuration to resume with (`None` = run epoch zero).
    pub config: Option<ApplicationConfig>,
    /// Manager epoch state to resume from.
    pub manager: Option<ManagerState>,
    /// Outputs at or before this simulated minute are already durable:
    /// the resuming engine advances its output schedule through them
    /// without re-storing (re-simulation is bit-exact).
    pub skip_outputs_through: f64,
    /// Cumulative stall episodes from prior incarnations.
    pub base_stalls: u64,
    /// Cumulative crashes from prior incarnations.
    pub base_crashes: u64,
}

impl Default for EngineBoot {
    fn default() -> Self {
        EngineBoot {
            model: None,
            next_output_min: None,
            config: None,
            manager: None,
            skip_outputs_through: f64::NEG_INFINITY,
            base_stalls: 0,
            base_crashes: 0,
        }
    }
}

/// The resource models one fleet's missions contend for. Each mission
/// touches these only inside shared-resource events, which the fleet
/// coordinator executes in global `(time, shard)` order — so although the
/// mutexes admit any interleaving, the *sequence* of mutations is a pure
/// function of the mission set (see `crates/des/src/shard.rs`).
pub struct FleetShared {
    /// The cluster's core pool, re-partitioned at decision epochs.
    pub cluster: Mutex<SharedCores>,
    /// The shared sim→vis WAN link (one transfer at a time, FIFO grants).
    pub wan: Mutex<WanQueue>,
}

/// One mission's handle into its fleet's shared resources.
#[derive(Clone)]
pub struct FleetHandle {
    /// The shared resource models, one set per fleet.
    pub shared: Arc<FleetShared>,
    /// This mission's shard id (its member index in the shared models).
    pub shard: usize,
}

impl FleetHandle {
    fn wan(&self) -> std::sync::MutexGuard<'_, WanQueue> {
        self.shared.wan.lock().expect("fleet wan lock")
    }

    fn cluster(&self) -> std::sync::MutexGuard<'_, SharedCores> {
        self.shared.cluster.lock().expect("fleet cluster lock")
    }
}

/// Everything a driver hands the engine besides the environment traits.
pub struct EngineSetup {
    /// Site characteristics (cluster, link, disk, render cost).
    pub site: Site,
    /// The mission to simulate.
    pub mission: Mission,
    /// Decision algorithm for the application manager.
    pub algorithm: AlgorithmKind,
    /// Shared run knobs (wall cap, seed, fault plan, ...).
    pub options: PipelineOptions,
    /// Frame ledger over the simulation-site disk (journal-backed when
    /// resuming a durable incarnation).
    pub store: FrameStore,
    /// The sim→vis link model the sender and bandwidth probe observe.
    pub net: Network,
    /// Scripted steering commands, fired at modeled wall hours.
    pub steering_script: Vec<(f64, SteeringCommand)>,
    /// Where to publish the application configuration file after every
    /// decision (`None` = keep it in memory only).
    pub publish_config: Option<PathBuf>,
    /// Keep running after mission completion until every written frame
    /// has shipped and rendered (the live drivers drain; the DES driver
    /// halts where the paper's figures end).
    pub drain_on_complete: bool,
    /// Resume state from a prior incarnation.
    pub boot: EngineBoot,
    /// Fleet mode: this mission shares the cluster core pool and the WAN
    /// link with its fleet-mates (`None` = solo run, resources private).
    pub fleet: Option<FleetHandle>,
}

/// What [`EpochEngine::run`] returns.
pub struct EngineOutput {
    /// The shared report.
    pub report: PipelineReport,
    /// Set when a scripted kill halted this incarnation.
    pub kill: Option<KillEvent>,
}

/// The unified pipeline engine: one epoch-driven state machine
/// (observe → decide → simulate-epoch → emit/transport → persist →
/// advance) advancing on a DES scheduler, parameterized by the
/// environment traits.
pub struct EpochEngine<C, T, D, F> {
    setup: EngineSetup,
    clock: C,
    transport: T,
    durability: D,
    injector: F,
}

// ---------------------------------------------------------------------
// The state machine
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Ev {
    /// One solve step finished.
    Step,
    /// One frame finished writing through parallel I/O.
    FrameDone {
        sim_min: f64,
        bytes: u64,
        payload: Vec<u8>,
    },
    /// One frame finished crossing the network.
    TransferDone { id: u64 },
    /// Fleet mode: the sender asks for the shared WAN link. Solo runs
    /// never schedule this — their `kick_sender` starts the transfer
    /// inline, exactly as before the fleet split.
    LinkRequest,
    /// The visualization process finished rendering a frame.
    RenderDone { sim_min: f64 },
    /// Application-manager decision epoch.
    Decision,
    /// Checkpoint-restart finished; the new configuration is live.
    RestartDone,
    /// Periodic re-check while stalled with a full disk.
    StallProbe,
    /// A scripted steering command from the visualization end arrives.
    Steering(SteeringCommand),
    /// A scripted resource fault strikes.
    Fault(Fault),
    /// A receiver outage ends; the resilient sender reconnects and
    /// replays whatever is pending.
    ReceiverRestored,
    /// An external writer releases seized disk space.
    ExternalRelease { bytes: u64 },
}

struct World<T, D, F> {
    site: Site,
    mission: Mission,
    options: PipelineOptions,
    manager: ApplicationManager,
    handler: JobHandler,
    model: WrfModel,
    store: FrameStore,
    net: Network,
    transport: T,
    durability: D,
    injector: F,
    config: ApplicationConfig,
    pending_config: Option<ApplicationConfig>,
    next_output_min: f64,
    io_pending: bool,
    sender_busy: bool,
    step_event: Option<EventId>,
    /// The in-flight transfer's (event, frame id), so a receiver outage
    /// can cancel it and push the frame back to pending.
    transfer_event: Option<(EventId, u64)>,
    /// Fleet mode: shared-resource handle (`None` = solo run).
    fleet: Option<FleetHandle>,
    /// Fleet mode: the sender is queued for the shared WAN link (its
    /// grant will arrive through the per-member mailbox).
    wan_waiting: bool,
    /// Nesting depth of overlapping receiver outages (0 = reachable).
    outage_depth: u32,
    /// Link degradation the faults intend, independent of outages (the
    /// value restored when the receiver comes back).
    link_factor: f64,
    completed: bool,
    drain: bool,
    /// Processor-table cache keyed by (scaling-fit fingerprint,
    /// resolution bits, nest): a perfmodel re-fit changes the fingerprint,
    /// so stale tables (and the ∂t/∂p decisions read off them) can never
    /// be served against new coefficients.
    tables: HashMap<(u64, u64, bool), ProcTable>,
    publish_config: Option<PathBuf>,
    /// Closed-loop degradation controller (`None` = ladder off).
    qos: Option<QosController>,
    /// The rung currently in force ([`QosRung::FullRes`] when off).
    rung: QosRung,
    // Series.
    sim_progress: Series,
    free_disk: Series,
    viz_progress: Series,
    procs_series: Series,
    oi_series: Series,
    binding_series: Series,
    qos_rung_series: Series,
    qos_pressure_series: Series,
    // Counters.
    frames_emitted: u64,
    frames_dropped: u64,
    frames_rendered: u64,
    renders_outstanding: u32,
    min_free_pct: f64,
    first_stall: Option<f64>,
    steering: SteeringState,
    reconnects: u64,
    replays: u64,
    crashes: u64,
    recoveries: u64,
    journal_replays: u64,
    frames_recovered: u64,
    base_stalls: u64,
    base_crashes: u64,
    /// Outputs at or before this simulated minute are already durable.
    skip_outputs_through: f64,
    /// A [`Fault::TornWrite`] is staged to land with the next kill.
    torn_staged: bool,
    /// A [`Fault::CorruptCheckpoint`] is staged to land with the next
    /// kill (recovery then falls back to an older checkpoint, which
    /// costs extra re-simulation).
    corrupt_staged: bool,
    /// Set when a scripted kill halted this incarnation.
    kill: Option<KillEvent>,
}

impl<T: FrameTransport, D: Durability, F: FaultInjector> World<T, D, F> {
    fn proc_table(&mut self, res_km: f64, nest: bool) -> &ProcTable {
        let (site, mission) = (&self.site, &self.mission);
        let key = (site.cluster.scaling.fingerprint(), res_km.to_bits(), nest);
        self.tables
            .entry(key)
            .or_insert_with(|| site.proc_table(mission, res_km, nest))
    }

    /// Wall seconds per solve step under the active configuration.
    fn step_wall_secs(&mut self) -> f64 {
        let (res, nest, procs) = (
            self.config.resolution_km,
            self.config.nest_active,
            self.config.num_procs,
        );
        let table = self.proc_table(res, nest);
        table
            .time_for(procs)
            .unwrap_or_else(|| table.procs_closest_to_time(f64::INFINITY).1)
    }

    fn frame_bytes(&self) -> u64 {
        self.mission
            .frame_bytes(self.config.resolution_km, self.config.nest_active)
    }

    /// Estimated remaining wall time (the LP's overflow horizon `n`).
    ///
    /// Deliberately pessimistic: the pressure schedule will refine the
    /// grid toward its finest stage, where steps are smaller *and* each
    /// costs more, so the remaining mission is costed at the finest
    /// resolution with the nest active. A horizon estimated from the
    /// current (coarse) stage would let the early epochs write far too
    /// eagerly — the greedy algorithm's exact failure mode.
    fn horizon_secs(&mut self) -> f64 {
        let remaining_min = (self.mission.duration_minutes() - self.model.sim_minutes()).max(0.0);
        let finest = self.mission.schedule.finest_km();
        let dt = self.mission.dt_secs(finest);
        let steps = remaining_min * 60.0 / dt;
        // Cost the horizon at *maximum* cores, independent of the current
        // allocation: if it tracked the chosen processor count, slowing
        // down would lengthen the horizon, which tightens the overflow
        // constraint, which slows down further — a death spiral.
        let t = self.proc_table(finest, true).min_time();
        (steps * t).max(self.mission.decision_interval_hours * 3600.0)
    }

    fn record_disk(&mut self, now: SimTime) {
        let pct = self.store.disk().free_percent();
        self.min_free_pct = self.min_free_pct.min(pct);
        self.free_disk.record(now, pct);
    }

    fn record_config(&mut self, now: SimTime) {
        self.procs_series.record(now, self.config.num_procs as f64);
        self.oi_series.record(now, self.config.output_interval_min);
    }

    fn record_sim(&mut self, now: SimTime) {
        self.sim_progress.record(now, self.model.sim_minutes());
    }

    /// Publish the application configuration file, when this driver
    /// carries one (the live mode's real JSON file on disk).
    fn publish_config_file(&self) {
        if let Some(path) = &self.publish_config {
            self.config
                .write_file(path)
                .expect("application configuration file is writable");
        }
    }

    /// Remember when the first stall happened (for the non-adaptive-
    /// baseline comparison: "stalls much earlier").
    fn note_stall(&mut self, now: SimTime) {
        if self.first_stall.is_none() {
            self.first_stall = Some(now.as_hours());
        }
    }

    /// Start the next transfer if the link is free, the receiver is
    /// reachable, and frames are waiting. The ladder's bottom rung
    /// (store-and-forward pause) holds the sender entirely: frames keep
    /// accumulating on the durable store and ship when the controller
    /// promotes again — or when the mission completes and drains.
    fn kick_sender(&mut self, sched: &mut Scheduler<Ev>) {
        if self.sender_busy || self.outage_depth > 0 || !self.store.has_pending() {
            return;
        }
        if self.rung == QosRung::Pause && !self.completed {
            return;
        }
        if self.fleet.is_some() {
            // Fleet mode: the WAN is shared, so acquisition goes through
            // the coordinator-ordered LinkRequest event instead of
            // starting the transfer inline. `sender_busy` holds the send
            // slot until the request resolves.
            self.sender_busy = true;
            sched.schedule_in(0.0, Ev::LinkRequest);
            return;
        }
        let meta = self.store.begin_transfer().expect("pending checked");
        self.net.step();
        let secs = self.net.transfer_time(meta.bytes);
        self.sender_busy = true;
        let id = sched.schedule_in(secs, Ev::TransferDone { id: meta.id });
        self.transfer_event = Some((id, meta.id));
    }

    /// Begin the pending frame's transfer with the link already in hand,
    /// completing `transfer_time` seconds after `at`. Fleet-mode only:
    /// `at` is the request instant (immediate acquisition) or the WAN
    /// grant instant, which never precedes this shard's clock.
    fn start_transfer_at(&mut self, at: SimTime, sched: &mut Scheduler<Ev>) {
        let meta = self.store.begin_transfer().expect("pending checked");
        self.net.step();
        let secs = self.net.transfer_time(meta.bytes);
        let id = sched.schedule_at(at + secs, Ev::TransferDone { id: meta.id });
        self.transfer_event = Some((id, meta.id));
    }

    /// Fleet mode: hand the shared WAN link back, granting the earliest
    /// waiting fleet-mate (no-op solo).
    fn release_wan(&mut self, now: SimTime) {
        if let Some(fleet) = &self.fleet {
            fleet.wan().release(fleet.shard, now.as_secs());
        }
    }

    /// Fleet mode: withdraw a pending WAN wait (outage or kill struck
    /// while queued); an already-arrived grant is passed straight on.
    /// No-op solo or when not waiting.
    fn cancel_wan_wait(&mut self, now: SimTime) {
        if !self.wan_waiting {
            return;
        }
        let fleet = self.fleet.clone().expect("wan_waiting implies fleet mode");
        fleet.wan().cancel(fleet.shard, now.as_secs());
        self.wan_waiting = false;
        self.sender_busy = false;
    }

    /// Fleet mode: consume the WAN grant sitting in this shard's mailbox
    /// and start the transfer at the grant instant. The request's
    /// conditions are re-checked first — a Pause demotion (or, defensively,
    /// an outage) that landed while queued passes the link straight on
    /// instead of transferring.
    fn take_wan_grant(&mut self, sched: &mut Scheduler<Ev>) {
        let fleet = self.fleet.clone().expect("grant implies fleet mode");
        let g = fleet.wan().take_grant(fleet.shard);
        self.wan_waiting = false;
        if self.outage_depth > 0 || (self.rung == QosRung::Pause && !self.completed) {
            self.sender_busy = false;
            fleet.wan().release(fleet.shard, g);
            return;
        }
        let at = SimTime::from_secs(g);
        debug_assert!(at >= sched.now(), "WAN grant precedes the shard clock");
        self.start_transfer_at(at, sched);
    }

    /// Fleet mode: clamp a decided processor count to this mission's
    /// grant from the shared core pool (identity solo). The coordinator
    /// executes decision epochs in global `(time, shard)` order, so
    /// contention resolves identically on every run.
    fn clamp_shared_cores(&self, mut next: ApplicationConfig) -> ApplicationConfig {
        if let Some(fleet) = &self.fleet {
            next.num_procs = fleet.cluster().realloc(fleet.shard, next.num_procs);
        }
        next
    }

    /// Push the faults' intended link state onto the network model: a
    /// down receiver reads as an (effectively) dead link so the bandwidth
    /// probe and the decision algorithm see the outage through their
    /// ordinary observations.
    fn apply_link(&mut self) {
        let factor = if self.outage_depth > 0 {
            1e-6
        } else {
            self.link_factor
        };
        self.net.set_degradation(factor);
    }

    /// Schedule the next solve step.
    fn schedule_step(&mut self, sched: &mut Scheduler<Ev>) {
        debug_assert!(self.handler.is_running());
        debug_assert!(!self.io_pending);
        let t = self.step_wall_secs();
        self.step_event = Some(sched.schedule_in(t, Ev::Step));
    }

    fn cancel_step(&mut self, sched: &mut Scheduler<Ev>) {
        if let Some(id) = self.step_event.take() {
            sched.cancel(id);
        }
    }

    /// Begin a checkpoint-stop-restart with `next` as the target
    /// configuration.
    fn begin_restart(&mut self, next: ApplicationConfig, sched: &mut Scheduler<Ev>) {
        self.cancel_step(sched);
        self.handler.begin_restart();
        self.pending_config = Some(next);
        sched.schedule_in(self.site.cluster.restart_overhead_secs, Ev::RestartDone);
    }

    /// The pressure schedule's prescription given the current state
    /// (with coarsening hysteresis — see
    /// [`cyclone::ResolutionSchedule::apply_with_hysteresis`]).
    fn scheduled_resolution(&self) -> (f64, bool) {
        let p = self.model.min_pressure_hpa();
        let scheduled = self.mission.schedule.apply_with_hysteresis(
            p,
            self.config.resolution_km,
            self.config.nest_active,
        );
        self.steering.effective_resolution(scheduled)
    }

    /// Cut a checkpoint when the durability layer's cadence says one is
    /// due. Called wherever the output schedule is settled (end of a
    /// solve step or a completed frame write).
    fn maybe_checkpoint(&mut self) {
        if !self.durability.checkpoint_due(self.model.sim_minutes()) {
            return;
        }
        let cut = CheckpointCut {
            sim_minutes: self.model.sim_minutes(),
            next_output_min: self.next_output_min,
            config: self.config.clone(),
            manager: self.manager.state(),
            stalls: self.base_stalls + self.handler.stalls() as u64,
            crashes: self.base_crashes + self.crashes,
            applied_watermark: self.transport.applied_watermark(),
            model_bytes: self.model.checkpoint(),
        };
        self.durability.write_checkpoint(&cut);
    }
}

impl<C, T, D, F> EpochEngine<C, T, D, F>
where
    C: Clock,
    T: FrameTransport,
    D: Durability,
    F: FaultInjector,
{
    /// Assemble an engine from its setup and environment impls.
    pub fn new(setup: EngineSetup, clock: C, transport: T, durability: D, injector: F) -> Self {
        EpochEngine {
            setup,
            clock,
            transport,
            durability,
            injector,
        }
    }

    /// Run the pipeline to completion, the wall cap, or a halting kill.
    /// Exactly [`Self::start`], [`RunningEngine::step_one`] to a halt,
    /// then [`RunningEngine::finish`] — the fleet layer drives the same
    /// three pieces, one event at a time, under its coordinator.
    pub fn run(self) -> EngineOutput {
        let mut running = self.start();
        while running.step_one() {}
        running.finish()
    }

    /// Build the world and seed the event queue, handing back a
    /// [`RunningEngine`] ready to be stepped.
    pub fn start(self) -> RunningEngine<C, T, D, F> {
        let EpochEngine {
            setup,
            clock,
            transport,
            durability,
            injector,
        } = self;
        let EngineSetup {
            site,
            mission,
            algorithm,
            options,
            store,
            net,
            steering_script,
            publish_config,
            drain_on_complete,
            boot,
            fleet,
        } = setup;

        let cold_config = boot.config.is_none();
        let model = match boot.model {
            Some(m) => m,
            None => WrfModel::new(mission.model).expect("mission model config is valid"),
        };
        let manager = match boot.manager {
            Some(state) => ApplicationManager::restore(algorithm, state),
            None => ApplicationManager::new(algorithm),
        };
        let config = boot.config.unwrap_or_else(|| {
            ApplicationConfig::initial(
                site.cluster.max_cores,
                mission.min_output_interval_min,
                mission.model.resolution_km,
            )
        });
        let next_output_min = boot
            .next_output_min
            .unwrap_or(mission.min_output_interval_min);
        let fault_script = options.fault_plan.events.clone();

        let mut world = World {
            manager,
            handler: JobHandler::new(),
            model,
            store,
            net,
            transport,
            durability,
            injector,
            config,
            pending_config: None,
            next_output_min,
            io_pending: false,
            sender_busy: false,
            step_event: None,
            transfer_event: None,
            fleet,
            wan_waiting: false,
            outage_depth: 0,
            link_factor: 1.0,
            completed: false,
            drain: drain_on_complete,
            tables: HashMap::new(),
            publish_config,
            qos: options.qos.clone().map(QosController::new),
            rung: QosRung::FullRes,
            sim_progress: Series::new("sim_progress"),
            free_disk: Series::new("free_disk_pct"),
            viz_progress: Series::new("viz_progress"),
            procs_series: Series::new("procs"),
            oi_series: Series::new("output_interval"),
            binding_series: Series::new("binding_constraint"),
            qos_rung_series: Series::new("qos_rung"),
            qos_pressure_series: Series::new("qos_pressure"),
            frames_emitted: 0,
            frames_dropped: 0,
            frames_rendered: 0,
            renders_outstanding: 0,
            min_free_pct: 100.0,
            first_stall: None,
            steering: SteeringState::new(),
            reconnects: 0,
            replays: 0,
            crashes: 0,
            recoveries: 0,
            journal_replays: 0,
            frames_recovered: 0,
            base_stalls: boot.base_stalls,
            base_crashes: boot.base_crashes,
            skip_outputs_through: boot.skip_outputs_through,
            torn_staged: false,
            corrupt_staged: false,
            kill: None,
            site,
            mission,
            options,
        };

        let mut sched: Scheduler<Ev> = match &world.fleet {
            Some(f) => Scheduler::for_shard(f.shard),
            None => Scheduler::new(),
        };
        for (wall_hours, cmd) in steering_script {
            sched.schedule_at(SimTime::from_hours(wall_hours.max(0.0)), Ev::Steering(cmd));
        }
        for (wall_hours, fault) in fault_script {
            sched.schedule_at(SimTime::from_hours(wall_hours.max(0.0)), Ev::Fault(fault));
        }
        // Epoch zero runs before the simulation starts (the optimization
        // method "adapts the frequency of output to the best possible
        // value ... from the beginning of the simulations"), with no
        // restart penalty — it *is* the starting configuration. A resumed
        // incarnation already has its configuration and skips it.
        if cold_config {
            initial_epoch(&mut world);
            world.next_output_min = world.config.output_interval_min;
        }
        world.publish_config_file();
        world.record_config(SimTime::ZERO);
        world.record_disk(SimTime::ZERO);
        world.record_sim(SimTime::ZERO);
        if world.config.critical {
            // Resumed into a CRITICAL stall: wait for space, as the dead
            // incarnation was doing.
            world.handler.stall();
            world.note_stall(SimTime::ZERO);
            sched.schedule_in(world.options.stall_probe_secs, Ev::StallProbe);
        } else {
            world.schedule_step(&mut sched);
        }
        // A resumed ledger may already hold pending frames; start
        // shipping them immediately (no-op on a cold start).
        world.kick_sender(&mut sched);
        sched.schedule_at(
            SimTime::from_hours(world.mission.decision_interval_hours),
            Ev::Decision,
        );

        let wall_cap = SimTime::from_hours(world.options.wall_cap_hours);
        RunningEngine {
            clock,
            world,
            sched,
            wall_cap,
            last_secs: 0.0,
            halted: false,
            released: false,
        }
    }
}

/// An engine mid-run: the world plus its event queue and pacing state.
/// Produced by [`EpochEngine::start`]; stepped by [`Self::step_one`]
/// (solo) or by the fleet coordinator through [`Self::fleet_poll`] /
/// [`Self::fleet_step`]; torn down by [`Self::finish`].
pub struct RunningEngine<C, T, D, F> {
    clock: C,
    world: World<T, D, F>,
    sched: Scheduler<Ev>,
    wall_cap: SimTime,
    last_secs: f64,
    /// The event loop is over (queue drained, wall cap passed, a halting
    /// event, or the drain condition satisfied).
    halted: bool,
    /// Fleet mode: the shared resources have been handed back.
    released: bool,
}

impl<C, T, D, F> RunningEngine<C, T, D, F>
where
    C: Clock,
    T: FrameTransport,
    D: Durability,
    F: FaultInjector,
{
    /// Pop and handle one event. Returns `false` once the run is over:
    /// queue drained, wall cap passed, a halting fault, or (for draining
    /// drivers) every written frame shipped and rendered after mission
    /// completion.
    pub fn step_one(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some((now, ev)) = self.sched.pop() else {
            self.halted = true;
            return false;
        };
        if now > self.wall_cap {
            self.halted = true;
            return false;
        }
        self.clock.pace((now.as_secs() - self.last_secs).max(0.0));
        self.last_secs = now.as_secs();
        if !handle(&mut self.world, now, ev, &mut self.sched) {
            self.halted = true;
            return false;
        }
        // The live drivers drain: keep the run alive after mission
        // completion until every written frame has shipped and every
        // shipped frame has rendered.
        if self.world.drain
            && self.world.completed
            && !self.world.sender_busy
            && !self.world.store.has_pending()
            && self.world.renders_outstanding == 0
        {
            self.halted = true;
            return false;
        }
        true
    }

    /// Classify this shard's next action for the fleet coordinator
    /// (fleet mode only). A grant sitting in the WAN mailbox comes first
    /// — its release event was itself horizon-gated, and the horizon
    /// pinned this shard's clock at or below the grant instant while it
    /// waited, so consuming it immediately is safe and deterministic.
    /// Shared-resource events — and *any* event while the shard is
    /// queued for the WAN — are `Gated` behind the conservative horizon;
    /// everything else is `Local` and free-running.
    pub fn fleet_poll(&mut self) -> ShardPoll {
        if !self.halted {
            let fleet = self
                .world
                .fleet
                .clone()
                .expect("fleet_poll requires fleet mode");
            if let Some(g) = fleet.wan().grant_time(fleet.shard) {
                return ShardPoll::Granted {
                    time: SimTime::from_secs(g),
                };
            }
            match self.sched.peek() {
                Some((t, ev)) => {
                    let shared = matches!(
                        ev,
                        Ev::LinkRequest | Ev::TransferDone { .. } | Ev::Decision | Ev::Fault(_)
                    );
                    return if shared || self.world.wan_waiting {
                        ShardPoll::Gated { time: t }
                    } else {
                        ShardPoll::Local { time: t }
                    };
                }
                None => {
                    assert!(
                        !self.world.wan_waiting,
                        "waiting on the WAN with an empty queue"
                    );
                    self.halted = true;
                }
            }
        }
        if self.released {
            ShardPoll::Done
        } else {
            // One final gated action remains: handing the shared
            // resources back, serialized in global order like any other
            // shared mutation.
            ShardPoll::Gated {
                time: self.sched.now(),
            }
        }
    }

    /// Execute what the immediately preceding [`Self::fleet_poll`]
    /// described: consume a WAN grant, run one event, or (once the loop
    /// has halted) release the shared resources.
    pub fn fleet_step(&mut self) {
        if !self.halted {
            let fleet = self
                .world
                .fleet
                .clone()
                .expect("fleet_step requires fleet mode");
            let granted = fleet.wan().grant_time(fleet.shard).is_some();
            if granted {
                self.world.take_wan_grant(&mut self.sched);
                return;
            }
            self.step_one();
            return;
        }
        let fleet = self
            .world
            .fleet
            .clone()
            .expect("fleet_step requires fleet mode");
        let end = self.sched.now().as_secs();
        // `cancel` covers every holding state: mid-transfer (the wall cap
        // struck first), an unconsumed grant, still queued, or nothing.
        fleet.wan().cancel(fleet.shard, end);
        fleet.cluster().release_all(fleet.shard);
        self.released = true;
    }

    /// Fleet mode: true once the halted engine has handed its shared
    /// resources back — the shard's final gated step has run and
    /// [`Self::finish`] may be called.
    pub fn fleet_released(&self) -> bool {
        self.released
    }

    /// Tear the run down and assemble the report.
    pub fn finish(self) -> EngineOutput {
        let mut world = self.world;
        let ended_stalled = world.handler.state() == SimProcessState::Stalled;
        let completed = world.completed;
        if completed {
            world.durability.mark_completed();
        }
        let track = world.transport.finish();
        let wall_hours = if completed {
            world
                .sim_progress
                .points
                .last()
                .map(|&(t, _)| t / 3600.0)
                .unwrap_or(0.0)
        } else {
            world.options.wall_cap_hours
        };
        let counters = PipelineCounters {
            frames_emitted: world.frames_emitted,
            frames_written: world.store.frames_stored(),
            frames_shipped: world.store.frames_shipped(),
            frames_rendered: world.frames_rendered,
            frames_dropped: world.frames_dropped,
            frames_in_flight: (world.store.pending_count() + world.store.in_flight_count()) as u64,
            frames_recovered: world.frames_recovered,
            restarts: world.handler.restarts() as u64,
            stalls: world.base_stalls + world.handler.stalls() as u64,
            crashes: world.base_crashes + world.crashes,
            reconnects: world.reconnects,
            replays: world.replays,
            retry_budget_exhausted: 0,
            degraded_epochs: world.manager.degraded_epochs() as u64,
            recoveries: world.recoveries,
            journal_replays: world.journal_replays,
            steering_commands_applied: world.steering.commands_applied as u64,
            decisions: world.manager.epochs(),
            qos_demotions: world.qos.as_ref().map_or(0, |c| c.demotions()),
            qos_promotions: world.qos.as_ref().map_or(0, |c| c.promotions()),
            deepest_rung: world.qos.as_ref().map_or(0, |c| c.deepest().as_byte()),
            min_free_disk_pct: world.min_free_pct,
            final_free_disk_pct: world.store.disk().free_percent(),
            first_stall_wall_hours: world.first_stall,
        };
        let report = PipelineReport {
            completed,
            ended_stalled,
            wall_hours,
            sim_minutes: world.model.sim_minutes(),
            series: {
                let mut s = SeriesSet::new();
                s.push(world.sim_progress);
                s.push(world.free_disk);
                s.push(world.viz_progress);
                s.push(world.procs_series);
                s.push(world.oi_series);
                s.push(world.binding_series);
                if world.qos.is_some() {
                    // Only ladder-enabled runs carry the QoS series, so
                    // pre-ladder figure CSVs stay byte-identical.
                    s.push(world.qos_rung_series);
                    s.push(world.qos_pressure_series);
                }
                s
            },
            track,
            counters,
        };
        EngineOutput {
            report,
            kill: world.kill,
        }
    }
}

/// One engine event. Returns false to halt the run.
fn handle<T: FrameTransport, D: Durability, F: FaultInjector>(
    w: &mut World<T, D, F>,
    now: SimTime,
    ev: Ev,
    sched: &mut Scheduler<Ev>,
) -> bool {
    match ev {
        Ev::Step => {
            w.step_event = None;
            let workers = w.options.physics_threads.resolve(w.config.num_procs);
            w.model
                .advance_steps(1, workers)
                .expect("integrator stays finite on mission configurations");
            w.record_sim(now);

            if w.model.sim_minutes() >= w.mission.duration_minutes() {
                w.completed = true;
                if !w.drain {
                    return false; // Mission accomplished; the figures end here.
                }
                // Draining drivers keep shipping what is still on disk.
                w.kick_sender(sched);
                return true;
            }

            // The pressure schedule may prescribe a reconfiguration
            // ("whenever WRF finds the values of its certain variables
            // drop below a certain threshold, it stops and the job handler
            // reschedules it").
            let (res, nest) = w.scheduled_resolution();
            if res != w.config.resolution_km || nest != w.config.nest_active {
                let mut next = w.config.clone();
                next.resolution_km = res;
                next.nest_active = nest;
                w.begin_restart(next, sched);
                return true;
            }

            if w.model.sim_minutes() + 1e-9 >= w.next_output_min {
                if w.model.sim_minutes() <= w.skip_outputs_through + 1e-6 {
                    // This output is already on the durable record from a
                    // dead incarnation; re-simulation is bit-exact, so
                    // advance the schedule without storing a duplicate.
                    w.next_output_min = w.model.sim_minutes() + w.config.output_interval_min;
                    w.schedule_step(sched);
                } else {
                    // Write a history frame; I/O blocks the solver.
                    w.io_pending = true;
                    let modeled = w.frame_bytes();
                    let sim_min = w.model.sim_minutes();
                    let (bytes, payload) = w.transport.emit(&w.model, sim_min, modeled, w.rung);
                    sched.schedule_in(
                        w.site.cluster.io_time(bytes),
                        Ev::FrameDone {
                            sim_min,
                            bytes,
                            payload,
                        },
                    );
                }
            } else {
                w.schedule_step(sched);
            }
            if !w.io_pending {
                w.maybe_checkpoint();
            }
        }

        Ev::FrameDone {
            sim_min,
            bytes,
            payload,
        } => {
            w.io_pending = false;
            w.frames_emitted += 1;
            let id = w.store.next_id();
            // Durable order: payload first, then the ledger record that
            // commits it; a ledger commit that fails after all discards
            // the payload again.
            let mut committed = w.durability.persist_frame(id, &payload);
            if committed && w.store.store(sim_min, bytes).is_err() {
                w.durability.discard_frame(id);
                committed = false;
            }
            if committed {
                w.transport.park(id, sim_min, payload);
                w.next_output_min = sim_min + w.config.output_interval_min;
                w.kick_sender(sched);
            } else {
                // Disk completely full: drop the frame and stall until
                // transfers free space.
                w.frames_dropped += 1;
                if w.handler.state() != SimProcessState::Stalled {
                    w.handler.stall();
                    w.note_stall(now);
                    sched.schedule_in(w.options.stall_probe_secs, Ev::StallProbe);
                }
            }
            w.record_disk(now);
            if w.handler.is_running() {
                w.schedule_step(sched);
            }
            w.maybe_checkpoint();
        }

        Ev::LinkRequest => {
            // Fleet mode only. The kick's conditions may have changed in
            // the same instant (an outage, a Pause demotion); re-check
            // before contending for the link.
            let fleet = w
                .fleet
                .clone()
                .expect("LinkRequest only fires in fleet mode");
            if w.outage_depth > 0
                || (w.rung == QosRung::Pause && !w.completed)
                || !w.store.has_pending()
            {
                w.sender_busy = false;
                return true;
            }
            let acquired = fleet.wan().try_acquire(fleet.shard, now.as_secs());
            if acquired {
                w.start_transfer_at(now, sched);
            } else {
                // Queued behind a fleet-mate; the grant arrives through
                // the mailbox and `take_wan_grant` starts the transfer.
                w.wan_waiting = true;
            }
        }

        Ev::TransferDone { id } => {
            w.sender_busy = false;
            w.transfer_event = None;
            w.release_wan(now);
            let meta = w
                .store
                .complete_transfer(id)
                .expect("transfer was begun by kick_sender");
            w.record_disk(now);
            if w.transport.deliver(id, meta.sim_minutes) {
                w.renders_outstanding += 1;
                sched.schedule_in(
                    w.site.render_secs_per_frame,
                    Ev::RenderDone {
                        sim_min: meta.sim_minutes,
                    },
                );
            }
            w.kick_sender(sched);
            // Freed space may un-stall the simulation.
            maybe_resume(w, sched);
        }

        Ev::RenderDone { sim_min } => {
            w.renders_outstanding = w.renders_outstanding.saturating_sub(1);
            w.frames_rendered += 1;
            w.viz_progress.record(now, sim_min);
        }

        Ev::Decision => {
            if w.completed {
                return true;
            }
            let horizon = w.horizon_secs();
            let (res, nest) = (w.config.resolution_km, w.config.nest_active);
            // Plan with the rung currently in force: a degraded rung
            // writes smaller frames, so the decision algorithm can keep
            // the output cadence tight instead of starving the
            // visualization (one-epoch lag; identity when the ladder is
            // off).
            let frame_bytes = {
                let fb = w.transport.decision_frame_bytes(w.frame_bytes());
                ((fb as f64 * w.rung.byte_factor()).ceil() as u64).max(1)
            };
            let io_secs = w.site.cluster.io_time(frame_bytes);
            let dt = w.model.dt_secs();
            let (min_oi, max_oi) = (
                w.mission.min_output_interval_min,
                w.steering.effective_max_oi(
                    w.mission.min_output_interval_min,
                    w.mission.max_output_interval_min,
                ),
            );
            // Split borrows: the table lives in a map on `w`; clone it so
            // the manager can borrow the rest of the world.
            let table = w.proc_table(res, nest).clone();
            let ctx = EpochContext {
                frame_bytes,
                io_secs_per_frame: io_secs,
                proc_table: &table,
                dt_sim_secs: dt,
                min_oi_min: min_oi,
                max_oi_min: max_oi,
                horizon_secs: horizon,
            };
            let next = {
                let decided = w.manager.epoch(w.store.disk(), &mut w.net, &ctx, &w.config);
                w.clamp_shared_cores(decided)
            };
            if let Some(binding) = w.manager.last_binding() {
                w.binding_series.record(now, binding_code(binding));
            }
            w.record_disk(now);

            // Closed loop: fold this epoch's observations into the
            // degradation ladder. The bandwidth measurement the manager
            // just made doubles as the controller's link signal.
            if let Some(ctrl) = &mut w.qos {
                let peak = w.manager.peak_bandwidth_bps();
                let bandwidth_frac = match w.manager.observed_bandwidth_bps() {
                    Some(obs) if peak > 0.0 => (obs / peak).clamp(0.0, 1.0),
                    _ => 1.0,
                };
                let receiver_lag_frames =
                    (w.store.pending_count() + w.store.in_flight_count()) as u64;
                let remaining_wall = (w.options.wall_cap_hours * 3600.0 - now.as_secs()).max(0.0);
                let deadline_slack = if horizon > 0.0 {
                    remaining_wall / horizon
                } else {
                    1.0
                };
                let before = w.rung;
                w.rung = ctrl.observe(&QosSignals {
                    bandwidth_frac,
                    receiver_lag_frames,
                    free_disk_pct: w.store.disk().free_percent(),
                    deadline_slack,
                });
                w.qos_rung_series.record(now, w.rung.as_byte() as f64);
                w.qos_pressure_series.record(now, ctrl.last_pressure());
                if before == QosRung::Pause && w.rung != QosRung::Pause {
                    // Promotion out of store-and-forward: resume shipping
                    // the parked backlog.
                    w.kick_sender(sched);
                }
            }

            match w.handler.state() {
                SimProcessState::Running => {
                    if next.critical {
                        w.cancel_step(sched);
                        w.handler.stall();
                        w.note_stall(now);
                        w.config.critical = true;
                    } else if w.config.requires_restart(&next) {
                        w.begin_restart(next, sched);
                    }
                }
                SimProcessState::Stalled => {
                    if !next.critical && w.store.disk().free_percent() >= RESUME_FREE_PERCENT {
                        w.handler.resume();
                        w.config.critical = false;
                        if w.config.requires_restart(&next) {
                            w.begin_restart(next, sched);
                        } else if !w.io_pending {
                            w.schedule_step(sched);
                        }
                    }
                }
                SimProcessState::Restarting => {
                    // A restart is in flight; the next epoch will see the
                    // new configuration.
                }
            }
            w.record_config(now);
            w.publish_config_file();
            sched.schedule_in(w.mission.decision_interval_hours * 3600.0, Ev::Decision);
        }

        Ev::RestartDone => {
            let next = w
                .pending_config
                .take()
                .expect("restart completion implies a pending configuration");
            if next.resolution_km != w.config.resolution_km {
                w.model
                    .set_resolution(next.resolution_km)
                    .expect("schedule resolutions are valid");
            }
            if next.nest_active && !w.model.has_nest() {
                w.model.spawn_nest();
            } else if !next.nest_active && w.model.has_nest() {
                w.model.despawn_nest();
            }
            let critical = w.config.critical;
            w.config = next;
            w.config.critical = critical;
            w.handler.finish_restart();
            w.record_config(now);
            w.publish_config_file();
            if critical {
                // Came up stalled (CRITICAL still set).
                w.handler.stall();
                w.note_stall(now);
            } else if !w.io_pending {
                w.schedule_step(sched);
            }
            // A kill aborts the in-flight transfer; the relaunched
            // incarnation's sender resumes shipment (no-op when a
            // transfer is already running or nothing is pending).
            w.kick_sender(sched);
        }

        Ev::Steering(cmd) => {
            w.steering.apply(cmd);
            // Respond immediately where the command demands it: a tighter
            // temporal-resolution cap than the running interval, or a
            // resolution pin different from the live grid, triggers a
            // reconfiguration right away (when the process is running and
            // not already mid-restart).
            if w.handler.is_running() && !w.completed {
                let mut next = w.config.clone();
                let cap = w.steering.effective_max_oi(
                    w.mission.min_output_interval_min,
                    w.mission.max_output_interval_min,
                );
                if next.output_interval_min > cap {
                    next.output_interval_min = cap;
                }
                let (res, nest_active) = w.scheduled_resolution();
                next.resolution_km = res;
                next.nest_active = nest_active;
                if w.config.requires_restart(&next) {
                    w.begin_restart(next, sched);
                }
            }
        }

        Ev::Fault(fault) => match fault {
            Fault::LinkDegradation { factor } => {
                w.link_factor = factor;
                w.apply_link();
            }
            Fault::BandwidthFlap {
                factor,
                half_period_hours,
                flips,
            } => {
                // Toggle between degraded and healthy, and re-arm until
                // the flip budget is spent.
                w.link_factor = if (w.link_factor - factor).abs() < 1e-12 {
                    1.0
                } else {
                    factor
                };
                w.apply_link();
                if flips > 1 {
                    sched.schedule_in(
                        half_period_hours.max(1e-3) * 3600.0,
                        Ev::Fault(Fault::BandwidthFlap {
                            factor,
                            half_period_hours,
                            flips: flips - 1,
                        }),
                    );
                }
            }
            Fault::DiskPressure {
                bytes,
                duration_hours,
            } => {
                let got = w.store.seize_external(bytes);
                w.record_disk(now);
                if got > 0 {
                    sched.schedule_in(
                        duration_hours.max(1e-3) * 3600.0,
                        Ev::ExternalRelease { bytes: got },
                    );
                }
            }
            Fault::ReceiverOutage { duration_hours } => {
                w.outage_depth += 1;
                w.apply_link();
                // Whatever was mid-transfer is lost with the connection;
                // the frame goes back to the head of the queue and will be
                // replayed from the last acked frame once the receiver is
                // back (its bytes were never freed, so no data is lost).
                if let Some((event, frame_id)) = w.transfer_event.take() {
                    sched.cancel(event);
                    w.sender_busy = false;
                    w.store
                        .abort_transfer(frame_id)
                        .expect("transfer was in flight");
                    w.replays += 1;
                    w.release_wan(now);
                }
                // A queued WAN request is withdrawn with the connection.
                w.cancel_wan_wait(now);
                sched.schedule_in(duration_hours.max(1e-3) * 3600.0, Ev::ReceiverRestored);
            }
            Fault::SimCrash => {
                // The solver process dies; the job handler relaunches it
                // from the last checkpoint. Modeled as a restart with a
                // requeue penalty on top of the ordinary restart overhead
                // (crash-time requeues wait in the batch queue).
                w.crashes += 1;
                if w.handler.state() != SimProcessState::Restarting && !w.completed {
                    let stalled = w.handler.state() == SimProcessState::Stalled;
                    w.cancel_step(sched);
                    w.handler.begin_restart();
                    w.pending_config = Some(w.config.clone());
                    let penalty = 3.0 * w.site.cluster.restart_overhead_secs;
                    sched.schedule_in(penalty, Ev::RestartDone);
                    if stalled {
                        // Preserve the CRITICAL stall across the relaunch.
                        w.config.critical = true;
                    }
                }
            }
            Fault::TornWrite => {
                w.torn_staged = true;
            }
            Fault::CorruptCheckpoint => {
                w.corrupt_staged = true;
            }
            Fault::ProcessKill { at_hours } => match w.injector.kill_action() {
                KillAction::ModeledRecovery => {
                    // `kill -9` of the whole simulation-site pipeline,
                    // modeled analytically. The durable ledger (journal +
                    // payload files + checkpoints) survives; everything
                    // volatile — the in-flight transfer, the scheduled
                    // step — dies with the process. The recovery
                    // supervisor replays the journal, requeues what was
                    // pending, and relaunches from the newest valid
                    // checkpoint.
                    if w.handler.state() != SimProcessState::Restarting && !w.completed {
                        w.recoveries += 1;
                        w.journal_replays += 1;
                        if let Some((event, frame_id)) = w.transfer_event.take() {
                            sched.cancel(event);
                            w.sender_busy = false;
                            w.store
                                .abort_transfer(frame_id)
                                .expect("transfer was in flight");
                            w.replays += 1;
                            w.release_wan(now);
                        }
                        // The dying sender's queued WAN request dies too.
                        w.cancel_wan_wait(now);
                        w.frames_recovered +=
                            (w.store.pending_count() + w.store.in_flight_count()) as u64;
                        let stalled = w.handler.state() == SimProcessState::Stalled;
                        w.cancel_step(sched);
                        w.handler.begin_restart();
                        w.pending_config = Some(w.config.clone());
                        // Crash-requeue penalty, plus extra re-simulation
                        // when the newest checkpoint was corrupt and
                        // recovery had to fall back to an older one. A
                        // torn journal tail only loses the uncommitted
                        // record — replay truncates it at no modeled cost.
                        let mut penalty = 3.0 * w.site.cluster.restart_overhead_secs;
                        if w.corrupt_staged {
                            penalty += 2.0 * w.site.cluster.restart_overhead_secs;
                        }
                        w.torn_staged = false;
                        w.corrupt_staged = false;
                        sched.schedule_in(penalty, Ev::RestartDone);
                        if stalled {
                            w.config.critical = true;
                        }
                    }
                }
                KillAction::HaltIncarnation => {
                    // The incarnation dies where it stands: no draining,
                    // no final checkpoint. The in-flight transfer stays
                    // in-flight on the journal (recovery requeues it);
                    // the recovery supervisor reads the KillEvent and
                    // relaunches from disk.
                    if !w.completed {
                        w.kill = Some(KillEvent {
                            at_hours,
                            torn_write: w.torn_staged,
                            corrupt_checkpoint: w.corrupt_staged,
                        });
                        return false;
                    }
                }
            },
        },

        Ev::ReceiverRestored => {
            w.outage_depth = w.outage_depth.saturating_sub(1);
            if w.outage_depth == 0 {
                w.apply_link();
                // The resilient sender re-establishes the connection and
                // resumes from the receiver's last-applied frame.
                w.reconnects += 1;
                w.kick_sender(sched);
            }
        }

        Ev::ExternalRelease { bytes } => {
            w.store.release_external(bytes);
            w.record_disk(now);
            maybe_resume(w, sched);
        }

        Ev::StallProbe => {
            if w.handler.state() == SimProcessState::Stalled && !maybe_resume(w, sched) {
                sched.schedule_in(w.options.stall_probe_secs, Ev::StallProbe);
            }
        }
    }
    true
}

/// Epoch zero: decide the starting configuration (applied directly, no
/// restart — the simulation has not been launched yet).
fn initial_epoch<T: FrameTransport, D: Durability, F: FaultInjector>(w: &mut World<T, D, F>) {
    let horizon = w.horizon_secs();
    let (res, nest) = (w.config.resolution_km, w.config.nest_active);
    let frame_bytes = w.transport.decision_frame_bytes(w.frame_bytes());
    let io_secs = w.site.cluster.io_time(frame_bytes);
    let dt = w.model.dt_secs();
    let (min_oi, max_oi) = (
        w.mission.min_output_interval_min,
        w.steering.effective_max_oi(
            w.mission.min_output_interval_min,
            w.mission.max_output_interval_min,
        ),
    );
    let table = w.proc_table(res, nest).clone();
    let ctx = EpochContext {
        frame_bytes,
        io_secs_per_frame: io_secs,
        proc_table: &table,
        dt_sim_secs: dt,
        min_oi_min: min_oi,
        max_oi_min: max_oi,
        horizon_secs: horizon,
    };
    let next = {
        let decided = w.manager.epoch(w.store.disk(), &mut w.net, &ctx, &w.config);
        w.clamp_shared_cores(decided)
    };
    debug_assert!(!next.critical, "a fresh disk cannot be critical");
    w.config = next;
}

/// Resume a stalled simulation once enough disk has been freed. Returns
/// true when the simulation resumed.
fn maybe_resume<T: FrameTransport, D: Durability, F: FaultInjector>(
    w: &mut World<T, D, F>,
    sched: &mut Scheduler<Ev>,
) -> bool {
    if w.handler.state() == SimProcessState::Stalled
        && w.store.disk().free_percent() >= RESUME_FREE_PERCENT
    {
        w.handler.resume();
        w.config.critical = false;
        if !w.io_pending {
            w.schedule_step(sched);
        }
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_options_defaults_match_the_documented_knobs() {
        let opts = PipelineOptions::default();
        assert_eq!(opts.wall_cap_hours, 120.0);
        assert_eq!(opts.physics_threads, PhysicsThreads::Fixed(1));
        assert_eq!(opts.physics_threads.resolve(9), 1);
        assert_eq!(PhysicsThreads::FollowDecision.resolve(9), 9);
        assert_eq!(PhysicsThreads::FollowDecision.resolve(0), 1);
        assert_eq!(PhysicsThreads::Fixed(0).resolve(5), 1);
        assert_eq!(opts.seed, 42);
        assert_eq!(opts.stall_probe_secs, 600.0);
        assert!(opts.fault_plan.is_empty());
        assert!(opts.durability.is_none());
        assert!(opts.qos.is_none(), "the ladder is opt-in");
    }

    #[test]
    fn conservation_helper_accepts_a_consistent_ledger() {
        let c = PipelineCounters {
            frames_emitted: 10,
            frames_written: 8,
            frames_dropped: 2,
            frames_shipped: 5,
            frames_in_flight: 3,
            frames_rendered: 5,
            ..Default::default()
        };
        assert_frame_conservation(&c);
    }

    #[test]
    #[should_panic(expected = "every emitted frame")]
    fn conservation_helper_rejects_a_leaky_ledger() {
        let c = PipelineCounters {
            frames_emitted: 10,
            frames_written: 8,
            frames_dropped: 1, // one frame unaccounted for
            ..Default::default()
        };
        assert_frame_conservation(&c);
    }

    #[test]
    fn optional_durability_delegates_or_defaults() {
        let mut none: Option<NoDurability> = None;
        assert!(none.persist_frame(0, b"x"));
        assert!(!none.checkpoint_due(1e9));
        let mut some = Some(NoDurability);
        assert!(some.persist_frame(0, b"x"));
    }

    #[test]
    fn binding_codes_are_stable() {
        assert_eq!(binding_code(BindingConstraint::MachineBound), 0.0);
        assert_eq!(binding_code(BindingConstraint::DiskBound), 1.0);
        assert_eq!(binding_code(BindingConstraint::VisualizationBound), 2.0);
        assert_eq!(binding_code(BindingConstraint::InfeasibleSafeCorner), 3.0);
    }
}
