//! Multi-mission fleet driver: N missions, shared resources, W workers.
//!
//! The paper runs one critical-climate mission per site. Operationally a
//! centre runs *ensembles* — many forecast members over the same cluster
//! and the same outbound WAN link. This module drives N [`EpochEngine`]s
//! as shards of one sharded DES ([`des::run_shards`]): each mission
//! advances on its own virtual clock, and only shared-resource events
//! (WAN acquisition/release, decision-epoch core reallocation, faults)
//! synchronize through the conservative `(time, shard)` horizon. The
//! result is a pure function of the mission specs — worker count changes
//! wall time, never reports (pinned by `tests/fleet_parity.rs`).
//!
//! Shared resources:
//! - [`SharedCores`] — the cluster's core pool, re-partitioned at every
//!   mission's decision epochs (each member keeps one reserved core),
//! - [`WanQueue`] — the sim→vis link: one transfer at a time, FIFO
//!   grants delivered through per-member mailboxes.

use crate::decision::AlgorithmKind;
use crate::engine::{
    EngineBoot, EngineOutput, EngineSetup, EpochEngine, FleetHandle, FleetShared, ModeledInjector,
    ModeledTransport, NoDurability, PipelineOptions, PipelineReport, RunningEngine, VirtualClock,
};
use cyclone::{Mission, Site};
use des::{run_shards, ShardPoll, ShardTask};
use resources::{FrameStore, SharedCores, WanQueue};
use std::sync::{Arc, Mutex};

/// One mission of a fleet: a full solo-run description. Seeds and
/// mission parameters may differ per member; the shared resources are
/// the fleet's, not the spec's.
pub struct MissionSpec {
    /// Human label carried into the [`MissionOutcome`].
    pub label: String,
    /// Site characteristics (disk, link model, render cost). The site's
    /// *cluster core count* is superseded by the fleet's shared pool.
    pub site: Site,
    /// The mission this member simulates.
    pub mission: Mission,
    /// Decision algorithm for the member's application manager.
    pub algorithm: AlgorithmKind,
    /// Run knobs; `seed` drives this member's network-variability walk.
    pub options: PipelineOptions,
}

/// Fleet-level knobs.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Worker threads driving the shard pool (clamped to at least 1).
    pub workers: usize,
    /// Cores in the shared cluster pool (must cover one reserved core
    /// per mission).
    pub total_cores: usize,
}

impl FleetOptions {
    /// Fleet sized to a site's cluster with `workers` worker threads.
    pub fn for_site(site: &Site, workers: usize) -> Self {
        FleetOptions {
            workers,
            total_cores: site.cluster.max_cores,
        }
    }
}

/// One member's result.
pub struct MissionOutcome {
    /// The spec's label.
    pub label: String,
    /// The member's full pipeline report — identical to what a solo run
    /// of the same spec would produce when the fleet has one member.
    pub report: PipelineReport,
}

/// What [`run_fleet`] returns: per-member outcomes in spec order.
pub struct FleetReport {
    /// Outcomes, index-aligned with the input specs.
    pub missions: Vec<MissionOutcome>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Shared-pool size the fleet ran with.
    pub total_cores: usize,
}

impl FleetReport {
    /// Members that simulated their full mission before the wall cap.
    pub fn completed(&self) -> usize {
        self.missions.iter().filter(|m| m.report.completed).count()
    }
}

/// `n` members over the same site/mission template, each with a distinct
/// network seed — the standard deterministic ensemble.
pub fn ensemble(
    site: &Site,
    mission: &Mission,
    algorithm: AlgorithmKind,
    base: &PipelineOptions,
    n: usize,
) -> Vec<MissionSpec> {
    (0..n)
        .map(|i| {
            let mut options = base.clone();
            options.seed = base.seed.wrapping_add(i as u64);
            MissionSpec {
                label: format!("member-{i:02}"),
                site: site.clone(),
                mission: mission.clone(),
                algorithm,
                options,
            }
        })
        .collect()
}

/// One fleet member as a DES shard: the running engine plus its finished
/// output once the shard completes.
struct MissionShard {
    label: String,
    engine: Option<RunningEngine<VirtualClock, ModeledTransport, NoDurability, ModeledInjector>>,
    output: Option<EngineOutput>,
}

impl ShardTask for MissionShard {
    fn poll(&mut self) -> ShardPoll {
        match &mut self.engine {
            Some(e) => e.fleet_poll(),
            None => ShardPoll::Done,
        }
    }

    fn step(&mut self) {
        if let Some(e) = &mut self.engine {
            e.fleet_step();
            if e.fleet_released() {
                let done = self.engine.take().expect("engine present");
                self.output = Some(done.finish());
            }
        }
    }
}

/// Run a fleet to completion and collect per-member reports.
///
/// Members are constructed serially in shard order, so every epoch-zero
/// reallocation of the shared core pool happens at `t = 0` in member
/// order — the deterministic tie-break for the only instant at which
/// decision epochs collide by construction.
///
/// # Panics
/// On an empty spec list, or when `total_cores` cannot reserve one core
/// per member.
pub fn run_fleet(specs: Vec<MissionSpec>, opts: &FleetOptions) -> FleetReport {
    let n = specs.len();
    assert!(n > 0, "fleet needs at least one mission");
    let workers = opts.workers.max(1);
    let shared = Arc::new(FleetShared {
        cluster: Mutex::new(SharedCores::new(opts.total_cores, n)),
        wan: Mutex::new(WanQueue::new(n)),
    });
    let shards: Vec<MissionShard> = specs
        .into_iter()
        .enumerate()
        .map(|(shard, spec)| {
            let store = FrameStore::new(spec.site.make_disk());
            let net = spec.site.make_network(spec.options.seed);
            let setup = EngineSetup {
                site: spec.site,
                mission: spec.mission,
                algorithm: spec.algorithm,
                options: spec.options,
                store,
                net,
                steering_script: Vec::new(),
                publish_config: None,
                // Fleet members halt where the paper's figures end; a
                // draining member could sit queued on the WAN with an
                // empty event queue, which the coordinator (correctly)
                // rejects as a wedge.
                drain_on_complete: false,
                boot: EngineBoot::default(),
                fleet: Some(FleetHandle {
                    shared: Arc::clone(&shared),
                    shard,
                }),
            };
            MissionShard {
                label: spec.label,
                engine: Some(
                    EpochEngine::new(
                        setup,
                        VirtualClock,
                        ModeledTransport,
                        NoDurability,
                        ModeledInjector,
                    )
                    .start(),
                ),
                output: None,
            }
        })
        .collect();
    let done = run_shards(shards, workers);
    let missions = done
        .into_iter()
        .map(|s| {
            let out = s.output.expect("every shard runs to completion");
            MissionOutcome {
                label: s.label,
                report: out.report,
            }
        })
        .collect();
    FleetReport {
        missions,
        workers,
        total_cores: opts.total_cores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_specs(n: usize) -> Vec<MissionSpec> {
        let site = Site::inter_department();
        let mission = Mission::aila().with_duration_hours(2.0);
        ensemble(
            &site,
            &mission,
            AlgorithmKind::Optimization,
            &PipelineOptions::default(),
            n,
        )
    }

    #[test]
    fn fleet_of_two_completes_both_missions() {
        let site = Site::inter_department();
        let report = run_fleet(quick_specs(2), &FleetOptions::for_site(&site, 2));
        assert_eq!(report.missions.len(), 2);
        assert_eq!(
            report.completed(),
            2,
            "short missions finish well under the cap"
        );
        for m in &report.missions {
            assert!(m.report.frames_shipped > 0, "{} shipped nothing", m.label);
        }
    }

    #[test]
    fn ensemble_seeds_are_distinct() {
        let specs = quick_specs(4);
        let mut seeds: Vec<u64> = specs.iter().map(|s| s.options.seed).collect();
        seeds.dedup();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one mission")]
    fn empty_fleet_rejected() {
        run_fleet(
            Vec::new(),
            &FleetOptions {
                workers: 1,
                total_cores: 8,
            },
        );
    }
}
