//! Summary metrics over run outcomes — the numbers the paper quotes in
//! its abstract and §V ("about 30% higher simulation rate", "25–50%
//! lesser storage space", "higher and more consistent rate of
//! visualization").

use crate::orchestrator::RunOutcome;

/// Head-to-head comparison of the two algorithms on one site.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Site label.
    pub site_label: &'static str,
    /// Simulation-rate advantage of optimization over greedy, percent
    /// (positive = optimization faster).
    pub sim_rate_gain_pct: f64,
    /// Storage saving of optimization over greedy, percent of the greedy
    /// peak usage (positive = optimization used less).
    pub storage_saving_pct: f64,
    /// Visualization progress (simulated minutes rendered) at *half* the
    /// common horizon, optimization minus greedy. Mid-run is the regime
    /// the paper's Figure 7 emphasises — the greedy heuristic's transfer
    /// queue is deepest then; by the end of a completed run it may have
    /// drained its backlog.
    pub viz_progress_gain_min: f64,
    /// Coefficient of variation (σ/μ) of the output interval across the
    /// run, per algorithm — the "consistent quality-of-service" measure
    /// (greedy, optimization). Relative spread, because the two methods
    /// operate around very different mean intervals.
    pub oi_variation: (f64, f64),
    /// Whether each run completed (greedy, optimization).
    pub completed: (bool, bool),
}

/// Peak storage used, percent of capacity.
pub fn peak_storage_used_pct(out: &RunOutcome) -> f64 {
    100.0 - out.min_free_disk_pct
}

/// Percentile of a sample by nearest-rank (p in [0, 100]), e.g. the p99
/// frame staleness a broker load sweep reports. NaNs are ignored; an
/// empty (or all-NaN) sample yields 0.
pub fn percentile(values: impl Iterator<Item = f64>, p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let mut vals: Vec<f64> = values.filter(|v| !v.is_nan()).collect();
    if vals.is_empty() {
        return 0.0;
    }
    // Nearest-rank: smallest value with at least p% of the sample at or
    // below it.
    let rank = ((p / 100.0 * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
    let (_, v, _) = vals.select_nth_unstable_by(rank - 1, |a, b| a.total_cmp(b));
    *v
}

/// Standard deviation of a series' values (population).
pub fn series_stddev(values: impl Iterator<Item = f64>) -> f64 {
    let vals: Vec<f64> = values.collect();
    if vals.is_empty() {
        return 0.0;
    }
    let mean = vals.iter().sum::<f64>() / vals.len() as f64;
    (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
}

/// Visualization progress (simulated minutes of the newest rendered
/// frame) at wall-clock second `t`.
pub fn viz_progress_at(out: &RunOutcome, wall_secs: f64) -> f64 {
    out.series
        .get("viz_progress")
        .and_then(|s| s.value_at(wall_secs))
        .unwrap_or(0.0)
}

/// Simulated minutes reached at wall-clock second `t`.
pub fn sim_progress_at(out: &RunOutcome, wall_secs: f64) -> f64 {
    out.series
        .get("sim_progress")
        .and_then(|s| s.value_at(wall_secs))
        .unwrap_or(0.0)
}

/// Compare a greedy run and an optimization run of the same mission/site.
///
/// # Panics
/// If the runs come from different sites.
pub fn compare(greedy: &RunOutcome, optimization: &RunOutcome) -> Comparison {
    assert_eq!(
        greedy.site_label, optimization.site_label,
        "comparison must be same-site"
    );
    // Simulation rate over the common wall horizon (the earlier end).
    let horizon = greedy.wall_hours.min(optimization.wall_hours) * 3600.0;
    let g_sim = sim_progress_at(greedy, horizon);
    let o_sim = sim_progress_at(optimization, horizon);
    let sim_rate_gain_pct = if g_sim > 0.0 {
        100.0 * (o_sim - g_sim) / g_sim
    } else {
        f64::INFINITY
    };

    let g_peak = peak_storage_used_pct(greedy);
    let o_peak = peak_storage_used_pct(optimization);
    let storage_saving_pct = if g_peak > 0.0 {
        100.0 * (g_peak - o_peak) / g_peak
    } else {
        0.0
    };

    let oi_cv = |out: &RunOutcome| {
        out.series
            .get("output_interval")
            .map(|s| {
                let vals: Vec<f64> = s.points.iter().map(|&(_, v)| v).collect();
                if vals.is_empty() {
                    return 0.0;
                }
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                if mean <= 0.0 {
                    return 0.0;
                }
                series_stddev(vals.into_iter()) / mean
            })
            .unwrap_or(0.0)
    };

    Comparison {
        site_label: greedy.site_label,
        sim_rate_gain_pct,
        storage_saving_pct,
        viz_progress_gain_min: viz_progress_at(optimization, horizon / 2.0)
            - viz_progress_at(greedy, horizon / 2.0),
        oi_variation: (oi_cv(greedy), oi_cv(optimization)),
        completed: (greedy.completed, optimization.completed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::AlgorithmKind;
    use crate::orchestrator::Orchestrator;
    use cyclone::{Mission, Site};

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile([].into_iter(), 99.0), 0.0);
        assert_eq!(percentile([f64::NAN].into_iter(), 50.0), 0.0);
        assert_eq!(percentile([7.0].into_iter(), 0.0), 7.0);
        let sample = (1..=100).map(|v| v as f64);
        assert_eq!(percentile(sample.clone(), 50.0), 50.0);
        assert_eq!(percentile(sample.clone(), 99.0), 99.0);
        assert_eq!(percentile(sample.clone(), 100.0), 100.0);
        // Order independence.
        assert_eq!(percentile([3.0, 1.0, 2.0].into_iter(), 50.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_bad_p() {
        percentile([1.0].into_iter(), 101.0);
    }

    #[test]
    fn stddev_basics() {
        assert_eq!(series_stddev([].into_iter()), 0.0);
        assert_eq!(series_stddev([5.0, 5.0, 5.0].into_iter()), 0.0);
        let sd = series_stddev([1.0, 3.0].into_iter());
        assert!((sd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_on_a_short_mission() {
        let mission = Mission::aila().with_duration_hours(3.0);
        let g = Orchestrator::new(
            Site::inter_department(),
            mission.clone(),
            AlgorithmKind::GreedyThreshold,
        )
        .run();
        let o = Orchestrator::new(
            Site::inter_department(),
            mission,
            AlgorithmKind::Optimization,
        )
        .run();
        let c = compare(&g, &o);
        assert_eq!(c.site_label, "inter-department");
        assert!(c.completed.0 && c.completed.1);
        assert!(peak_storage_used_pct(&g) >= 0.0);
        assert!(c.sim_rate_gain_pct.is_finite());
    }

    #[test]
    #[should_panic(expected = "same-site")]
    fn cross_site_comparison_rejected() {
        let mission = Mission::aila().with_duration_hours(1.0);
        let g = Orchestrator::new(
            Site::inter_department(),
            mission.clone(),
            AlgorithmKind::GreedyThreshold,
        )
        .run();
        let o =
            Orchestrator::new(Site::intra_country(), mission, AlgorithmKind::Optimization).run();
        compare(&g, &o);
    }
}
