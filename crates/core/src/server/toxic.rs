//! Deterministic socket fault proxy: a loopback man-in-the-middle that
//! turns the chaos harness's *modeled* faults into real wire behavior.
//!
//! The proxy sits between a viewer and the [`FrameServer`], forwarding
//! bytes both ways and injecting one seeded [`Toxic`] per connection:
//! added latency/jitter, a bandwidth cap, an abrupt reset after N
//! bytes, a half-open partition (the peer vanishes without a FIN),
//! slow-loris trickle forwarding, or a torn mid-handshake disconnect
//! that cuts the client hello short. Which connection gets which toxic
//! is a pure function of the plan's seed and the connection index
//! (SplitMix64, like [`crate::fault::FaultPlan`]), so a storm replays
//! from one `u64` — the *fault schedule* is deterministic even though
//! real-socket interleaving is not, which is exactly why the soak's
//! invariants must hold for every interleaving.
//!
//! Roughly half of all connections are left healthy so retries through
//! the proxy eventually make progress, mirroring the chaos harness's
//! storm-with-recovery shape.

use super::FrameServer;
use crate::fault::SplitMix64;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// One per-connection fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Toxic {
    /// Delay each forwarded chunk by `base_ms` plus seeded jitter.
    Latency { base_ms: u64, jitter_ms: u64 },
    /// Cap server→client throughput.
    BandwidthCap { bytes_per_sec: u64 },
    /// Abruptly close both directions after forwarding this many
    /// server→client bytes (pending unread data turns the close into a
    /// real RST on Linux).
    Reset { after_bytes: u64 },
    /// After this many server→client bytes, keep *reading* both peers
    /// but forward nothing: each side sees a silent, still-open socket —
    /// the classic half-open partition only deadlines can detect.
    HalfOpen { after_bytes: u64 },
    /// Forward server→client traffic a few bytes per tick: a slow-loris
    /// reader as seen by the server's write path.
    SlowLoris { bytes_per_tick: usize, tick_ms: u64 },
    /// Forward only this many client→server bytes (fewer than the
    /// 20-byte hello), then close both: a torn mid-handshake disconnect.
    TornHandshake { after_bytes: u64 },
}

/// Seeded per-connection toxic assignment.
#[derive(Debug, Clone)]
pub struct ToxicPlan {
    seed: u64,
}

impl ToxicPlan {
    /// A storm plan; every fault decision derives from `seed`.
    pub fn storm(seed: u64) -> Self {
        Self { seed }
    }

    /// The toxic (if any) for the `idx`-th accepted connection. Pure:
    /// the same (seed, idx) always maps to the same fault.
    pub fn for_connection(&self, idx: u64) -> Option<Toxic> {
        let mut rng = SplitMix64::new(self.seed ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Half the connections stay healthy so retries drain the storm.
        if rng.unit_f64() < 0.5 {
            return None;
        }
        Some(match rng.next_u64() % 6 {
            0 => Toxic::Latency {
                base_ms: 5 + rng.next_u64() % 20,
                jitter_ms: 1 + rng.next_u64() % 10,
            },
            1 => Toxic::BandwidthCap {
                bytes_per_sec: 2_000 + rng.next_u64() % 8_000,
            },
            2 => Toxic::Reset {
                after_bytes: 30 + rng.next_u64() % 400,
            },
            3 => Toxic::HalfOpen {
                after_bytes: 30 + rng.next_u64() % 400,
            },
            4 => Toxic::SlowLoris {
                bytes_per_tick: 3 + (rng.next_u64() % 8) as usize,
                tick_ms: 5 + rng.next_u64() % 15,
            },
            _ => Toxic::TornHandshake {
                after_bytes: rng.next_u64() % 19,
            },
        })
    }
}

/// Proxy counters (informational; the invariants live server/viewer
/// side).
#[derive(Debug, Default)]
pub struct ToxicCounters {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Connections that received a toxic.
    pub faulted: AtomicU64,
    /// Abrupt resets injected.
    pub resets: AtomicU64,
    /// Half-open partitions entered.
    pub half_opens: AtomicU64,
    /// Handshakes torn mid-hello.
    pub torn_handshakes: AtomicU64,
}

/// Final tallies from [`ToxicProxy::shutdown`].
#[derive(Debug, Clone, Copy)]
pub struct ToxicReport {
    /// Connections accepted.
    pub connections: u64,
    /// Connections that received a toxic.
    pub faulted: u64,
    /// Abrupt resets injected.
    pub resets: u64,
    /// Half-open partitions entered.
    pub half_opens: u64,
    /// Handshakes torn mid-hello.
    pub torn_handshakes: u64,
}

/// The loopback man-in-the-middle.
pub struct ToxicProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<ToxicCounters>,
    accept: Option<JoinHandle<()>>,
}

impl ToxicProxy {
    /// Start a proxy in front of `upstream` (usually
    /// [`FrameServer::addr`]).
    pub fn start(upstream: SocketAddr, plan: ToxicPlan) -> Result<Self, std::io::Error> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(ToxicCounters::default());
        let accept = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("toxic-accept".into())
                .spawn(move || {
                    let mut idx = 0u64;
                    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
                    loop {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        match listener.accept() {
                            Ok((client, _)) => {
                                counters.connections.fetch_add(1, Ordering::SeqCst);
                                let toxic = plan.for_connection(idx);
                                if toxic.is_some() {
                                    counters.faulted.fetch_add(1, Ordering::SeqCst);
                                }
                                let seed = plan.seed ^ idx;
                                idx += 1;
                                match TcpStream::connect_timeout(&upstream, Duration::from_secs(2))
                                {
                                    Ok(server) => pumps.push(spawn_connection(
                                        client,
                                        server,
                                        toxic,
                                        seed,
                                        Arc::clone(&stop),
                                        Arc::clone(&counters),
                                    )),
                                    Err(_) => drop(client),
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => std::thread::sleep(Duration::from_millis(5)),
                        }
                    }
                    for p in pumps {
                        let _ = p.join();
                    }
                })
                .expect("spawn toxic accept thread")
        };
        Ok(Self {
            addr,
            stop,
            counters,
            accept: Some(accept),
        })
    }

    /// The address viewers should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the proxy, dropping every in-flight connection.
    pub fn shutdown(mut self) -> ToxicReport {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        ToxicReport {
            connections: self.counters.connections.load(Ordering::SeqCst),
            faulted: self.counters.faulted.load(Ordering::SeqCst),
            resets: self.counters.resets.load(Ordering::SeqCst),
            half_opens: self.counters.half_opens.load(Ordering::SeqCst),
            torn_handshakes: self.counters.torn_handshakes.load(Ordering::SeqCst),
        }
    }
}

impl Drop for ToxicProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Per-connection state shared by the two pump threads.
struct ConnState {
    stop: Arc<AtomicBool>,
    /// Half-open partition engaged: read and discard, forward nothing.
    partitioned: AtomicBool,
    /// Connection torn down (reset / torn handshake): both pumps exit.
    dead: AtomicBool,
    /// Server→client bytes forwarded so far.
    down_bytes: AtomicU64,
    /// Client→server bytes forwarded so far.
    up_bytes: AtomicU64,
}

fn spawn_connection(
    client: TcpStream,
    server: TcpStream,
    toxic: Option<Toxic>,
    seed: u64,
    stop: Arc<AtomicBool>,
    counters: Arc<ToxicCounters>,
) -> JoinHandle<()> {
    let state = Arc::new(ConnState {
        stop,
        partitioned: AtomicBool::new(false),
        dead: AtomicBool::new(false),
        down_bytes: AtomicU64::new(0),
        up_bytes: AtomicU64::new(0),
    });
    let c2s = {
        let client = client.try_clone().expect("clone client");
        let server = server.try_clone().expect("clone server");
        let state = Arc::clone(&state);
        let counters = Arc::clone(&counters);
        std::thread::Builder::new()
            .name("toxic-up".into())
            .stack_size(128 * 1024)
            .spawn(move || pump(client, server, Direction::Up, toxic, seed, state, counters))
            .expect("spawn pump")
    };
    let state2 = Arc::clone(&state);
    std::thread::Builder::new()
        .name("toxic-down".into())
        .stack_size(128 * 1024)
        .spawn(move || {
            pump(
                server,
                client,
                Direction::Down,
                toxic,
                seed ^ 0x5bf0_3635,
                state2,
                counters,
            );
            let _ = c2s.join();
        })
        .expect("spawn pump")
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    /// client → server (hellos, acks).
    Up,
    /// server → client (admissions, frames, controls).
    Down,
}

/// Forward bytes `src` → `dst`, applying the connection's toxic.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    dir: Direction,
    toxic: Option<Toxic>,
    seed: u64,
    state: Arc<ConnState>,
    counters: Arc<ToxicCounters>,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(20)));
    let _ = src.set_nodelay(true);
    let _ = dst.set_nodelay(true);
    let mut rng = SplitMix64::new(seed);
    let mut buf = [0u8; 4096];
    loop {
        if state.stop.load(Ordering::SeqCst) || state.dead.load(Ordering::SeqCst) {
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Source closed: propagate by dropping both ends.
                state.dead.store(true, Ordering::SeqCst);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                state.dead.store(true, Ordering::SeqCst);
                return;
            }
        };
        if state.partitioned.load(Ordering::SeqCst) {
            // Half-open: swallow the bytes, keep both sockets open.
            continue;
        }
        let chunk = &buf[..n];
        let forwarded = match toxic {
            Some(Toxic::TornHandshake { after_bytes }) if dir == Direction::Up => {
                let already = state.up_bytes.load(Ordering::SeqCst);
                let allow = after_bytes.saturating_sub(already).min(n as u64) as usize;
                if allow > 0 {
                    let _ = dst.write_all(&chunk[..allow]);
                }
                counters.torn_handshakes.fetch_add(1, Ordering::SeqCst);
                state.dead.store(true, Ordering::SeqCst);
                return;
            }
            Some(Toxic::Latency { base_ms, jitter_ms }) if dir == Direction::Down => {
                let jitter = (rng.unit_f64() * jitter_ms as f64) as u64;
                std::thread::sleep(Duration::from_millis(base_ms + jitter));
                dst.write_all(chunk).is_ok()
            }
            Some(Toxic::BandwidthCap { bytes_per_sec }) if dir == Direction::Down => {
                let ok = dst.write_all(chunk).is_ok();
                let secs = n as f64 / bytes_per_sec.max(1) as f64;
                std::thread::sleep(Duration::from_secs_f64(secs.min(0.25)));
                ok
            }
            Some(Toxic::SlowLoris {
                bytes_per_tick,
                tick_ms,
            }) if dir == Direction::Down => {
                let mut ok = true;
                for piece in chunk.chunks(bytes_per_tick.max(1)) {
                    if state.stop.load(Ordering::SeqCst) || state.dead.load(Ordering::SeqCst) {
                        ok = false;
                        break;
                    }
                    if dst.write_all(piece).is_err() {
                        ok = false;
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(tick_ms));
                }
                ok
            }
            _ => dst.write_all(chunk).is_ok(),
        };
        if !forwarded {
            state.dead.store(true, Ordering::SeqCst);
            return;
        }
        let total = match dir {
            Direction::Up => state.up_bytes.fetch_add(n as u64, Ordering::SeqCst) + n as u64,
            Direction::Down => state.down_bytes.fetch_add(n as u64, Ordering::SeqCst) + n as u64,
        };
        if dir == Direction::Down {
            match toxic {
                Some(Toxic::Reset { after_bytes }) if total >= after_bytes => {
                    // Close with the peer likely mid-read: on Linux a
                    // close with unread pending data sends a real RST.
                    counters.resets.fetch_add(1, Ordering::SeqCst);
                    state.dead.store(true, Ordering::SeqCst);
                    return;
                }
                Some(Toxic::HalfOpen { after_bytes })
                    if total >= after_bytes && !state.partitioned.swap(true, Ordering::SeqCst) =>
                {
                    counters.half_opens.fetch_add(1, Ordering::SeqCst);
                }
                _ => {}
            }
        }
    }
}

/// Convenience: a proxied address for a server, or the server's own
/// address when no proxy is wanted (healthy control clients).
pub fn front(server: &FrameServer, proxy: Option<&ToxicProxy>) -> SocketAddr {
    proxy
        .map(|p| p.addr())
        .or_else(|| server.addr())
        .expect("server in a socket-serving mode")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::QosRung;
    use crate::server::{RemoteViewer, ServerConfig, ViewerConfig, ViewerEnd};
    use std::time::Instant;

    #[test]
    fn plan_is_deterministic_and_half_healthy() {
        let plan = ToxicPlan::storm(0xfeed);
        let a: Vec<_> = (0..64).map(|i| plan.for_connection(i)).collect();
        let b: Vec<_> = (0..64).map(|i| plan.for_connection(i)).collect();
        assert_eq!(a, b, "pure function of (seed, idx)");
        let healthy = a.iter().filter(|t| t.is_none()).count();
        assert!(
            (16..=48).contains(&healthy),
            "roughly half healthy, got {healthy}/64"
        );
        // A different seed gives a different schedule.
        let plan2 = ToxicPlan::storm(0xbeef);
        let c: Vec<_> = (0..64).map(|i| plan2.for_connection(i)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn healthy_passthrough_preserves_the_stream() {
        let server = FrameServer::start(ServerConfig {
            handshake_deadline: Duration::from_millis(500),
            write_deadline: Duration::from_millis(500),
            ack_deadline: Duration::from_millis(500),
            ..ServerConfig::default()
        })
        .expect("bind");
        // A plan whose connection 0 is healthy.
        let mut seed = 1u64;
        while ToxicPlan::storm(seed).for_connection(0).is_some() {
            seed += 1;
        }
        let proxy =
            ToxicProxy::start(server.addr().expect("addr"), ToxicPlan::storm(seed)).expect("proxy");
        let stop = std::sync::atomic::AtomicBool::new(false);
        let mut viewer = RemoteViewer::new(proxy.addr(), ViewerConfig::loopback(1, 9));
        let h = std::thread::spawn({
            let server = server;
            move || {
                let t0 = Instant::now();
                while server.connected() == 0 && t0.elapsed() < Duration::from_secs(5) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                for i in 0..10u64 {
                    server.publish(
                        QosRung::TrackOnly,
                        crate::qos::encode_fix(&viz::EyeFix {
                            sim_minutes: i as f64,
                            lon: 80.0,
                            lat: 15.0,
                            pressure_hpa: 990.0,
                        })
                        .to_vec(),
                    );
                }
                std::thread::sleep(Duration::from_millis(300));
                server.drain()
            }
        });
        let end = viewer.run(&stop);
        let report = h.join().expect("drain");
        assert_eq!(end, ViewerEnd::Drained);
        assert_eq!(viewer.stats().delivered, 10, "nothing lost in transit");
        let c = report.counters;
        assert_eq!(c.frames_delivered + c.frames_shed, c.cursor_advance);
        let pr = proxy.shutdown();
        assert_eq!(pr.connections, 1);
        assert_eq!(pr.faulted, 0);
    }

    #[test]
    fn torn_handshake_is_survived_via_retry() {
        let server = FrameServer::start(ServerConfig {
            handshake_deadline: Duration::from_millis(300),
            write_deadline: Duration::from_millis(500),
            ack_deadline: Duration::from_millis(500),
            ..ServerConfig::default()
        })
        .expect("bind");
        // A plan whose connection 0 tears the handshake and whose
        // connection 1 is healthy.
        let mut seed = 1u64;
        loop {
            let plan = ToxicPlan::storm(seed);
            if matches!(plan.for_connection(0), Some(Toxic::TornHandshake { .. }))
                && plan.for_connection(1).is_none()
            {
                break;
            }
            seed += 1;
        }
        let proxy =
            ToxicProxy::start(server.addr().expect("addr"), ToxicPlan::storm(seed)).expect("proxy");
        let stop = std::sync::atomic::AtomicBool::new(false);
        let mut viewer = RemoteViewer::new(proxy.addr(), ViewerConfig::loopback(2, 10));
        let h = std::thread::spawn({
            let server = server;
            move || {
                let t0 = Instant::now();
                while server.connected() == 0 && t0.elapsed() < Duration::from_secs(10) {
                    std::thread::sleep(Duration::from_millis(5));
                }
                std::thread::sleep(Duration::from_millis(100));
                server.drain()
            }
        });
        let end = viewer.run(&stop);
        let report = h.join().expect("drain");
        assert_eq!(end, ViewerEnd::Drained, "second connection got through");
        let pr = proxy.shutdown();
        assert!(pr.torn_handshakes >= 1, "the tear actually happened");
        assert!(
            report.counters.handshake_failures >= 1,
            "server booked the short hello"
        );
    }
}
