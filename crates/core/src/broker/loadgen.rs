//! DES-modeled load generator for the fan-out broker: canonical
//! scenarios (thundering herd, outage/reconnect storm, flap squads), a
//! client-count sweep 10^3 → 10^5, and the CSV rendering behind
//! `results/fanout_load.csv`.

use super::{run_broker, BrokerConfig, BrokerOutcome, LoadEvent, LoadScenario};

/// Steady arrival of `clients` viewers over the first ten minutes —
/// the baseline everyone else perturbs.
pub fn steady_ramp(clients: u64) -> LoadScenario {
    LoadScenario::single(
        0.0,
        LoadEvent::ArrivalRamp {
            clients,
            over_secs: 600.0,
        },
    )
}

/// All `clients` arrive at the same instant — the admission gate's
/// worst case.
pub fn thundering_herd(clients: u64) -> LoadScenario {
    LoadScenario::single(
        0.0,
        LoadEvent::ArrivalRamp {
            clients,
            over_secs: 0.0,
        },
    )
}

/// The acceptance scenario: the fleet ramps in, then the WAN cuts every
/// session at the half-hour mark for `outage_secs`; the whole fleet
/// reconnects through backoff + admission and replays from its cursors.
pub fn outage_reconnect(clients: u64, outage_secs: f64) -> LoadScenario {
    steady_ramp(clients).then(
        1800.0,
        LoadEvent::MassDisconnect {
            frac: 1.0,
            outage_secs,
        },
    )
}

/// A ramped fleet plus a squad of flapping clients — breaker bait.
pub fn ramp_with_flappers(clients: u64, flappers: u64) -> LoadScenario {
    steady_ramp(clients).then(
        900.0,
        LoadEvent::FlapSquad {
            clients: flappers,
            period_secs: 45.0,
        },
    )
}

/// One row of the load sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Modeled client count.
    pub clients: u64,
    /// Scenario label.
    pub scenario: &'static str,
    /// Fraction of cursor advances that were sheds (0 = lossless).
    pub shed_rate: f64,
    /// Worst per-tick p99 staleness, seconds.
    pub p99_staleness_secs: f64,
    /// Total bytes served (live + catch-up).
    pub bytes: f64,
    /// Seconds from outage end to full fleet recovery (NaN if n/a).
    pub recovery_secs: f64,
    /// Longest admission wait, seconds.
    pub max_admission_wait_secs: f64,
    /// Deepest QoS rung any client reached.
    pub deepest_rung: u8,
    /// Live-frame starvation ticks (must be 0).
    pub starvation_ticks: u64,
    /// Whether the run ended drained.
    pub drained: bool,
}

impl SweepRow {
    /// Summarize one broker outcome.
    pub fn from_outcome(clients: u64, scenario: &'static str, out: &BrokerOutcome) -> Self {
        let advances = out.counters.cursor_advance;
        Self {
            clients,
            scenario,
            shed_rate: if advances > 0 {
                out.counters.frames_shed as f64 / advances as f64
            } else {
                0.0
            },
            p99_staleness_secs: out.p99_staleness_secs,
            bytes: out.live_bytes + out.catchup_bytes,
            recovery_secs: out.recovery_secs.unwrap_or(f64::NAN),
            max_admission_wait_secs: out.max_admission_wait_secs,
            deepest_rung: out.counters.deepest_rung,
            starvation_ticks: out.counters.starvation_ticks,
            drained: out.drained,
        }
    }
}

/// Sweep the outage/reconnect storm across fleet sizes, one row per
/// (size, scenario). `outage_secs` of 7200 is the pinned two-hour WAN
/// outage from the acceptance criteria.
pub fn sweep(fleet_sizes: &[u64], outage_secs: f64, seed: u64) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for &n in fleet_sizes {
        let ramp = run_broker(BrokerConfig::new(seed, steady_ramp(n)));
        rows.push(SweepRow::from_outcome(n, "steady_ramp", &ramp));
        let storm = run_broker(BrokerConfig::new(seed, outage_reconnect(n, outage_secs)));
        rows.push(SweepRow::from_outcome(n, "outage_reconnect", &storm));
    }
    rows
}

/// Render sweep rows as the `results/fanout_load.csv` document.
pub fn render_csv(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "clients,scenario,shed_rate,p99_staleness_secs,bytes,recovery_secs,\
         max_admission_wait_secs,deepest_rung,starvation_ticks,drained\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.6},{:.1},{:.3e},{:.1},{:.2},{},{},{}\n",
            r.clients,
            r.scenario,
            r.shed_rate,
            r.p99_staleness_secs,
            r.bytes,
            r.recovery_secs,
            r.max_admission_wait_secs,
            r.deepest_rung,
            r.starvation_ticks,
            r.drained,
        ));
    }
    out
}
