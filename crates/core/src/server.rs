//! Real-socket serving tier: TCP fan-out behind the broker core.
//!
//! The modeled broker ([`crate::broker`]) proved the *policies* — one
//! retention-bounded ring, per-client resume cursors, admission gating,
//! bulkheads, circuit breakers, catch-up pacing. This module is the
//! deployable half of that claim: a [`FrameServer`] tees the live
//! pipeline's frames into the same [`FrameLog`] ring and serves N
//! concurrent *socket* clients, so every policy has to survive real
//! partial writes, half-open peers, slow-loris readers, and
//! mid-handshake resets (which `tests/server_soak.rs` injects through
//! the seeded [`toxic`] proxy).
//!
//! ## Wire protocol (serving extensions over v3)
//!
//! The frame and ack framing is byte-identical to
//! [`crate::net_transport`] v3 (`AFR3` header with seq / length / CRC-32
//! / rung byte; 9-byte `+`-status acks). The serving tier adds a client
//! hello and an admission response in front of it, and one control
//! frame:
//!
//! ```text
//! client hello (client → server, once per connection):
//!     magic "AHL2" | u64 LE client id | u64 LE last-applied sequence
//! admission (server → client, once per connection):
//!     status byte | u64 LE value
//!         '+' admitted   — value = resume cursor serving starts from
//!         '~' deferred   — value = retry-after in milliseconds
//!         '!' rejected   — circuit breaker quarantined this client id
//!         '#' draining   — server is shutting down, try a replacement
//! control frame (server → client, AFR3 slot):
//!     magic "ACT1" | u64 LE value | u32 LE 0 | u32 LE 0 | u8 kind
//!         kind 1 = DRAIN — value is the client's resume cursor
//! ```
//!
//! Wire sequences are 1-based like v3 (`0` = nothing applied), so a
//! frame at ring sequence `s` travels with wire sequence `s + 1` and a
//! client whose last-applied is `c` holds ring cursor `c`.
//!
//! ## Robustness posture
//!
//! Every wire path is bounded: the client hello is read under one
//! overall handshake deadline (via the same deadline loop the sender
//! handshake uses, so a trickled hello cannot stretch it), frame writes
//! carry a write deadline, and acks an ack deadline. A deadline miss is
//! a *slow-client stall*: the breaker records a failure and the session's
//! backlog is handled by the configured [`ShedPolicy`] — `DropOldest`
//! keeps the cursor for resume, `DemoteToTrackOnly` pins the session to
//! fix-sized frames, `Disconnect` sheds the whole backlog to the head so
//! a kicked laggard cannot re-kick itself forever. Graceful drain stops
//! admissions, finishes serving every retained frame to connected
//! clients (still under the write deadlines), hands each a `DRAIN`
//! control carrying its resume cursor, and returns the cursor map so a
//! replacement server can be started at the same ring position with
//! [`FrameServer::start_resuming`].
//!
//! Conservation holds at the wire exactly as in the modeled broker:
//! `frames_delivered + frames_shed == cursor_advance`, checked by the
//! soak's invariant battery against hundreds of real loopback clients.

pub mod toxic;

use crate::broker::{Admission, AdmissionGate, BreakerConfig, FrameLog, ShedPolicy};
use crate::net_transport::{
    read_exact_deadline, TransportError, ACK_APPLIED, FRAME_MAGIC, HANDSHAKE_MAGIC, MAX_FRAME_BYTES,
};
use crate::qos::{self, QosRung};
use crate::resilience::{crc32, BackoffPolicy};
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use viz::TrackLog;

/// Magic for serving-tier control frames (rides in an `AFR3`-shaped
/// header slot so clients parse one header format).
pub const CONTROL_MAGIC: &[u8; 4] = b"ACT1";
/// Control kind: server is draining; the value field is the client's
/// resume cursor.
pub const CONTROL_DRAIN: u8 = 1;

const ADMIT_OK: u8 = b'+';
const ADMIT_DEFER: u8 = b'~';
const ADMIT_REJECT: u8 = b'!';
const ADMIT_DRAIN: u8 = b'#';

const HELLO_BYTES: usize = 20;
const HEADER_BYTES: usize = 21;
const ACK_BYTES: usize = 9;

/// How long accept/serve loops sleep when idle before re-checking flags.
const IDLE_TICK: Duration = Duration::from_millis(5);

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Where frames are consumed, after the martinstarkov simulation-server
/// split: purely in-process, both, or purely over sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingMode {
    /// In-process viewers only; no TCP listener is bound.
    Local,
    /// In-process viewers *and* socket clients share the ring.
    Hybrid,
    /// Socket clients only.
    Remote,
}

/// Tunables for one [`FrameServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Serving mode (listener bound unless [`ServingMode::Local`]).
    pub mode: ServingMode,
    /// Nominal frame size for ring byte accounting.
    pub frame_bytes: u64,
    /// Ring retention: at most this many frames replayable.
    pub retention_frames: u64,
    /// Per-client backlog bulkhead, frames.
    pub max_backlog_frames: u64,
    /// What happens to a client over the bulkhead (or stalled).
    pub shed: ShedPolicy,
    /// Admission gate sustained rate, sessions/second.
    pub admission_rate_per_sec: f64,
    /// Admission gate burst.
    pub admission_burst: u64,
    /// Circuit breaker for flapping / repeatedly failing clients.
    pub breaker: BreakerConfig,
    /// Overall deadline for reading the 20-byte client hello.
    pub handshake_deadline: Duration,
    /// Deadline for writing one frame to a client.
    pub write_deadline: Duration,
    /// Deadline for the client's ack after a frame.
    pub ack_deadline: Duration,
    /// Shared downlink budget, bytes/second (`0` = unpaced).
    pub link_bytes_per_sec: f64,
    /// Share of the link catch-up replay may use (live frames always
    /// draw on the full link, so catch-up can never starve them).
    pub catchup_share: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            mode: ServingMode::Remote,
            frame_bytes: qos::FIX_BYTES as u64,
            retention_frames: 512,
            max_backlog_frames: 128,
            shed: ShedPolicy::DropOldest,
            admission_rate_per_sec: 256.0,
            admission_burst: 64,
            breaker: BreakerConfig::default(),
            handshake_deadline: Duration::from_secs(2),
            write_deadline: Duration::from_secs(2),
            ack_deadline: Duration::from_secs(2),
            link_bytes_per_sec: 0.0,
            catchup_share: 0.5,
        }
    }
}

// ---------------------------------------------------------------------------
// Frame store: the broker ring plus retained bodies
// ---------------------------------------------------------------------------

/// One retained frame: its rung and encoded body, shared by reference so
/// N clients replaying it cost one allocation.
#[derive(Debug, Clone)]
struct StoredFrame {
    rung: QosRung,
    body: Arc<Vec<u8>>,
}

/// The modeled broker's counters-only [`FrameLog`] with real bodies
/// alongside: `bodies[i]` is ring sequence `base + tail + i`. `base`
/// lets a replacement server continue a drained predecessor's sequence
/// numbering without replaying its history.
#[derive(Debug)]
struct FrameStore {
    base: u64,
    log: FrameLog,
    bodies: VecDeque<StoredFrame>,
}

impl FrameStore {
    fn new(frame_bytes: u64, retention: u64, base: u64) -> Self {
        Self {
            base,
            log: FrameLog::new(frame_bytes, retention),
            bodies: VecDeque::new(),
        }
    }

    fn publish(&mut self, rung: QosRung, body: Arc<Vec<u8>>) -> u64 {
        let seq = self.base + self.log.append();
        self.bodies.push_back(StoredFrame { rung, body });
        while self.bodies.len() as u64 > self.log.len() {
            self.bodies.pop_front();
        }
        seq
    }

    fn head(&self) -> u64 {
        self.base + self.log.head()
    }

    fn tail(&self) -> u64 {
        self.base + self.log.tail()
    }

    fn get(&self, seq: u64) -> Option<StoredFrame> {
        if seq < self.tail() || seq >= self.head() {
            return None;
        }
        self.bodies.get((seq - self.tail()) as usize).cloned()
    }
}

// ---------------------------------------------------------------------------
// Counters and sessions
// ---------------------------------------------------------------------------

/// Wire-tier counters. The conservation invariant is
/// `frames_delivered + frames_shed == cursor_advance`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Hellos that were short, stalled, or carried the wrong magic.
    pub handshake_failures: u64,
    /// Sessions admitted (reconnects count again).
    pub admitted_sessions: u64,
    /// Admissions deferred by the gate.
    pub deferred_admissions: u64,
    /// Hellos refused because the client id is quarantined.
    pub rejected_quarantined: u64,
    /// Resumes whose cursor had expired past the ring tail.
    pub resume_failures: u64,
    /// Bulkhead shed events (any policy).
    pub bulkhead_sheds: u64,
    /// Sessions kicked by the `Disconnect` policy.
    pub bulkhead_disconnects: u64,
    /// Frame writes or acks that missed their deadline.
    pub slow_client_stalls: u64,
    /// Sessions pinned to track-only by `DemoteToTrackOnly`.
    pub demotions: u64,
    /// Client ids quarantined by the circuit breaker.
    pub quarantined_clients: u64,
    /// Frames acknowledged by socket clients (plus ack-loss
    /// fast-forwards, which were delivered even though the ack died).
    pub frames_delivered: u64,
    /// Frames skipped past a client's cursor without delivery.
    pub frames_shed: u64,
    /// Total cursor movement across all sessions.
    pub cursor_advance: u64,
    /// Most sockets connected at once.
    pub peak_connected: u64,
    /// Graceful drains completed.
    pub drains: u64,
}

/// Per-client-id state, surviving across that client's connections.
#[derive(Debug)]
struct Session {
    /// Ring cursor: next sequence to serve (== the client's last-applied
    /// wire sequence).
    cursor: u64,
    /// Pinned to track-only frames by `DemoteToTrackOnly`.
    pinned: bool,
    /// Breaker failure timestamps (seconds since server start).
    failures: VecDeque<f64>,
    /// Tripped breaker: refuse this id for the rest of the run.
    quarantined: bool,
    /// Bumped on every admission; a serving thread observing a newer
    /// generation exits instead of racing the replacement connection.
    generation: u64,
    /// A serving thread currently owns this session.
    connected: bool,
}

impl Session {
    fn new(cursor: u64) -> Self {
        Self {
            cursor,
            pinned: false,
            failures: VecDeque::new(),
            quarantined: false,
            generation: 0,
            connected: false,
        }
    }

    /// Record one breaker failure; returns true when the breaker trips.
    fn record_failure(&mut self, now: f64, cfg: &BreakerConfig) -> bool {
        self.failures.push_back(now);
        while let Some(&t) = self.failures.front() {
            if now - t > cfg.window_secs {
                self.failures.pop_front();
            } else {
                break;
            }
        }
        if !self.quarantined && self.failures.len() >= cfg.trip_after as usize {
            self.quarantined = true;
            return true;
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Link pacer
// ---------------------------------------------------------------------------

/// Two-pot token bucket over the shared downlink: live frames draw on
/// the main pot only; catch-up replay must also draw on the smaller
/// catch-up pot, so a storm of replaying laggards can never starve the
/// live stream — the wire-tier version of the broker's tick budget.
#[derive(Debug)]
struct LinkPacer {
    rate: f64,
    main: f64,
    catchup: f64,
    share: f64,
    last: Instant,
}

impl LinkPacer {
    fn new(rate: f64, share: f64, now: Instant) -> Self {
        Self {
            rate,
            main: rate.max(1.0),
            catchup: (rate * share).max(1.0),
            share,
            last: now,
        }
    }

    /// Try to take `bytes` from the pots; `true` on success. Refills
    /// from elapsed wall time, capped at one second of budget.
    fn try_acquire(&mut self, bytes: f64, is_catchup: bool) -> bool {
        if self.rate <= 0.0 {
            return true;
        }
        let now = Instant::now();
        let dt = now.duration_since(self.last).as_secs_f64();
        self.last = now;
        self.main = (self.main + dt * self.rate).min(self.rate.max(bytes));
        self.catchup =
            (self.catchup + dt * self.rate * self.share).min((self.rate * self.share).max(bytes));
        if self.main < bytes || (is_catchup && self.catchup < bytes) {
            return false;
        }
        self.main -= bytes;
        if is_catchup {
            self.catchup -= bytes;
        }
        true
    }
}

// ---------------------------------------------------------------------------
// Shared server state
// ---------------------------------------------------------------------------

struct Shared {
    cfg: ServerConfig,
    store: Mutex<FrameStore>,
    frame_cv: Condvar,
    gate: Mutex<AdmissionGate>,
    sessions: Mutex<HashMap<u64, Session>>,
    counters: Mutex<ServerCounters>,
    pacer: Mutex<LinkPacer>,
    draining: AtomicBool,
    stopped: AtomicBool,
    connected: AtomicU64,
    epoch: Instant,
}

impl Shared {
    fn now_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Record a breaker failure for `id`, bumping the quarantine counter
    /// on a trip.
    fn breaker_failure(&self, id: u64) {
        let now = self.now_secs();
        let mut sessions = self.sessions.lock().expect("sessions lock");
        if let Some(s) = sessions.get_mut(&id) {
            if s.record_failure(now, &self.cfg.breaker) {
                self.counters
                    .lock()
                    .expect("counters lock")
                    .quarantined_clients += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// What a graceful drain hands back: where every known client can
/// resume, and the final counters.
#[derive(Debug)]
pub struct DrainReport {
    /// Client id → resume cursor (ring sequence).
    pub resume_cursors: HashMap<u64, u64>,
    /// Final wire-tier counters.
    pub counters: ServerCounters,
    /// Ring head at drain: a replacement server should
    /// [`FrameServer::start_resuming`] from here.
    pub head: u64,
}

/// The TCP serving tier. Frames enter via [`publish`](Self::publish) (or
/// the [`ServingTransport`] tee) and fan out to socket clients and
/// [`LocalViewer`]s.
pub struct FrameServer {
    shared: Arc<Shared>,
    addr: Option<SocketAddr>,
    accept: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl FrameServer {
    /// Start a server at ring sequence zero.
    pub fn start(cfg: ServerConfig) -> Result<Self, std::io::Error> {
        Self::start_resuming(cfg, 0)
    }

    /// Start a server whose ring begins at `first_seq` — the `head` of a
    /// drained predecessor's [`DrainReport`] — so clients resuming with
    /// their old cursors line up without replaying history.
    pub fn start_resuming(cfg: ServerConfig, first_seq: u64) -> Result<Self, std::io::Error> {
        let epoch = Instant::now();
        let shared = Arc::new(Shared {
            store: Mutex::new(FrameStore::new(
                cfg.frame_bytes,
                cfg.retention_frames,
                first_seq,
            )),
            frame_cv: Condvar::new(),
            gate: Mutex::new(AdmissionGate::new(
                cfg.admission_rate_per_sec,
                cfg.admission_burst,
            )),
            sessions: Mutex::new(HashMap::new()),
            counters: Mutex::new(ServerCounters::default()),
            pacer: Mutex::new(LinkPacer::new(
                cfg.link_bytes_per_sec,
                cfg.catchup_share,
                epoch,
            )),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            connected: AtomicU64::new(0),
            epoch,
            cfg,
        });
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let (addr, accept) = if shared.cfg.mode == ServingMode::Local {
            (None, None)
        } else {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            listener.set_nonblocking(true)?;
            let addr = listener.local_addr()?;
            let sh = Arc::clone(&shared);
            let cn = Arc::clone(&conns);
            let handle = std::thread::Builder::new()
                .name("server-accept".into())
                .spawn(move || accept_loop(listener, sh, cn))
                .expect("spawn accept thread");
            (Some(addr), Some(handle))
        };
        Ok(Self {
            shared,
            addr,
            accept,
            conns,
        })
    }

    /// Listener address (None in [`ServingMode::Local`]).
    pub fn addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Publish one frame into the ring; returns its ring sequence.
    pub fn publish(&self, rung: QosRung, body: Vec<u8>) -> u64 {
        let seq = self
            .shared
            .store
            .lock()
            .expect("store lock")
            .publish(rung, Arc::new(body));
        self.shared.frame_cv.notify_all();
        seq
    }

    /// Next ring sequence to be published.
    pub fn head(&self) -> u64 {
        self.shared.store.lock().expect("store lock").head()
    }

    /// Snapshot of the wire-tier counters.
    pub fn counters(&self) -> ServerCounters {
        *self.shared.counters.lock().expect("counters lock")
    }

    /// Sockets currently connected.
    pub fn connected(&self) -> u64 {
        self.shared.connected.load(Ordering::SeqCst)
    }

    /// An in-process viewer sharing the ring ([`ServingMode::Local`] /
    /// [`ServingMode::Hybrid`]; `None` in pure remote mode).
    pub fn local_viewer(&self) -> Option<LocalViewer> {
        if self.shared.cfg.mode == ServingMode::Remote {
            return None;
        }
        let cursor = self.shared.store.lock().expect("store lock").tail();
        Some(LocalViewer {
            shared: Arc::clone(&self.shared),
            cursor,
            delivered: 0,
            track: TrackLog::default(),
        })
    }

    /// Graceful drain: stop admitting, let every serving thread finish
    /// the retained backlog (still under write deadlines), hand each
    /// client a `DRAIN` control with its resume cursor, then stop.
    pub fn drain(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.frame_cv.notify_all();
        let handles: Vec<_> = self.conns.lock().expect("conns lock").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        self.shared.stopped.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let resume_cursors = self
            .shared
            .sessions
            .lock()
            .expect("sessions lock")
            .iter()
            .map(|(&id, s)| (id, s.cursor))
            .collect();
        let head = self.shared.store.lock().expect("store lock").head();
        let counters = {
            let mut c = self.shared.counters.lock().expect("counters lock");
            c.drains += 1;
            *c
        };
        DrainReport {
            resume_cursors,
            counters,
            head,
        }
    }
}

impl Drop for FrameServer {
    fn drop(&mut self) {
        // Hard stop (no drain controls); `drain` consumed self if the
        // graceful path ran.
        self.shared.stopped.store(true, Ordering::SeqCst);
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.frame_cv.notify_all();
        let handles: Vec<_> = self.conns.lock().expect("conns lock").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Accept + serve
// ---------------------------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    loop {
        if shared.stopped.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let sh = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("server-conn".into())
                    .stack_size(256 * 1024)
                    .spawn(move || serve_connection(stream, sh))
                    .expect("spawn connection thread");
                let mut conns = conns.lock().expect("conns lock");
                // Reap finished connections here rather than only at
                // drain/drop, so reconnect storms on a long-lived server
                // don't grow the handle vector without bound.
                conns.retain(|h: &JoinHandle<()>| !h.is_finished());
                conns.push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_TICK);
            }
            Err(_) => std::thread::sleep(IDLE_TICK),
        }
    }
}

/// Read the client hello, run admission, then serve frames until the
/// client disconnects, stalls past a deadline, or the server drains.
fn serve_connection(mut stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.cfg.write_deadline));

    // --- hello, under one overall deadline -------------------------------
    let mut hello = [0u8; HELLO_BYTES];
    if read_exact_deadline(&mut stream, &mut hello, shared.cfg.handshake_deadline).is_err()
        || &hello[..4] != HANDSHAKE_MAGIC
    {
        shared
            .counters
            .lock()
            .expect("counters lock")
            .handshake_failures += 1;
        return;
    }
    let client_id = u64::from_le_bytes(hello[4..12].try_into().expect("8 bytes"));
    let hello_applied = u64::from_le_bytes(hello[12..20].try_into().expect("8 bytes"));

    // --- admission --------------------------------------------------------
    if shared.draining.load(Ordering::SeqCst) {
        let _ = write_admission(&mut stream, ADMIT_DRAIN, 0);
        return;
    }
    {
        let sessions = shared.sessions.lock().expect("sessions lock");
        if sessions.get(&client_id).is_some_and(|s| s.quarantined) {
            drop(sessions);
            shared
                .counters
                .lock()
                .expect("counters lock")
                .rejected_quarantined += 1;
            let _ = write_admission(&mut stream, ADMIT_REJECT, 0);
            return;
        }
    }
    match shared
        .gate
        .lock()
        .expect("gate lock")
        .request(shared.now_secs())
    {
        Admission::Admitted => {}
        Admission::Deferred { retry_after_secs } => {
            shared
                .counters
                .lock()
                .expect("counters lock")
                .deferred_admissions += 1;
            let ms = (retry_after_secs * 1000.0).ceil().max(1.0) as u64;
            let _ = write_admission(&mut stream, ADMIT_DEFER, ms);
            return;
        }
    }

    // --- resume: establish the session cursor ----------------------------
    let (tail, head) = {
        let store = shared.store.lock().expect("store lock");
        (store.tail(), store.head())
    };
    let (cursor, my_generation, pinned) = {
        let mut sessions = shared.sessions.lock().expect("sessions lock");
        let mut counters = shared.counters.lock().expect("counters lock");
        let session = sessions.entry(client_id).or_insert_with(|| {
            // First contact: a zero hello joins live at the head; a
            // non-zero hello (a drain handoff from a predecessor) keeps
            // its place — deliberately *not* clamped to the tail, so a
            // handoff cursor that already expired is caught by the
            // resume-expiry check below. Baseline placement is not a
            // cursor advance.
            Session::new(if hello_applied == 0 {
                head
            } else {
                hello_applied.min(head)
            })
        });
        // Lost acks: the client proves it applied further than we
        // booked. Those frames *were* delivered. `head` is a snapshot
        // taken before this lock, so a concurrent old-generation thread
        // for the same client id may already have committed a fresher
        // cursor past it (stall-shed to a newer head, reconnect race);
        // floor with the cursor *after* capping at the snapshot so the
        // bounds can never invert into a `clamp` panic.
        let acked = hello_applied.min(head).max(session.cursor);
        if acked > session.cursor {
            counters.frames_delivered += acked - session.cursor;
            counters.cursor_advance += acked - session.cursor;
            session.cursor = acked;
        }
        // Resume expiry: the ring moved past this cursor while the
        // client was away; the gap is shed and the breaker notices.
        if session.cursor < tail {
            counters.frames_shed += tail - session.cursor;
            counters.cursor_advance += tail - session.cursor;
            counters.resume_failures += 1;
            session.cursor = tail;
            drop(counters);
            let now = shared.now_secs();
            if session.record_failure(now, &shared.cfg.breaker) {
                shared
                    .counters
                    .lock()
                    .expect("counters lock")
                    .quarantined_clients += 1;
            }
            if session.quarantined {
                let _ = write_admission(&mut stream, ADMIT_REJECT, 0);
                return;
            }
            let mut counters = shared.counters.lock().expect("counters lock");
            counters.admitted_sessions += 1;
        } else {
            counters.admitted_sessions += 1;
        }
        session.generation += 1;
        session.connected = true;
        (session.cursor, session.generation, session.pinned)
    };
    if write_admission(&mut stream, ADMIT_OK, cursor).is_err() {
        session_disconnect(&shared, client_id, my_generation);
        return;
    }

    let live = shared.connected.fetch_add(1, Ordering::SeqCst) + 1;
    {
        let mut counters = shared.counters.lock().expect("counters lock");
        counters.peak_connected = counters.peak_connected.max(live);
    }
    serve_frames(
        &mut stream,
        &shared,
        client_id,
        my_generation,
        cursor,
        pinned,
    );
    shared.connected.fetch_sub(1, Ordering::SeqCst);
    session_disconnect(&shared, client_id, my_generation);
}

fn session_disconnect(shared: &Shared, client_id: u64, my_generation: u64) {
    let mut sessions = shared.sessions.lock().expect("sessions lock");
    if let Some(s) = sessions.get_mut(&client_id) {
        if s.generation == my_generation {
            s.connected = false;
        }
    }
}

/// The frame loop. `cursor` is owned locally and mirrored back into the
/// session under the sessions lock after every advance, guarded by the
/// generation so a replacement connection is never raced.
fn serve_frames(
    stream: &mut TcpStream,
    shared: &Shared,
    client_id: u64,
    my_generation: u64,
    mut cursor: u64,
    mut pinned: bool,
) {
    let cfg = &shared.cfg;
    loop {
        // --- wait for a frame (or drain) ---------------------------------
        let frame = {
            let mut store = shared.store.lock().expect("store lock");
            loop {
                if shared.stopped.load(Ordering::SeqCst) {
                    return;
                }
                let head = store.head();
                if cursor < head {
                    break;
                }
                if shared.draining.load(Ordering::SeqCst) {
                    // Backlog fully served: hand over the resume cursor.
                    drop(store);
                    let _ = write_control(stream, CONTROL_DRAIN, cursor);
                    return;
                }
                let (s, _t) = shared
                    .frame_cv
                    .wait_timeout(store, Duration::from_millis(50))
                    .expect("store lock");
                store = s;
            }

            // --- bulkhead -------------------------------------------------
            let head = store.head();
            let backlog = head - cursor;
            if backlog > cfg.max_backlog_frames {
                match cfg.shed {
                    ShedPolicy::DropOldest => {
                        let keep = cfg.max_backlog_frames;
                        let shed = backlog - keep;
                        cursor += shed;
                        let mut c = shared.counters.lock().expect("counters lock");
                        c.frames_shed += shed;
                        c.cursor_advance += shed;
                        c.bulkhead_sheds += 1;
                    }
                    ShedPolicy::DemoteToTrackOnly => {
                        if !pinned {
                            pinned = true;
                            let mut sessions = shared.sessions.lock().expect("sessions lock");
                            if let Some(s) = sessions.get_mut(&client_id) {
                                s.pinned = true;
                            }
                            shared.counters.lock().expect("counters lock").demotions += 1;
                        }
                        // Byte-equivalent cap: pinned frames are fix-sized,
                        // so the frame bulkhead scales by the rung's byte
                        // factor before oldest frames drop.
                        let byte_cap = (cfg.max_backlog_frames as f64
                            / QosRung::TrackOnly.byte_factor())
                            as u64;
                        if backlog > byte_cap {
                            let shed = backlog - byte_cap;
                            cursor += shed;
                            let mut c = shared.counters.lock().expect("counters lock");
                            c.frames_shed += shed;
                            c.cursor_advance += shed;
                            c.bulkhead_sheds += 1;
                        }
                    }
                    ShedPolicy::Disconnect => {
                        cursor = head;
                        {
                            let mut c = shared.counters.lock().expect("counters lock");
                            c.frames_shed += backlog;
                            c.cursor_advance += backlog;
                            c.bulkhead_sheds += 1;
                            c.bulkhead_disconnects += 1;
                        }
                        if !commit_cursor(shared, client_id, my_generation, cursor) {
                            return;
                        }
                        shared.breaker_failure(client_id);
                        return;
                    }
                }
                if !commit_cursor(shared, client_id, my_generation, cursor) {
                    return;
                }
            }

            match store.get(cursor) {
                Some(f) => f,
                None => {
                    // Evicted while we waited: resume expiry mid-session.
                    let tail = store.tail();
                    let shed = tail.saturating_sub(cursor);
                    cursor = tail.max(cursor);
                    let mut c = shared.counters.lock().expect("counters lock");
                    c.frames_shed += shed;
                    c.cursor_advance += shed;
                    c.resume_failures += 1;
                    drop(c);
                    if !commit_cursor(shared, client_id, my_generation, cursor) {
                        return;
                    }
                    continue;
                }
            }
        };

        // A pinned session only carries fix-sized frames: heavier bodies
        // are shed at the wire (the in-process broker demotes at encode
        // time; here the bytes are already encoded).
        if pinned && frame.rung != QosRung::TrackOnly {
            cursor += 1;
            {
                let mut c = shared.counters.lock().expect("counters lock");
                c.frames_shed += 1;
                c.cursor_advance += 1;
            }
            if !commit_cursor(shared, client_id, my_generation, cursor) {
                return;
            }
            continue;
        }

        // --- pace against the shared downlink -----------------------------
        let is_catchup = {
            let store = shared.store.lock().expect("store lock");
            store.head() - cursor > crate::broker::LIVE_LAG_FRAMES
        };
        let bytes = (HEADER_BYTES + frame.body.len()) as f64;
        let pace_deadline = Instant::now() + cfg.write_deadline;
        loop {
            if shared
                .pacer
                .lock()
                .expect("pacer lock")
                .try_acquire(bytes, is_catchup)
            {
                break;
            }
            if Instant::now() >= pace_deadline || shared.stopped.load(Ordering::SeqCst) {
                // Link saturated for a whole deadline: treat like a
                // stalled write so drain cannot hang on a starved pot.
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }

        // --- write the frame, read the ack, both under deadlines ----------
        let wire_seq = cursor + 1;
        if write_frame(stream, wire_seq, frame.rung, &frame.body).is_err() {
            stall(shared, client_id, my_generation, &mut cursor);
            return;
        }
        let mut ack = [0u8; ACK_BYTES];
        if read_exact_deadline(stream, &mut ack, cfg.ack_deadline).is_err() || ack[0] != ACK_APPLIED
        {
            stall(shared, client_id, my_generation, &mut cursor);
            return;
        }
        let acked = u64::from_le_bytes(ack[1..9].try_into().expect("8 bytes"));
        let advance = acked.clamp(cursor, wire_seq) - cursor;
        if advance > 0 {
            cursor += advance;
            let mut c = shared.counters.lock().expect("counters lock");
            c.frames_delivered += advance;
            c.cursor_advance += advance;
        }
        if !commit_cursor(shared, client_id, my_generation, cursor) {
            return;
        }
    }
}

/// A frame write or ack missed its deadline: book a slow-client stall,
/// apply the shed policy to the backlog, and notify the breaker.
fn stall(shared: &Shared, client_id: u64, my_generation: u64, cursor: &mut u64) {
    {
        let mut c = shared.counters.lock().expect("counters lock");
        c.slow_client_stalls += 1;
    }
    if shared.cfg.shed == ShedPolicy::Disconnect {
        // Kick with the backlog shed so the resume starts live.
        let head = shared.store.lock().expect("store lock").head();
        let shed = head.saturating_sub(*cursor);
        if shed > 0 {
            *cursor = head;
            let mut c = shared.counters.lock().expect("counters lock");
            c.frames_shed += shed;
            c.cursor_advance += shed;
        }
    }
    // DropOldest / DemoteToTrackOnly keep the cursor for resume.
    let _ = commit_cursor(shared, client_id, my_generation, *cursor);
    shared.breaker_failure(client_id);
}

/// Mirror the local cursor into the session; `false` when a newer
/// connection took the session over (this thread must stop touching it).
fn commit_cursor(shared: &Shared, client_id: u64, my_generation: u64, cursor: u64) -> bool {
    let mut sessions = shared.sessions.lock().expect("sessions lock");
    match sessions.get_mut(&client_id) {
        Some(s) if s.generation == my_generation => {
            s.cursor = cursor;
            true
        }
        _ => false,
    }
}

fn write_admission(stream: &mut TcpStream, status: u8, value: u64) -> std::io::Result<()> {
    let mut buf = [0u8; ACK_BYTES];
    buf[0] = status;
    buf[1..9].copy_from_slice(&value.to_le_bytes());
    stream.write_all(&buf)
}

fn write_frame(
    stream: &mut TcpStream,
    wire_seq: u64,
    rung: QosRung,
    body: &[u8],
) -> std::io::Result<()> {
    let mut header = [0u8; HEADER_BYTES];
    header[..4].copy_from_slice(FRAME_MAGIC);
    header[4..12].copy_from_slice(&wire_seq.to_le_bytes());
    header[12..16].copy_from_slice(&(body.len() as u32).to_le_bytes());
    header[16..20].copy_from_slice(&crc32(body).to_le_bytes());
    header[20] = rung.as_byte();
    stream.write_all(&header)?;
    stream.write_all(body)
}

fn write_control(stream: &mut TcpStream, kind: u8, value: u64) -> std::io::Result<()> {
    let mut header = [0u8; HEADER_BYTES];
    header[..4].copy_from_slice(CONTROL_MAGIC);
    header[4..12].copy_from_slice(&value.to_le_bytes());
    header[20] = kind;
    stream.write_all(&header)
}

// ---------------------------------------------------------------------------
// Local viewer (Local / Hybrid modes)
// ---------------------------------------------------------------------------

/// An in-process consumer sharing the ring with socket clients: the
/// "local" half of the hybrid serving split. No sockets, no copies
/// beyond the shared bodies.
pub struct LocalViewer {
    shared: Arc<Shared>,
    cursor: u64,
    delivered: u64,
    track: TrackLog,
}

impl LocalViewer {
    /// Apply every retained frame past the cursor; returns how many.
    pub fn drain_available(&mut self) -> u64 {
        let mut applied = 0;
        loop {
            let frame = {
                let store = self.shared.store.lock().expect("store lock");
                self.cursor = self.cursor.max(store.tail());
                if self.cursor >= store.head() {
                    return applied;
                }
                store.get(self.cursor)
            };
            let Some(frame) = frame else { continue };
            qos::apply_body(&mut self.track, frame.rung, &frame.body);
            self.cursor += 1;
            self.delivered += 1;
            applied += 1;
        }
    }

    /// Frames applied so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The accumulated track.
    pub fn into_track(self) -> TrackLog {
        self.track
    }
}

// ---------------------------------------------------------------------------
// Pipeline tee
// ---------------------------------------------------------------------------

use crate::engine::FrameTransport;
use wrf::WrfModel;

/// A [`FrameTransport`] tee publishing every parked frame's encoded body
/// into a [`FrameServer`]'s ring, while delegating all pipeline
/// semantics to the wrapped transport — the wire-tier sibling of
/// [`crate::broker::BrokerTransport`].
pub struct ServingTransport<T: FrameTransport> {
    inner: T,
    server: Arc<FrameServer>,
    /// Bodies emitted but not yet parked, in emit order, keyed by the
    /// frame's sim-time (strictly increasing across emits) so `park` can
    /// match bodies to committed frames instead of trusting FIFO order.
    pending: VecDeque<(u64, QosRung, Vec<u8>)>,
}

impl<T: FrameTransport> ServingTransport<T> {
    /// Wrap `inner`, teeing frames into `server`.
    pub fn new(inner: T, server: Arc<FrameServer>) -> Self {
        Self {
            inner,
            server,
            pending: VecDeque::new(),
        }
    }

    /// The shared server handle.
    pub fn server(&self) -> Arc<FrameServer> {
        Arc::clone(&self.server)
    }
}

impl<T: FrameTransport> FrameTransport for ServingTransport<T> {
    fn emit(
        &mut self,
        model: &WrfModel,
        sim_min: f64,
        modeled_bytes: u64,
        rung: QosRung,
    ) -> (u64, Vec<u8>) {
        let (disk, payload) = self.inner.emit(model, sim_min, modeled_bytes, rung);
        // The serving ring always carries a decodable body; when the
        // inner transport is modeled (empty payload) a fix-sized body
        // stands in so socket viewers still track the storm.
        let body = if payload.is_empty() {
            qos::encode_fix(&qos::model_fix(model)).to_vec()
        } else {
            payload.clone()
        };
        let served_rung = if payload.is_empty() {
            QosRung::TrackOnly
        } else {
            rung
        };
        self.pending
            .push_back((sim_min.to_bits(), served_rung, body));
        (disk, payload)
    }

    fn decision_frame_bytes(&self, modeled_bytes: u64) -> u64 {
        self.inner.decision_frame_bytes(modeled_bytes)
    }

    fn park(&mut self, id: u64, sim_min: f64, payload: Vec<u8>) {
        // Publish the pending body for *this* frame, identified by its
        // sim-time (`sim_min` crosses the engine's `FrameDone` event
        // bit-exact and strictly increases across emits). Older leftover
        // bodies belong to frames that were emitted but never committed
        // (full-disk drop: no `park` follows), so they are discarded
        // rather than published under the wrong ring sequence.
        let key = sim_min.to_bits();
        while self
            .pending
            .front()
            .is_some_and(|&(pending_key, _, _)| f64::from_bits(pending_key) < sim_min)
        {
            self.pending.pop_front();
        }
        match self.pending.front() {
            Some(&(pending_key, _, _)) if pending_key == key => {
                let (_, rung, body) = self.pending.pop_front().expect("front checked");
                self.server.publish(rung, body);
            }
            newer => debug_assert!(
                newer.is_none(),
                "serving tee parked frame {id} out of emit order"
            ),
        }
        self.inner.park(id, sim_min, payload);
    }

    fn deliver(&mut self, id: u64, sim_min: f64) -> bool {
        self.inner.deliver(id, sim_min)
    }

    fn applied_watermark(&self) -> u64 {
        self.inner.applied_watermark()
    }

    fn finish(&mut self) -> TrackLog {
        self.inner.finish()
    }
}

// ---------------------------------------------------------------------------
// Remote viewer (the wire client)
// ---------------------------------------------------------------------------

/// Why a [`RemoteViewer`] run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewerEnd {
    /// The server drained; the viewer holds its resume cursor.
    Drained,
    /// The stop flag was raised by the caller.
    Stopped,
    /// The reconnect wall-clock budget ran out.
    BudgetExhausted,
    /// The server quarantined this client id.
    Rejected,
}

/// Wire-client statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ViewerStats {
    /// Frames freshly applied.
    pub delivered: u64,
    /// Replays at or below the watermark (lost-ack redeliveries).
    pub deduped: u64,
    /// Frames the server skipped past this client (shed gaps).
    pub shed: u64,
    /// Connections established after the first.
    pub reconnects: u64,
    /// Admissions deferred by the gate.
    pub deferrals: u64,
    /// Wire-level `DRAIN` controls received: the server served this
    /// client its full backlog before handing over the resume cursor.
    pub drains: u64,
    /// Admissions refused with the draining status: the server was
    /// already going away, so the viewer keeps its watermark as the
    /// resume cursor without having been caught up first.
    pub drain_turnaways: u64,
    /// Bodies whose CRC passed but whose decode failed.
    pub decode_failures: u64,
}

/// Configuration for a [`RemoteViewer`].
#[derive(Debug, Clone)]
pub struct ViewerConfig {
    /// Client id carried in the hello (stable across reconnects).
    pub client_id: u64,
    /// Socket connect/read/write timeout.
    pub io_timeout: Duration,
    /// Reconnect backoff (give it a `max_total_delay` so a vanished
    /// server exhausts in bounded wall time).
    pub backoff: BackoffPolicy,
}

impl ViewerConfig {
    /// A viewer with snappy timeouts suitable for loopback tests.
    pub fn loopback(client_id: u64, seed: u64) -> Self {
        Self {
            client_id,
            io_timeout: Duration::from_millis(500),
            backoff: BackoffPolicy::new(seed)
                .with_base(Duration::from_millis(5))
                .with_cap(Duration::from_millis(100))
                .with_max_attempts(u32::MAX)
                .with_max_total_delay(Duration::from_secs(10)),
        }
    }
}

/// A real socket client: connects, speaks the serving handshake, applies
/// frames into a [`TrackLog`] with exactly-once semantics, acks, and
/// reconnects through backoff when the link dies.
pub struct RemoteViewer {
    addr: SocketAddr,
    cfg: ViewerConfig,
    last_applied: u64,
    ever_connected: bool,
    stats: ViewerStats,
    applied_seqs: Vec<u64>,
    track: TrackLog,
}

impl RemoteViewer {
    /// New viewer against a server (or a fault proxy in front of one).
    pub fn new(addr: SocketAddr, cfg: ViewerConfig) -> Self {
        Self {
            addr,
            cfg,
            last_applied: 0,
            ever_connected: false,
            stats: ViewerStats::default(),
            applied_seqs: Vec::new(),
            track: TrackLog::default(),
        }
    }

    /// Point future reconnects somewhere else (a replacement server).
    pub fn set_addr(&mut self, addr: SocketAddr) {
        self.addr = addr;
    }

    /// Wire watermark (last applied wire sequence == ring cursor).
    pub fn last_applied(&self) -> u64 {
        self.last_applied
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ViewerStats {
        self.stats
    }

    /// Every wire sequence applied, in application order.
    pub fn applied_seqs(&self) -> &[u64] {
        &self.applied_seqs
    }

    /// The accumulated track.
    pub fn track(&self) -> &TrackLog {
        &self.track
    }

    /// Run until the server drains, the caller raises `stop`, the
    /// reconnect budget exhausts, or the server rejects this client.
    pub fn run(&mut self, stop: &AtomicBool) -> ViewerEnd {
        let mut attempt = 0u32;
        loop {
            if stop.load(Ordering::SeqCst) {
                return ViewerEnd::Stopped;
            }
            match self.connect_once(stop) {
                Ok(ConnEnd::Drained) => return ViewerEnd::Drained,
                Ok(ConnEnd::Stopped) => return ViewerEnd::Stopped,
                Ok(ConnEnd::Rejected) => return ViewerEnd::Rejected,
                Ok(ConnEnd::Deferred(ms)) => {
                    self.stats.deferrals += 1;
                    // The gate reserved a distinct retry slot; honor it
                    // (capped so tests stay fast) instead of backoff.
                    std::thread::sleep(Duration::from_millis(ms.min(2_000)));
                    continue;
                }
                Ok(ConnEnd::Interrupted) => {
                    // The session was admitted before dying; reset the
                    // backoff ladder.
                    attempt = 0;
                }
                Err(_) => {}
            }
            attempt += 1;
            match self.cfg.backoff.checked_delay(attempt.saturating_sub(1)) {
                Some(d) => std::thread::sleep(d),
                None => return ViewerEnd::BudgetExhausted,
            }
        }
    }

    fn connect_once(&mut self, stop: &AtomicBool) -> Result<ConnEnd, TransportError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.cfg.io_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_write_timeout(Some(self.cfg.io_timeout))?;

        // Hello + admission.
        let mut hello = [0u8; HELLO_BYTES];
        hello[..4].copy_from_slice(HANDSHAKE_MAGIC);
        hello[4..12].copy_from_slice(&self.cfg.client_id.to_le_bytes());
        hello[12..20].copy_from_slice(&self.last_applied.to_le_bytes());
        stream.write_all(&hello)?;
        let mut admission = [0u8; ACK_BYTES];
        read_exact_deadline(&mut stream, &mut admission, self.cfg.io_timeout)?;
        let value = u64::from_le_bytes(admission[1..9].try_into().expect("8 bytes"));
        match admission[0] {
            ADMIT_OK => {}
            ADMIT_DEFER => return Ok(ConnEnd::Deferred(value)),
            ADMIT_REJECT => return Ok(ConnEnd::Rejected),
            ADMIT_DRAIN => {
                self.stats.drain_turnaways += 1;
                return Ok(ConnEnd::Drained);
            }
            _ => return Err(TransportError::Handshake("bad admission status")),
        }
        if self.ever_connected {
            self.stats.reconnects += 1;
        }
        self.ever_connected = true;
        // The server's cursor may sit past our watermark (resume expiry
        // while away): that gap is shed, not silence.
        if value > self.last_applied {
            self.stats.shed += value - self.last_applied;
            self.last_applied = value;
        }

        // Frame loop.
        loop {
            if stop.load(Ordering::SeqCst) {
                return Ok(ConnEnd::Stopped);
            }
            let mut header = [0u8; HEADER_BYTES];
            if read_exact_deadline(&mut stream, &mut header, self.cfg.io_timeout).is_err() {
                return Ok(ConnEnd::Interrupted);
            }
            let value = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
            if &header[..4] == CONTROL_MAGIC {
                if header[20] == CONTROL_DRAIN {
                    self.stats.drains += 1;
                    if value > self.last_applied {
                        self.stats.shed += value - self.last_applied;
                        self.last_applied = value;
                    }
                    return Ok(ConnEnd::Drained);
                }
                continue;
            }
            if &header[..4] != FRAME_MAGIC {
                return Ok(ConnEnd::Interrupted);
            }
            let wire_seq = value;
            let len = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
            let Some(rung) = QosRung::from_byte(header[20]) else {
                return Ok(ConnEnd::Interrupted);
            };
            if len > MAX_FRAME_BYTES {
                return Ok(ConnEnd::Interrupted);
            }
            let mut body = vec![0u8; len as usize];
            if read_exact_deadline(&mut stream, &mut body, self.cfg.io_timeout).is_err() {
                return Ok(ConnEnd::Interrupted);
            }
            if crc32(&body) != crc {
                // Torn mid-stream by a fault: drop the connection and
                // resume from the watermark rather than apply garbage.
                return Ok(ConnEnd::Interrupted);
            }
            if wire_seq <= self.last_applied {
                self.stats.deduped += 1;
            } else {
                if wire_seq > self.last_applied + 1 {
                    self.stats.shed += wire_seq - 1 - self.last_applied;
                }
                if qos::apply_body(&mut self.track, rung, &body) {
                    self.stats.delivered += 1;
                    self.applied_seqs.push(wire_seq);
                } else {
                    self.stats.decode_failures += 1;
                }
                self.last_applied = wire_seq;
            }
            let mut ack = [0u8; ACK_BYTES];
            ack[0] = ACK_APPLIED;
            ack[1..9].copy_from_slice(&self.last_applied.to_le_bytes());
            if stream.write_all(&ack).is_err() {
                return Ok(ConnEnd::Interrupted);
            }
        }
    }
}

enum ConnEnd {
    Drained,
    Stopped,
    Rejected,
    Deferred(u64),
    Interrupted,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::{decode_fix, encode_fix};
    use std::io::Read;
    use viz::EyeFix;

    fn fix(i: u64) -> EyeFix {
        EyeFix {
            sim_minutes: i as f64,
            lon: 80.0 + i as f64 * 0.01,
            lat: 15.0 + i as f64 * 0.005,
            pressure_hpa: 990.0 - (i % 50) as f64,
        }
    }

    fn fix_body(i: u64) -> Vec<u8> {
        encode_fix(&fix(i)).to_vec()
    }

    fn quick_cfg() -> ServerConfig {
        ServerConfig {
            handshake_deadline: Duration::from_millis(500),
            write_deadline: Duration::from_millis(500),
            ack_deadline: Duration::from_millis(500),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn one_client_applies_every_frame_byte_identically() {
        let server = FrameServer::start(quick_cfg()).expect("bind");
        let addr = server.addr().expect("remote mode");
        for i in 0..20 {
            server.publish(QosRung::TrackOnly, fix_body(i));
        }
        let stop = AtomicBool::new(false);
        let mut viewer = RemoteViewer::new(addr, ViewerConfig::loopback(1, 42));
        let handle = std::thread::spawn({
            let server = server;
            move || {
                // Let the viewer connect and catch up, then drain.
                std::thread::sleep(Duration::from_millis(200));
                server.drain()
            }
        });
        let end = viewer.run(&stop);
        let report = handle.join().expect("drain");
        assert_eq!(end, ViewerEnd::Drained);
        // A fresh (hello=0) client joins at the live head — which was 20
        // at connect time, so it sees nothing new before the drain. A
        // *resuming* client replays. Check the conservation identity.
        let c = report.counters;
        assert_eq!(
            c.frames_delivered + c.frames_shed,
            c.cursor_advance,
            "wire conservation"
        );
    }

    #[test]
    fn resuming_client_replays_from_its_cursor_byte_identically() {
        let server = FrameServer::start(quick_cfg()).expect("bind");
        let addr = server.addr().expect("remote mode");
        let stop = Arc::new(AtomicBool::new(false));
        let mut viewer = RemoteViewer::new(addr, ViewerConfig::loopback(7, 43));
        // Connect first (cursor parks at head 0), then publish.
        let v = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let end = viewer.run(&stop);
                (viewer, end)
            }
        });
        let t0 = Instant::now();
        while server.connected() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        for i in 0..30 {
            server.publish(QosRung::TrackOnly, fix_body(i));
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(300));
        let report = server.drain();
        let (viewer, end) = v.join().expect("viewer");
        assert_eq!(end, ViewerEnd::Drained);
        assert_eq!(viewer.stats().delivered, 30, "every frame applied once");
        assert_eq!(viewer.last_applied(), 30);
        assert_eq!(report.resume_cursors.get(&7), Some(&30));
        // Byte-identical: the track is exactly the published fixes.
        let fixes = viewer.track().fixes();
        assert_eq!(fixes.len(), 30);
        for (i, f) in fixes.iter().enumerate() {
            assert_eq!(
                encode_fix(f),
                encode_fix(&fix(i as u64)),
                "fix {i} bit-exact"
            );
        }
        let c = report.counters;
        assert_eq!(c.frames_delivered + c.frames_shed, c.cursor_advance);
        assert_eq!(c.frames_delivered, 30);
        assert_eq!(c.frames_shed, 0);
    }

    #[test]
    fn expired_resume_sheds_the_gap_and_counts_a_resume_failure() {
        let cfg = ServerConfig {
            retention_frames: 8,
            ..quick_cfg()
        };
        let server = FrameServer::start(cfg).expect("bind");
        let addr = server.addr().expect("remote mode");
        // A client that applied 2 frames long ago...
        for i in 0..2 {
            server.publish(QosRung::TrackOnly, fix_body(i));
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut viewer = RemoteViewer::new(addr, ViewerConfig::loopback(9, 44));
        {
            let stop2 = Arc::clone(&stop);
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(250));
                stop2.store(true, Ordering::SeqCst);
            });
            let end = viewer.run(&stop);
            assert_eq!(end, ViewerEnd::Stopped);
            h.join().expect("stopper");
        }
        assert_eq!(viewer.last_applied(), 2);
        // ...comes back after the ring rolled far past its cursor.
        for i in 2..40 {
            server.publish(QosRung::TrackOnly, fix_body(i));
        }
        stop.store(false, Ordering::SeqCst);
        let h = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let end = viewer.run(&stop);
                (viewer, end)
            }
        });
        std::thread::sleep(Duration::from_millis(300));
        let report = server.drain();
        let (viewer, end) = h.join().expect("viewer");
        assert_eq!(end, ViewerEnd::Drained);
        let c = report.counters;
        assert!(c.resume_failures >= 1, "expired cursor noticed");
        assert!(viewer.stats().shed >= 30, "the gap is shed, not silent");
        assert_eq!(viewer.last_applied(), 40, "caught up to the head");
        assert_eq!(c.frames_delivered + c.frames_shed, c.cursor_advance);
        // Exactly-once even across the gap.
        let seqs = viewer.applied_seqs();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
    }

    #[test]
    fn slow_client_stall_is_shed_not_a_hang() {
        let cfg = ServerConfig {
            write_deadline: Duration::from_millis(200),
            ack_deadline: Duration::from_millis(200),
            shed: ShedPolicy::Disconnect,
            ..quick_cfg()
        };
        let server = FrameServer::start(cfg).expect("bind");
        let addr = server.addr().expect("remote mode");
        server.publish(QosRung::TrackOnly, fix_body(0));
        // A hand-rolled client that connects, hellos, then never acks.
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut hello = [0u8; HELLO_BYTES];
        hello[..4].copy_from_slice(HANDSHAKE_MAGIC);
        hello[4..12].copy_from_slice(&77u64.to_le_bytes());
        stream.write_all(&hello).expect("hello");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut admission = [0u8; ACK_BYTES];
        stream.read_exact(&mut admission).expect("admission");
        assert_eq!(admission[0], ADMIT_OK);
        // New frame arrives; we read it but never ack.
        server.publish(QosRung::TrackOnly, fix_body(1));
        let mut header = [0u8; HEADER_BYTES];
        stream.read_exact(&mut header).expect("frame header");
        let started = Instant::now();
        loop {
            if server.counters().slow_client_stalls >= 1 {
                break;
            }
            assert!(
                started.elapsed() < Duration::from_secs(3),
                "stall must be detected within the ack deadline"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        let report = server.drain();
        let c = report.counters;
        assert!(c.slow_client_stalls >= 1);
        assert_eq!(c.frames_delivered + c.frames_shed, c.cursor_advance);
    }

    #[test]
    fn quarantine_rejects_a_flapping_client() {
        let cfg = ServerConfig {
            breaker: BreakerConfig {
                trip_after: 2,
                window_secs: 600.0,
            },
            retention_frames: 4,
            ..quick_cfg()
        };
        let server = FrameServer::start(cfg).expect("bind");
        let addr = server.addr().expect("remote mode");
        // Two expired resumes in a row trip the breaker for id 5.
        for round in 0..2u64 {
            for i in 0..8 {
                server.publish(QosRung::TrackOnly, fix_body(round * 8 + i));
            }
            let mut stream = TcpStream::connect(addr).expect("connect");
            let mut hello = [0u8; HELLO_BYTES];
            hello[..4].copy_from_slice(HANDSHAKE_MAGIC);
            hello[4..12].copy_from_slice(&5u64.to_le_bytes());
            hello[12..20].copy_from_slice(&1u64.to_le_bytes());
            stream.write_all(&hello).expect("hello");
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .expect("timeout");
            let mut admission = [0u8; ACK_BYTES];
            stream.read_exact(&mut admission).expect("admission");
            if round == 0 {
                assert_eq!(admission[0], ADMIT_OK, "first expiry is tolerated");
            } else {
                assert_eq!(admission[0], ADMIT_REJECT, "breaker tripped");
            }
        }
        let c = server.counters();
        assert_eq!(c.quarantined_clients, 1);
        // Round 0 books one expired resume; the unacked frame that
        // follows books a stall — both count toward the trip.
        assert!(c.resume_failures >= 1);
    }

    #[test]
    fn hybrid_mode_serves_local_and_remote_from_one_ring() {
        let cfg = ServerConfig {
            mode: ServingMode::Hybrid,
            ..quick_cfg()
        };
        let server = FrameServer::start(cfg).expect("bind");
        let addr = server.addr().expect("hybrid binds a listener");
        let mut local = server.local_viewer().expect("hybrid has local viewers");
        let stop = Arc::new(AtomicBool::new(false));
        let mut viewer = RemoteViewer::new(addr, ViewerConfig::loopback(3, 45));
        let h = std::thread::spawn({
            let stop = Arc::clone(&stop);
            move || {
                let end = viewer.run(&stop);
                (viewer, end)
            }
        });
        let t0 = Instant::now();
        while server.connected() == 0 && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(5));
        }
        for i in 0..10 {
            server.publish(QosRung::TrackOnly, fix_body(i));
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(local.drain_available(), 10, "local path sees the ring");
        let _ = server.drain();
        let (viewer, end) = h.join().expect("viewer");
        assert_eq!(end, ViewerEnd::Drained);
        assert_eq!(viewer.stats().delivered, 10, "remote path sees the ring");
        let local_track = local.into_track();
        assert_eq!(local_track.fixes().len(), 10);
        // Both consumers decoded the same bytes.
        for (a, b) in local_track.fixes().iter().zip(viewer.track().fixes()) {
            assert_eq!(encode_fix(a), encode_fix(b));
        }
    }

    #[test]
    fn local_mode_binds_no_listener() {
        let cfg = ServerConfig {
            mode: ServingMode::Local,
            ..quick_cfg()
        };
        let server = FrameServer::start(cfg).expect("no bind needed");
        assert!(server.addr().is_none());
        let mut local = server.local_viewer().expect("local viewers");
        server.publish(QosRung::TrackOnly, fix_body(0));
        assert_eq!(local.drain_available(), 1);
        let f = decode_fix(&fix_body(0)).expect("decodable");
        assert_eq!(encode_fix(&local.into_track().fixes()[0]), encode_fix(&f));
    }

    #[test]
    fn draining_admission_turns_new_clients_away() {
        let server = FrameServer::start(quick_cfg()).expect("bind");
        let addr = server.addr().expect("remote mode");
        // Start the drain with no clients; it completes immediately, but
        // the listener answers '#' until the accept loop stops.
        let shared = Arc::clone(&server.shared);
        shared.draining.store(true, Ordering::SeqCst);
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut hello = [0u8; HELLO_BYTES];
        hello[..4].copy_from_slice(HANDSHAKE_MAGIC);
        hello[4..12].copy_from_slice(&1u64.to_le_bytes());
        stream.write_all(&hello).expect("hello");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut admission = [0u8; ACK_BYTES];
        stream.read_exact(&mut admission).expect("admission");
        assert_eq!(admission[0], ADMIT_DRAIN);
        let _ = server.drain();
    }

    #[test]
    fn stale_head_snapshot_reconnect_does_not_invert_cursor_bounds() {
        // A reconnect reads the store head, then can lose the
        // sessions-lock race to an old-generation serving thread that
        // commits the same client's cursor *past* that snapshot
        // (stall-shed to a fresher head after new publishes). The
        // admission path must tolerate cursor > head-snapshot instead of
        // panicking in `clamp` (min > max) while holding the sessions
        // and counters mutexes — one racy reconnect would poison them
        // and crash the whole server.
        let server = FrameServer::start(quick_cfg()).expect("bind");
        let addr = server.addr().expect("remote mode");
        for _ in 0..3 {
            server.publish(QosRung::FullRes, vec![0u8; 16]);
        }
        let head = server.head();
        // The racing old-generation commit: cursor beyond the head this
        // connection is about to snapshot.
        server
            .shared
            .sessions
            .lock()
            .expect("sessions lock")
            .insert(9, Session::new(head + 5));
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut hello = [0u8; HELLO_BYTES];
        hello[..4].copy_from_slice(HANDSHAKE_MAGIC);
        hello[4..12].copy_from_slice(&9u64.to_le_bytes());
        // An applied watermark between the snapshot and the cursor:
        // exactly the inverted clamp bounds.
        hello[12..20].copy_from_slice(&(head + 3).to_le_bytes());
        stream.write_all(&hello).expect("hello");
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut admission = [0u8; ACK_BYTES];
        stream.read_exact(&mut admission).expect("admission");
        assert_eq!(admission[0], ADMIT_OK, "admitted without panicking");
        let cursor = u64::from_le_bytes(admission[1..9].try_into().expect("8 bytes"));
        assert_eq!(cursor, head + 5, "the fresher cursor never moves backward");
        drop(stream);
        let _ = server.drain();
    }

    #[test]
    fn serving_transport_tees_pipeline_frames_into_the_ring() {
        use crate::engine::ModeledTransport;
        use wrf::ModelConfig;

        let cfg = ServerConfig {
            mode: ServingMode::Local,
            ..quick_cfg()
        };
        let server = Arc::new(FrameServer::start(cfg).expect("no bind"));
        let mut tee = ServingTransport::new(ModeledTransport, Arc::clone(&server));
        let mut model =
            WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid");
        let mut local = server.local_viewer().expect("local viewer");
        for i in 0..3 {
            model
                .advance_to_minutes(model.sim_minutes() + 60.0, 1)
                .expect("finite");
            let (_, payload) = tee.emit(&model, model.sim_minutes(), 1_000_000, QosRung::FullRes);
            tee.park(i, model.sim_minutes(), payload);
        }
        assert_eq!(server.head(), 3, "every parked frame published");
        assert_eq!(local.drain_available(), 3);
        let (lon, lat) = model.eye_lonlat();
        let last = *local.into_track().fixes().last().expect("fixes");
        assert_eq!(last.lon, lon, "modeled tee serves the true fix");
        assert_eq!(last.lat, lat);
    }
}
