//! The job handler: simulation-process lifecycle.
//!
//! "The job handler starts, stops and restarts the simulation process
//! whenever the application configuration changes" and stalls it while
//! the CRITICAL flag is set. This module is the explicit state machine
//! for that lifecycle — the orchestrator (and the online mode) drive it
//! and it enforces that transitions are legal and counted.

/// Where the simulation process is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimProcessState {
    /// Solving time steps (or writing output).
    Running,
    /// Stalled on the CRITICAL flag / a full disk.
    Stalled,
    /// Stopped; being rescheduled with a new configuration.
    Restarting,
}

/// Lifecycle state machine with transition counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobHandler {
    state: SimProcessState,
    restarts: u32,
    stalls: u32,
}

impl Default for JobHandler {
    fn default() -> Self {
        Self::new()
    }
}

impl JobHandler {
    /// The simulation starts out running.
    pub fn new() -> Self {
        JobHandler {
            state: SimProcessState::Running,
            restarts: 0,
            stalls: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> SimProcessState {
        self.state
    }

    /// Completed restarts so far.
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Stall episodes so far.
    pub fn stalls(&self) -> u32 {
        self.stalls
    }

    /// True when the process is advancing the simulation.
    pub fn is_running(&self) -> bool {
        self.state == SimProcessState::Running
    }

    /// Stop the process for rescheduling with a new configuration.
    ///
    /// # Panics
    /// If a restart is already in flight (the handler serializes
    /// restarts; overlapping ones indicate an orchestration bug).
    pub fn begin_restart(&mut self) {
        assert_ne!(
            self.state,
            SimProcessState::Restarting,
            "restart already in flight"
        );
        self.state = SimProcessState::Restarting;
    }

    /// The rescheduled process is up again.
    ///
    /// # Panics
    /// If no restart was in flight.
    pub fn finish_restart(&mut self) {
        assert_eq!(
            self.state,
            SimProcessState::Restarting,
            "no restart in flight"
        );
        self.restarts += 1;
        self.state = SimProcessState::Running;
    }

    /// Stall on CRITICAL. Stalling while restarting is legal (the new
    /// process comes up stalled); stalling twice is idempotent.
    pub fn stall(&mut self) {
        if self.state != SimProcessState::Stalled {
            self.stalls += 1;
            self.state = SimProcessState::Stalled;
        }
    }

    /// Resume from a stall.
    ///
    /// # Panics
    /// If the process is not stalled.
    pub fn resume(&mut self) {
        assert_eq!(self.state, SimProcessState::Stalled, "not stalled");
        self.state = SimProcessState::Running;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_running() {
        let h = JobHandler::new();
        assert!(h.is_running());
        assert_eq!(h.restarts(), 0);
        assert_eq!(h.stalls(), 0);
    }

    #[test]
    fn restart_cycle_counts() {
        let mut h = JobHandler::new();
        h.begin_restart();
        assert_eq!(h.state(), SimProcessState::Restarting);
        assert!(!h.is_running());
        h.finish_restart();
        assert!(h.is_running());
        assert_eq!(h.restarts(), 1);
    }

    #[test]
    fn stall_resume_cycle_counts() {
        let mut h = JobHandler::new();
        h.stall();
        h.stall(); // idempotent
        assert_eq!(h.stalls(), 1);
        assert_eq!(h.state(), SimProcessState::Stalled);
        h.resume();
        assert!(h.is_running());
        h.stall();
        assert_eq!(h.stalls(), 2);
    }

    #[test]
    #[should_panic(expected = "restart already in flight")]
    fn double_restart_panics() {
        let mut h = JobHandler::new();
        h.begin_restart();
        h.begin_restart();
    }

    #[test]
    #[should_panic(expected = "no restart in flight")]
    fn finish_without_begin_panics() {
        let mut h = JobHandler::new();
        h.finish_restart();
    }

    #[test]
    #[should_panic(expected = "not stalled")]
    fn resume_without_stall_panics() {
        let mut h = JobHandler::new();
        h.resume();
    }

    #[test]
    fn stall_during_restart_is_legal() {
        let mut h = JobHandler::new();
        h.begin_restart();
        h.stall();
        assert_eq!(h.state(), SimProcessState::Stalled);
        h.resume();
        assert!(h.is_running());
    }
}
