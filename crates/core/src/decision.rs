//! Decision algorithms for the application manager.
//!
//! Both algorithms answer the same question every epoch — *how many
//! processors, and how often should the simulation write output?* — from
//! the same observations: free disk space, measured bandwidth, the
//! profiled time-per-step table, and the frame cost at the current
//! resolution.

mod fixed;
mod greedy;
mod optimize;

pub use fixed::StaticBaseline;
pub use greedy::GreedyThreshold;
pub use optimize::Optimization;

use crate::config::ApplicationConfig;
use perfmodel::ProcTable;

/// Free-disk percentage at or below which the manager raises CRITICAL and
/// the simulation stalls (Algorithm 1, line 2).
pub const CRITICAL_FREE_PERCENT: f64 = 10.0;
/// Free-disk percentage at which a stalled simulation resumes ("when the
/// free disk space becomes sufficient again") — above the CRITICAL level
/// with hysteresis so the system does not flap at the boundary.
pub const RESUME_FREE_PERCENT: f64 = 15.0;
/// Fraction of total capacity the optimization method keeps out of its
/// disk budget: the LP plans to spend its budget `D` exactly by the end
/// of the overflow horizon, so budgeting the full free space would steer
/// straight into the CRITICAL band. The reserve keeps the steady state
/// clear of it.
pub const DISK_RESERVE_FRACTION: f64 = 0.12;
/// Fraction of the remaining headroom (free space above the reserve) the
/// optimization method budgets per horizon. Spending the whole headroom
/// every epoch walks the disk down to the reserve by mission end; halving
/// it makes the steady state genuinely steady — each epoch re-budgets, so
/// usable space is never stranded, but consumption decelerates as the
/// disk fills instead of accelerating.
pub const DISK_BUDGET_FRACTION: f64 = 0.5;

/// Everything a decision algorithm observes at one epoch.
#[derive(Debug, Clone)]
pub struct DecisionInputs<'a> {
    /// Free disk space, percent of capacity (the `df` observation).
    pub free_disk_percent: f64,
    /// Free disk space in bytes (the LP's `D`, before the reserve).
    pub free_disk_bytes: u64,
    /// Total disk capacity in bytes (sizes the LP's reserve).
    pub disk_capacity_bytes: u64,
    /// Average observed sim→vis bandwidth, bytes/second (the LP's `b`).
    pub bandwidth_bps: f64,
    /// Bytes of one output frame at the current resolution (the LP's `O`).
    pub frame_bytes: u64,
    /// Seconds to write one frame through parallel I/O (the LP's `TIO`).
    pub io_secs_per_frame: f64,
    /// Profiled seconds-per-step for every allowed processor count at the
    /// current resolution.
    pub proc_table: &'a ProcTable,
    /// Configuration currently in force.
    pub current: &'a ApplicationConfig,
    /// Integration step, simulated seconds (the paper's `ts`).
    pub dt_sim_secs: f64,
    /// Minimum output interval, simulated minutes.
    pub min_oi_min: f64,
    /// Maximum output interval, simulated minutes (the paper's
    /// `upper_output_interval` = 25).
    pub max_oi_min: f64,
    /// Horizon over which the disk must not overflow, wall seconds (the
    /// LP's `n`): the estimated remaining run time.
    pub horizon_secs: f64,
}

/// Which force drove an optimization decision — the paper's three-way
/// tension made observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingConstraint {
    /// The machine's fastest configuration was reachable: compute-bound.
    MachineBound,
    /// The disk-overflow horizon forced a slower step or sparser output.
    DiskBound,
    /// The continuous-visualization constraint set the output frequency.
    VisualizationBound,
    /// No feasible point: the safe corner was taken.
    InfeasibleSafeCorner,
}

impl BindingConstraint {
    /// Short label for logs and figure annotations.
    pub fn label(self) -> &'static str {
        match self {
            BindingConstraint::MachineBound => "machine-bound",
            BindingConstraint::DiskBound => "disk-bound",
            BindingConstraint::VisualizationBound => "viz-bound",
            BindingConstraint::InfeasibleSafeCorner => "infeasible",
        }
    }
}

/// A decision algorithm: observations in, configuration out.
///
/// Implementations must not set `resolution_km`/`nest_active` — those
/// follow the pressure schedule and are applied by the manager; the
/// algorithm decides processors and output interval. The CRITICAL flag is
/// set by the manager from [`CRITICAL_FREE_PERCENT`], matching the paper
/// where the manager (not the algorithm) notifies components of low disk.
pub trait DecisionAlgorithm {
    /// Human-readable name for logs and figure legends.
    fn name(&self) -> &'static str;

    /// Compute the next `(num_procs, output_interval_min)`.
    fn decide(&mut self, inputs: &DecisionInputs<'_>) -> (usize, f64);

    /// Which constraint bound the most recent decision, when the
    /// algorithm can tell (the LP method reports this; heuristics return
    /// `None`).
    fn last_binding(&self) -> Option<BindingConstraint> {
        None
    }
}

/// Selector for the decision algorithms: the two the paper compares plus
/// the implicit non-adaptive baseline it argues against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// The reactive threshold heuristic (Algorithm 1).
    GreedyThreshold,
    /// The linear-programming steady-state method (§IV-B).
    Optimization,
    /// Non-adaptive: max processors, min interval, never reconsidered.
    StaticBaseline,
}

impl AlgorithmKind {
    /// Instantiate the algorithm.
    pub fn build(self) -> Box<dyn DecisionAlgorithm + Send> {
        match self {
            AlgorithmKind::GreedyThreshold => Box::new(GreedyThreshold::new()),
            AlgorithmKind::Optimization => Box::new(Optimization::new()),
            AlgorithmKind::StaticBaseline => Box::new(StaticBaseline::new()),
        }
    }

    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmKind::GreedyThreshold => "Greedy-Threshold",
            AlgorithmKind::Optimization => "Optimization Method",
            AlgorithmKind::StaticBaseline => "Static (non-adaptive)",
        }
    }

    /// The two algorithms the paper compares, in its order.
    pub fn both() -> [AlgorithmKind; 2] {
        [AlgorithmKind::GreedyThreshold, AlgorithmKind::Optimization]
    }

    /// All algorithms including the non-adaptive baseline.
    pub fn all() -> [AlgorithmKind; 3] {
        [
            AlgorithmKind::StaticBaseline,
            AlgorithmKind::GreedyThreshold,
            AlgorithmKind::Optimization,
        ]
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use perfmodel::ProcTable;

    /// A strictly-decreasing five-entry table: 1→40s … 48→2.5s.
    pub fn table() -> ProcTable {
        ProcTable::from_entries(vec![(1, 40.0), (4, 12.0), (12, 6.0), (24, 4.0), (48, 2.5)])
    }

    /// Inputs with sensible defaults, overridable per test.
    pub fn inputs<'a>(
        table: &'a ProcTable,
        current: &'a ApplicationConfig,
        free_percent: f64,
    ) -> DecisionInputs<'a> {
        let capacity = 100_000_000_000u64; // 100 GB
        DecisionInputs {
            free_disk_percent: free_percent,
            free_disk_bytes: (capacity as f64 * free_percent / 100.0) as u64,
            disk_capacity_bytes: capacity,
            bandwidth_bps: 7e6,
            frame_bytes: 100_000_000,
            io_secs_per_frame: 0.7,
            proc_table: table,
            current,
            dt_sim_secs: 144.0,
            min_oi_min: 3.0,
            max_oi_min: 25.0,
            horizon_secs: 20.0 * 3600.0,
        }
    }
}
