//! Computational steering — the paper's future work, implemented.
//!
//! "We also intend to investigate interactive simulation/visualization,
//! so that user input based on the visualization can steer the
//! simulation." A scientist watching the remote visualization can:
//!
//! - **request temporal resolution** — cap the output interval below the
//!   mission maximum while something interesting unfolds (the decision
//!   algorithms then optimize within the tightened bound),
//! - **pin the spatial resolution** — override the pressure schedule with
//!   an explicit grid (e.g. hold 10 km over landfall even as the cyclone
//!   weakens),
//! - **release** — hand control back to the schedule and mission bounds.
//!
//! Commands are timestamped and applied by the orchestrator at their wall
//! time (scripted interaction for reproducible experiments); the online
//! mode forwards them over a channel from the visualization thread, which
//! is the live interactive path.

use serde::{Deserialize, Serialize};

/// One steering command from the visualization end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SteeringCommand {
    /// Tighten the maximum output interval to this many simulated minutes
    /// (clamped to the mission's `[min, max]` band).
    RequestTemporalResolution {
        /// New ceiling for the output interval, simulated minutes.
        max_oi_min: f64,
    },
    /// Override the pressure schedule with a fixed parent resolution.
    PinResolution {
        /// Parent resolution to hold, km.
        km: f64,
    },
    /// Drop all overrides; the schedule and mission bounds rule again.
    Release,
}

/// The steering state the orchestrator consults each epoch/step.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SteeringState {
    /// Active output-interval ceiling, if any.
    pub max_oi_override_min: Option<f64>,
    /// Active resolution pin, if any.
    pub pinned_resolution_km: Option<f64>,
    /// Commands applied so far.
    pub commands_applied: u32,
}

impl SteeringState {
    /// Fresh state: no overrides.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply one command.
    pub fn apply(&mut self, cmd: SteeringCommand) {
        self.commands_applied += 1;
        match cmd {
            SteeringCommand::RequestTemporalResolution { max_oi_min } => {
                self.max_oi_override_min = Some(max_oi_min);
            }
            SteeringCommand::PinResolution { km } => {
                self.pinned_resolution_km = Some(km);
            }
            SteeringCommand::Release => {
                self.max_oi_override_min = None;
                self.pinned_resolution_km = None;
            }
        }
    }

    /// Effective maximum output interval given the mission's bounds.
    pub fn effective_max_oi(&self, mission_min: f64, mission_max: f64) -> f64 {
        match self.max_oi_override_min {
            Some(cap) => cap.clamp(mission_min, mission_max),
            None => mission_max,
        }
    }

    /// Effective `(resolution, nest)` given the schedule's prescription.
    pub fn effective_resolution(&self, scheduled: (f64, bool)) -> (f64, bool) {
        match self.pinned_resolution_km {
            // A pinned resolution keeps whatever nest state the schedule
            // prescribes: the pin is about the parent grid.
            Some(km) => (km, scheduled.1),
            None => scheduled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_defer_to_mission_and_schedule() {
        let s = SteeringState::new();
        assert_eq!(s.effective_max_oi(3.0, 25.0), 25.0);
        assert_eq!(s.effective_resolution((18.0, true)), (18.0, true));
        assert_eq!(s.commands_applied, 0);
    }

    #[test]
    fn temporal_request_caps_within_mission_bounds() {
        let mut s = SteeringState::new();
        s.apply(SteeringCommand::RequestTemporalResolution { max_oi_min: 8.0 });
        assert_eq!(s.effective_max_oi(3.0, 25.0), 8.0);
        // Requests outside the band are clamped, not honored blindly.
        s.apply(SteeringCommand::RequestTemporalResolution { max_oi_min: 1.0 });
        assert_eq!(s.effective_max_oi(3.0, 25.0), 3.0);
        s.apply(SteeringCommand::RequestTemporalResolution { max_oi_min: 99.0 });
        assert_eq!(s.effective_max_oi(3.0, 25.0), 25.0);
    }

    #[test]
    fn resolution_pin_overrides_schedule_but_not_nest() {
        let mut s = SteeringState::new();
        s.apply(SteeringCommand::PinResolution { km: 10.0 });
        assert_eq!(s.effective_resolution((24.0, false)), (10.0, false));
        assert_eq!(s.effective_resolution((15.0, true)), (10.0, true));
    }

    #[test]
    fn release_restores_everything() {
        let mut s = SteeringState::new();
        s.apply(SteeringCommand::RequestTemporalResolution { max_oi_min: 5.0 });
        s.apply(SteeringCommand::PinResolution { km: 12.0 });
        s.apply(SteeringCommand::Release);
        assert_eq!(s.effective_max_oi(3.0, 25.0), 25.0);
        assert_eq!(s.effective_resolution((24.0, false)), (24.0, false));
        assert_eq!(s.commands_applied, 3);
    }
}
