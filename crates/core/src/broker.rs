//! Overload-safe frame fan-out broker — the serving tier between one
//! simulation's frame stream and 10^5 remote viewers.
//!
//! The paper's pipeline ends at a handful of known receivers
//! ([`crate::fanout`] broadcasts to three sites). This module models the
//! next tier out: a broker that multiplexes the stream to an *open*
//! population of client sessions, each with its own resume-from-last-ack
//! cursor (the AHL2 handshake of [`crate::net_transport`]) and its own
//! QoS ladder rung ([`crate::qos`]). The interesting regime is overload —
//! a mass reconnect after a WAN outage, a thundering herd at startup, a
//! flapping client squad — and the broker's job is to degrade *by policy*
//! instead of collapsing:
//!
//! - **Admission control** ([`AdmissionGate`]): a token bucket with a
//!   virtual FIFO queue. Overflow admissions are not dropped, they are
//!   *deferred* with an explicit `retry_after` that spreads retries at
//!   exactly the admission rate — so a storm of 10^4 simultaneous
//!   reconnects drains in order instead of retrying in lockstep.
//! - **Bulkheads** ([`ShedPolicy`]): every client's backlog is bounded.
//!   A slow client sheds its own oldest frames, demotes itself to the
//!   track-only rung, or is disconnected — it never grows broker memory,
//!   which is structurally bounded by the shared [`FrameLog`] ring.
//! - **Catch-up-storm suppression**: reconnecting clients replay from
//!   their cursor at a paced burst ([`BrokerConfig::catchup_burst_frames`])
//!   out of a capped share of the link ([`BrokerConfig::catchup_share`]),
//!   so catch-up traffic can never starve live frames.
//! - **Circuit breakers** ([`BreakerConfig`]): a client that fails
//!   repeatedly inside a window (flapping, resume loops) is quarantined
//!   for the run instead of consuming admission and link capacity.
//!
//! Everything runs on the deterministic DES clock: a load scenario in,
//! a [`BrokerOutcome`] of counters + series out, replayable bit-for-bit
//! from its seed. [`loadgen`] sweeps client counts 10^3 → 10^5 through
//! outage/reconnect scenarios and renders `results/fanout_load.csv`.

pub mod loadgen;

use crate::engine::FrameTransport;
use crate::fault::SplitMix64;
use crate::qos::{QosConfig, QosController, QosRung, QosSignals};
use crate::resilience::BackoffPolicy;
use des::{Scheduler, Series, SeriesSet, SimTime};
use resources::SharedLink;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A client within this many frames of the head is "live" (served from
/// the live pot); beyond it, it is catching up (paced, capped share).
pub const LIVE_LAG_FRAMES: u64 = 2;

// ---------------------------------------------------------------------------
// Frame log ring
// ---------------------------------------------------------------------------

/// The broker's single shared frame buffer: a counters-only ring.
///
/// Frames exist in the broker exactly once regardless of client count —
/// clients hold *cursors* into this log, not copies — so broker memory is
/// `retention × frame_bytes` by construction, the bulkhead invariant the
/// chaos motifs check. Appending past `retention` advances the tail;
/// clients whose cursor falls behind the tail shed the gap on their next
/// service (a *resume expiry*).
#[derive(Debug, Clone)]
pub struct FrameLog {
    frame_bytes: u64,
    retention: u64,
    head: u64,
    tail: u64,
}

impl FrameLog {
    /// New empty log retaining at most `retention` frames.
    ///
    /// # Panics
    /// If `retention` is zero.
    pub fn new(frame_bytes: u64, retention: u64) -> Self {
        assert!(retention > 0, "FrameLog retention must be positive");
        Self {
            frame_bytes,
            retention,
            head: 0,
            tail: 0,
        }
    }

    /// Append one frame, returning its sequence number; evicts the oldest
    /// frame when the ring is full.
    pub fn append(&mut self) -> u64 {
        let seq = self.head;
        self.head += 1;
        if self.head - self.tail > self.retention {
            self.tail = self.head - self.retention;
        }
        seq
    }

    /// Next sequence number to be produced (frames `[tail, head)` live).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Oldest retained sequence number.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Frames currently retained.
    pub fn len(&self) -> u64 {
        self.head - self.tail
    }

    /// Whether the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Bytes currently held — the broker's entire frame memory.
    pub fn bytes(&self) -> u64 {
        self.len() * self.frame_bytes
    }

    /// Whether `seq` is still replayable.
    pub fn contains(&self, seq: u64) -> bool {
        (self.tail..self.head).contains(&seq)
    }
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

/// Outcome of one admission request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Session admitted; start serving.
    Admitted,
    /// Over rate — retry after this many seconds. Deferrals are placed in
    /// a virtual FIFO, so each deferred client gets a *distinct* slot and
    /// the storm drains at the admission rate instead of retrying in
    /// lockstep.
    Deferred {
        /// Seconds until this client's reserved retry slot.
        retry_after_secs: f64,
    },
}

/// Token-bucket admission gate with virtual-FIFO deferral slots.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill: f64,
    /// Virtual end-of-queue: the next free retry slot handed to a
    /// deferred client. Monotone, so N simultaneous deferrals spread
    /// over N / rate seconds.
    next_slot: f64,
    admitted: u64,
    deferred: u64,
}

impl AdmissionGate {
    /// Gate admitting `rate_per_sec` sessions sustained, `burst` at once.
    ///
    /// # Panics
    /// If the rate is not positive and finite, or `burst` is zero.
    pub fn new(rate_per_sec: f64, burst: u64) -> Self {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "admission rate must be positive and finite, got {rate_per_sec}"
        );
        assert!(burst > 0, "admission burst must be positive");
        Self {
            rate_per_sec,
            burst: burst as f64,
            tokens: burst as f64,
            last_refill: 0.0,
            next_slot: 0.0,
            admitted: 0,
            deferred: 0,
        }
    }

    /// Request admission at wall time `now` (seconds, non-decreasing).
    pub fn request(&mut self, now: f64) -> Admission {
        let dt = (now - self.last_refill).max(0.0);
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
        self.last_refill = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.admitted += 1;
            Admission::Admitted
        } else {
            self.next_slot = self.next_slot.max(now) + 1.0 / self.rate_per_sec;
            self.deferred += 1;
            Admission::Deferred {
                retry_after_secs: self.next_slot - now,
            }
        }
    }

    /// Sessions admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Requests deferred so far.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }
}

// ---------------------------------------------------------------------------
// Bulkheads and breakers
// ---------------------------------------------------------------------------

/// What the broker does to a client whose backlog exceeds the bulkhead
/// ([`BrokerConfig::max_backlog_frames`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Advance the client's cursor past its oldest pending frames —
    /// lossy, but the session stays up at its rung.
    DropOldest,
    /// Pin the client to the track-only rung until it catches back up;
    /// backlogs beyond the equivalent *byte* bound still drop oldest.
    DemoteToTrackOnly,
    /// Kick the session and shed its entire queued backlog — the client
    /// reconnects through backoff and the admission gate at the live
    /// head (and counts a breaker failure). Without the queue drop a
    /// kicked laggard would resume with the same over-bulkhead backlog
    /// and be re-kicked until the breaker quarantined it.
    Disconnect,
}

/// Circuit breaker quarantining clients that fail repeatedly.
///
/// A *failure* is an ungraceful session end: a flap drop, a mass-outage
/// disconnect, a bulkhead disconnect, or a resume whose cursor has
/// expired past the ring tail. `trip_after` failures inside `window_secs`
/// quarantine the client for the rest of the run. The default trips at
/// 3 so a single mass outage (one disconnect + at most one expired
/// resume per client) never quarantines a healthy fleet, while a
/// flapping client trips within a few periods.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Failures within the window that trip the breaker.
    pub trip_after: u32,
    /// Sliding window over which failures are counted, seconds.
    pub window_secs: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            trip_after: 3,
            window_secs: 600.0,
        }
    }
}

// ---------------------------------------------------------------------------
// Load scenario
// ---------------------------------------------------------------------------

/// One timed disturbance in a broker load scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadEvent {
    /// `clients` new viewers arrive, spread evenly over `over_secs`
    /// (0 = thundering herd: all at once, the admission gate's job).
    ArrivalRamp { clients: u64, over_secs: f64 },
    /// A fraction of currently connected clients drops ungracefully and
    /// returns after `outage_secs` (plus per-client deterministic
    /// jitter) — the catch-up storm.
    MassDisconnect { frac: f64, outage_secs: f64 },
    /// The shared serving link degrades to `factor` of nominal for
    /// `for_secs`, then restores to nominal.
    LinkSag { factor: f64, for_secs: f64 },
    /// `clients` pathological viewers that drop every `period_secs`
    /// after connecting — breaker bait.
    FlapSquad { clients: u64, period_secs: f64 },
}

/// A deterministic schedule of [`LoadEvent`]s at offsets (seconds).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadScenario {
    /// `(at_secs, event)` pairs; order of same-time events is preserved.
    pub events: Vec<(f64, LoadEvent)>,
}

impl LoadScenario {
    /// Scenario with a single event.
    pub fn single(at_secs: f64, ev: LoadEvent) -> Self {
        Self {
            events: vec![(at_secs, ev)],
        }
    }

    /// Append an event, returning self (builder style).
    pub fn then(mut self, at_secs: f64, ev: LoadEvent) -> Self {
        self.events.push((at_secs, ev));
        self
    }
}

// ---------------------------------------------------------------------------
// Broker configuration
// ---------------------------------------------------------------------------

/// Full configuration for one modeled broker run.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Bytes per full-resolution frame.
    pub frame_bytes: u64,
    /// Seconds between produced frames.
    pub frame_interval_secs: f64,
    /// Seconds of frame production (ticks continue past this until the
    /// backlog drains).
    pub horizon_secs: f64,
    /// Serving tick, seconds (link budget quantum).
    pub tick_secs: f64,
    /// Shared WAN uplink all clients are served over.
    pub link: SharedLink,
    /// Frames the broker ring retains for catch-up replay.
    pub retention_frames: u64,
    /// Bulkhead: max frames of backlog one client may hold.
    pub max_backlog_frames: u64,
    /// What happens at the bulkhead.
    pub shed: ShedPolicy,
    /// Admission gate sustained rate, sessions/second.
    pub admission_rate_per_sec: f64,
    /// Admission gate burst size.
    pub admission_burst: u64,
    /// Max fraction of each tick's link budget spendable on catch-up
    /// replay (live frames get the rest first; catch-up inherits any
    /// slack — the split is work-conserving).
    pub catchup_share: f64,
    /// Max frames replayed to one catching-up client per tick (pacing).
    pub catchup_burst_frames: u64,
    /// Reconnect backoff; per-client jitter via
    /// [`BackoffPolicy::client_delay`].
    pub backoff: BackoffPolicy,
    /// Circuit breaker for flapping clients.
    pub breaker: BreakerConfig,
    /// Per-client QoS ladder configuration.
    pub qos: QosConfig,
    /// Seed for every stochastic choice (mass-disconnect selection).
    pub seed: u64,
    /// The load schedule to drive.
    pub scenario: LoadScenario,
}

impl BrokerConfig {
    /// Defaults sized so the QoS ladder is load-bearing: a 1 Gb/s link
    /// cannot broadcast 1 MB frames at full resolution to more than
    /// ~3,750 clients per 30 s interval, so larger fleets only stay live
    /// by demoting rungs.
    pub fn new(seed: u64, scenario: LoadScenario) -> Self {
        Self {
            frame_bytes: 1_000_000,
            frame_interval_secs: 30.0,
            horizon_secs: 3.0 * 3600.0,
            tick_secs: 30.0,
            link: SharedLink::new(1e9),
            retention_frames: 60,
            max_backlog_frames: 32,
            shed: ShedPolicy::DropOldest,
            admission_rate_per_sec: 200.0,
            admission_burst: 50,
            catchup_share: 0.5,
            catchup_burst_frames: 8,
            backoff: BackoffPolicy::new(seed ^ 0xB0FF),
            breaker: BreakerConfig::default(),
            qos: QosConfig::default(),
            seed,
            scenario,
        }
    }

    fn validate(&self) {
        assert!(self.frame_bytes > 0, "frame_bytes must be positive");
        assert!(
            self.frame_interval_secs > 0.0 && self.frame_interval_secs.is_finite(),
            "frame interval must be positive and finite"
        );
        assert!(
            self.tick_secs > 0.0 && self.tick_secs.is_finite(),
            "tick must be positive and finite"
        );
        assert!(
            self.horizon_secs >= self.frame_interval_secs,
            "horizon shorter than one frame interval"
        );
        assert!(self.retention_frames > 0, "retention must be positive");
        assert!(
            self.max_backlog_frames > LIVE_LAG_FRAMES,
            "bulkhead must exceed the live-lag threshold"
        );
        assert!(
            (0.0..=1.0).contains(&self.catchup_share),
            "catchup_share must be in [0, 1], got {}",
            self.catchup_share
        );
        assert!(
            self.catchup_burst_frames > 0,
            "catch-up pacing must allow at least one frame per tick"
        );
        for &(at, ref ev) in &self.scenario.events {
            assert!(
                at.is_finite() && at >= 0.0,
                "scenario event at invalid time {at}"
            );
            if let LoadEvent::MassDisconnect { frac, outage_secs } = *ev {
                assert!(
                    (0.0..=1.0).contains(&frac),
                    "MassDisconnect frac must be in [0, 1], got {frac}"
                );
                assert!(
                    outage_secs >= 0.0 && outage_secs.is_finite(),
                    "MassDisconnect outage invalid: {outage_secs}"
                );
            }
            if let LoadEvent::LinkSag { factor, for_secs } = *ev {
                assert!(
                    factor > 0.0 && factor.is_finite(),
                    "LinkSag factor must be positive and finite, got {factor}"
                );
                assert!(
                    for_secs > 0.0 && for_secs.is_finite(),
                    "LinkSag duration invalid: {for_secs}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Outcome
// ---------------------------------------------------------------------------

/// Event counters for one broker run. `PartialEq` + `Copy` so acceptance
/// tests can pin the whole struct and determinism checks can compare
/// runs wholesale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerCounters {
    /// Clients ever created by the scenario.
    pub clients_total: u64,
    /// Sessions admitted (reconnects count again).
    pub admitted_sessions: u64,
    /// Admission requests deferred with a retry slot.
    pub deferred_admissions: u64,
    /// Resumes whose cursor had expired past the ring tail.
    pub resume_failures: u64,
    /// Sessions kicked at the bulkhead under [`ShedPolicy::Disconnect`].
    pub bulkhead_disconnects: u64,
    /// Clients quarantined by the circuit breaker.
    pub quarantined: u64,
    /// Frames produced into the ring.
    pub frames_produced: u64,
    /// Client-frames delivered (live + catch-up).
    pub frames_delivered: u64,
    /// Client-frames shed (bulkhead drops + resume expiries).
    pub frames_shed: u64,
    /// Ticks where live clients wanted frames, the live pot could afford
    /// at least one, none were served, yet catch-up traffic moved —
    /// structurally zero; nonzero means the budget split regressed.
    pub starvation_ticks: u64,
    /// QoS rung demotions summed over all clients.
    pub demotions: u64,
    /// QoS rung promotions summed over all clients.
    pub promotions: u64,
    /// Deepest rung any client reached (0 = never left full-res).
    pub deepest_rung: u8,
    /// Peak simultaneously connected clients.
    pub peak_connected: u64,
    /// Peak frames retained in the ring (≤ retention by construction).
    pub peak_ring_frames: u64,
    /// Total cursor advances; conservation demands
    /// `frames_delivered + frames_shed == cursor_advance`.
    pub cursor_advance: u64,
}

/// Everything a broker run reports.
#[derive(Debug, Clone)]
pub struct BrokerOutcome {
    /// Event counters (pinnable, comparable).
    pub counters: BrokerCounters,
    /// Bytes spent serving live frames.
    pub live_bytes: f64,
    /// Bytes spent on catch-up replay.
    pub catchup_bytes: f64,
    /// Worst per-tick p99 staleness of connected clients' newest
    /// delivered frame, seconds (while production was live).
    pub p99_staleness_secs: f64,
    /// Longest any client waited from first admission request to
    /// admission, seconds.
    pub max_admission_wait_secs: f64,
    /// Seconds from outage end until every mass-disconnected client was
    /// reconnected and live again (None if no mass disconnect, or never).
    pub recovery_secs: Option<f64>,
    /// Total wall-clock seconds simulated.
    pub wall_secs: f64,
    /// Whether every surviving connected client ended live (backlog ≤
    /// [`LIVE_LAG_FRAMES`]).
    pub drained: bool,
    /// Time series: `connected`, `ring_frames`, `p99_staleness`.
    pub series: SeriesSet,
}

// ---------------------------------------------------------------------------
// The DES run
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Created or dropped; an `Admit` event may be in flight.
    Offline,
    /// Requested admission, waiting on a deferral slot.
    Waiting,
    /// Being served.
    Connected,
    /// Circuit breaker tripped; out for the rest of the run.
    Quarantined,
}

struct Client {
    phase: Phase,
    /// Next frame sequence this client needs.
    cursor: u64,
    qos: QosController,
    /// Pinned to track-only by [`ShedPolicy::DemoteToTrackOnly`].
    pinned: bool,
    ever_admitted: bool,
    /// Reconnect attempt counter (jitter input; reset on admission).
    attempt: u32,
    /// Breaker failure timestamps within the window.
    failures: VecDeque<f64>,
    /// When the current admission wait started.
    waiting_since: Option<f64>,
    /// Part of an in-progress mass-disconnect recovery cohort.
    in_recovery: bool,
    /// Drops itself every `period` seconds while connected.
    flap_period: Option<f64>,
    // Per-tick scratch (avoids allocating per tick).
    tick_wanted: u64,
    tick_served: u64,
}

impl Client {
    fn new(qos: QosConfig) -> Self {
        Self {
            phase: Phase::Offline,
            cursor: 0,
            qos: QosController::new(qos),
            pinned: false,
            ever_admitted: false,
            attempt: 0,
            failures: VecDeque::new(),
            waiting_since: None,
            in_recovery: false,
            flap_period: None,
            tick_wanted: 0,
            tick_served: 0,
        }
    }

    /// Record one breaker failure; true if the breaker trips.
    fn record_failure(&mut self, now: f64, breaker: &BreakerConfig) -> bool {
        self.failures.push_back(now);
        while let Some(&t0) = self.failures.front() {
            if now - t0 > breaker.window_secs {
                self.failures.pop_front();
            } else {
                break;
            }
        }
        self.failures.len() >= breaker.trip_after as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Produce,
    Tick,
    Scenario(usize),
    Admit { client: usize },
    FlapDrop { client: usize },
    LinkRestore,
}

struct World {
    cfg: BrokerConfig,
    link: SharedLink,
    log: FrameLog,
    gate: AdmissionGate,
    clients: Vec<Client>,
    /// Maintained incrementally — an O(clients) scan per admission would
    /// make a 10^5-client reconnect storm quadratic.
    connected_count: u64,
    counters: BrokerCounters,
    live_bytes: f64,
    catchup_bytes: f64,
    p99_staleness: f64,
    max_admission_wait: f64,
    recovery_open: u64,
    recovery_start: f64,
    recovery_secs: Option<f64>,
    tick_index: u64,
    connected_series: Series,
    ring_series: Series,
    staleness_series: Series,
    // Scratch buffers reused across ticks.
    live: Vec<usize>,
    catchup: Vec<usize>,
    stale_buf: Vec<f64>,
}

impl World {
    fn quarantine(&mut self, id: usize) {
        self.clients[id].phase = Phase::Quarantined;
        self.counters.quarantined += 1;
        self.clear_recovery(id);
    }

    /// Remove a client from the recovery cohort, closing the window when
    /// it was the last one out.
    fn clear_recovery(&mut self, id: usize) {
        if !self.clients[id].in_recovery {
            return;
        }
        self.clients[id].in_recovery = false;
        self.recovery_open -= 1;
    }

    fn spawn_clients(
        &mut self,
        count: u64,
        over_secs: f64,
        flap_period: Option<f64>,
        now: f64,
        sched: &mut Scheduler<Ev>,
    ) {
        for i in 0..count {
            let id = self.clients.len();
            let mut c = Client::new(self.cfg.qos.clone());
            c.flap_period = flap_period;
            self.clients.push(c);
            self.counters.clients_total += 1;
            let spread = if count > 1 {
                over_secs * i as f64 / count as f64
            } else {
                0.0
            };
            sched.schedule_at(SimTime::from_secs(now + spread), Ev::Admit { client: id });
        }
    }
}

/// Effective per-frame cost for a client right now, bytes.
fn frame_cost(c: &Client, frame_bytes: u64) -> f64 {
    let rung = if c.pinned {
        QosRung::TrackOnly
    } else {
        c.qos.rung()
    };
    frame_bytes as f64 * rung.byte_factor()
}

/// Round-robin whole frames from `pot` across `order`ed clients until the
/// pot or the wants run out. Returns (frames_served, bytes_spent).
fn serve_round_robin(
    clients: &mut [Client],
    order: &[usize],
    offset: usize,
    mut pot: f64,
    frame_bytes: u64,
) -> (u64, f64) {
    let n = order.len();
    let mut frames = 0u64;
    let mut bytes = 0.0f64;
    if n == 0 {
        return (frames, bytes);
    }
    let mut progress = true;
    while progress {
        progress = false;
        for k in 0..n {
            let id = order[(k + offset) % n];
            let c = &mut clients[id];
            if c.tick_served >= c.tick_wanted {
                continue;
            }
            let cost = frame_cost(c, frame_bytes);
            if cost <= pot {
                pot -= cost;
                bytes += cost;
                c.tick_served += 1;
                c.cursor += 1;
                frames += 1;
                progress = true;
            }
        }
    }
    (frames, bytes)
}

/// Drop a connected session ungracefully: record a breaker failure and
/// either quarantine or schedule a jittered reconnect.
fn drop_session(w: &mut World, id: usize, now: f64, sched: &mut Scheduler<Ev>, extra_delay: f64) {
    debug_assert_eq!(w.clients[id].phase, Phase::Connected);
    w.clients[id].phase = Phase::Offline;
    w.connected_count -= 1;
    let tripped = {
        let breaker = w.cfg.breaker;
        w.clients[id].record_failure(now, &breaker)
    };
    if tripped {
        w.quarantine(id);
        return;
    }
    let attempt = w.clients[id].attempt;
    let jitter = w.cfg.backoff.client_delay(id as u64, attempt).as_secs_f64();
    w.clients[id].attempt = attempt.saturating_add(1);
    sched.schedule_at(
        SimTime::from_secs(now + extra_delay + jitter),
        Ev::Admit { client: id },
    );
}

fn handle_admit(w: &mut World, id: usize, now: f64, sched: &mut Scheduler<Ev>) {
    match w.clients[id].phase {
        Phase::Quarantined | Phase::Connected => return,
        Phase::Offline | Phase::Waiting => {}
    }
    if w.clients[id].waiting_since.is_none() {
        w.clients[id].waiting_since = Some(now);
    }
    match w.gate.request(now) {
        Admission::Deferred { retry_after_secs } => {
            w.counters.deferred_admissions += 1;
            w.clients[id].phase = Phase::Waiting;
            sched.schedule_at(
                SimTime::from_secs(now + retry_after_secs),
                Ev::Admit { client: id },
            );
        }
        Admission::Admitted => {
            w.counters.admitted_sessions += 1;
            if let Some(since) = w.clients[id].waiting_since.take() {
                w.max_admission_wait = w.max_admission_wait.max(now - since);
            }
            w.clients[id].attempt = 0;
            if w.clients[id].ever_admitted {
                // Resume from last ack (the AHL2 cursor). A cursor that
                // has expired past the ring tail is a resume failure: the
                // gap is shed, and the breaker hears about it.
                if w.clients[id].cursor < w.log.tail() {
                    let gap = w.log.tail() - w.clients[id].cursor;
                    w.counters.resume_failures += 1;
                    w.counters.frames_shed += gap;
                    w.counters.cursor_advance += gap;
                    w.clients[id].cursor = w.log.tail();
                    let breaker = w.cfg.breaker;
                    if w.clients[id].record_failure(now, &breaker) {
                        w.quarantine(id);
                        return;
                    }
                }
            } else {
                // Fresh session starts at the live head (uncounted: a
                // session start, not a cursor advance).
                w.clients[id].cursor = w.log.head();
                w.clients[id].ever_admitted = true;
            }
            w.clients[id].phase = Phase::Connected;
            w.connected_count += 1;
            w.counters.peak_connected = w.counters.peak_connected.max(w.connected_count);
            if let Some(period) = w.clients[id].flap_period {
                sched.schedule_at(
                    SimTime::from_secs(now + period),
                    Ev::FlapDrop { client: id },
                );
            }
        }
    }
}

fn handle_scenario(w: &mut World, idx: usize, now: f64, sched: &mut Scheduler<Ev>) {
    let ev = w.cfg.scenario.events[idx].1.clone();
    match ev {
        LoadEvent::ArrivalRamp { clients, over_secs } => {
            w.spawn_clients(clients, over_secs, None, now, sched);
        }
        LoadEvent::FlapSquad {
            clients,
            period_secs,
        } => {
            w.spawn_clients(clients, 1.0, Some(period_secs), now, sched);
        }
        LoadEvent::LinkSag { factor, for_secs } => {
            w.link.set_degradation(factor);
            sched.schedule_at(SimTime::from_secs(now + for_secs), Ev::LinkRestore);
        }
        LoadEvent::MassDisconnect { frac, outage_secs } => {
            let seed = w.cfg.seed;
            let mut victims = Vec::new();
            for id in 0..w.clients.len() {
                if w.clients[id].phase != Phase::Connected {
                    continue;
                }
                let mut rng = SplitMix64::new(
                    seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (idx as u64),
                );
                if rng.unit_f64() < frac {
                    victims.push(id);
                }
            }
            for id in victims {
                if !w.clients[id].in_recovery {
                    w.clients[id].in_recovery = true;
                    w.recovery_open += 1;
                }
                w.recovery_start = w.recovery_start.max(now + outage_secs);
                drop_session(w, id, now, sched, outage_secs);
            }
        }
    }
}

fn handle_tick(w: &mut World, now: f64, sched: &mut Scheduler<Ev>) {
    let head = w.log.head();
    let tail = w.log.tail();
    let frame_bytes = w.cfg.frame_bytes;
    let budget = w.link.budget_bytes(w.cfg.tick_secs);

    // Pass 1 — clamp expired cursors, enforce the bulkhead, classify.
    w.live.clear();
    w.catchup.clear();
    let mut live_wanted = 0u64;
    let mut catchup_cost = 0.0f64;
    let mut min_live_cost = f64::INFINITY;
    let mut kicked: Vec<usize> = Vec::new();
    for id in 0..w.clients.len() {
        let max_backlog = w.cfg.max_backlog_frames;
        let shed = w.cfg.shed;
        let burst = w.cfg.catchup_burst_frames;
        let c = &mut w.clients[id];
        c.tick_wanted = 0;
        c.tick_served = 0;
        if c.phase != Phase::Connected {
            continue;
        }
        if c.cursor < tail {
            let gap = tail - c.cursor;
            w.counters.frames_shed += gap;
            w.counters.cursor_advance += gap;
            c.cursor = tail;
        }
        let mut backlog = head - c.cursor;
        if backlog > max_backlog {
            match shed {
                ShedPolicy::DropOldest => {
                    let overflow = backlog - max_backlog;
                    w.counters.frames_shed += overflow;
                    w.counters.cursor_advance += overflow;
                    c.cursor += overflow;
                    backlog = max_backlog;
                }
                ShedPolicy::DemoteToTrackOnly => {
                    c.pinned = true;
                    // The bulkhead is a *byte* bound: at the track-only
                    // rate the same bytes cover far more frames, but a
                    // backlog beyond that still drops oldest.
                    let cap = (max_backlog as f64 / QosRung::TrackOnly.byte_factor()) as u64;
                    if backlog > cap {
                        let overflow = backlog - cap;
                        w.counters.frames_shed += overflow;
                        w.counters.cursor_advance += overflow;
                        c.cursor += overflow;
                        backlog = cap;
                    }
                }
                ShedPolicy::Disconnect => {
                    w.counters.bulkhead_disconnects += 1;
                    w.counters.frames_shed += backlog;
                    w.counters.cursor_advance += backlog;
                    c.cursor = head;
                    kicked.push(id);
                    continue;
                }
            }
        }
        if c.pinned && backlog <= LIVE_LAG_FRAMES {
            c.pinned = false;
        }
        if backlog == 0 {
            continue;
        }
        let cost = frame_cost(c, frame_bytes);
        if backlog <= LIVE_LAG_FRAMES {
            c.tick_wanted = backlog;
            live_wanted += backlog;
            min_live_cost = min_live_cost.min(cost);
            w.live.push(id);
        } else {
            c.tick_wanted = backlog.min(burst);
            catchup_cost += c.tick_wanted as f64 * cost;
            w.catchup.push(id);
        }
    }
    for id in kicked {
        drop_session(w, id, now, sched, 0.0);
    }

    // Pass 2 — spend the link budget: live first out of its reserved
    // share, then catch-up from whatever is left (work-conserving).
    let catchup_reserve = (w.cfg.catchup_share * budget).min(catchup_cost);
    let pot_live = budget - catchup_reserve;
    let offset = w.tick_index as usize;
    let live_order = std::mem::take(&mut w.live);
    let (live_served, live_spent) =
        serve_round_robin(&mut w.clients, &live_order, offset, pot_live, frame_bytes);
    w.live = live_order;
    let pot_catchup = budget - live_spent;
    let catchup_order = std::mem::take(&mut w.catchup);
    let (catchup_served, catchup_spent) = serve_round_robin(
        &mut w.clients,
        &catchup_order,
        offset,
        pot_catchup,
        frame_bytes,
    );
    w.catchup = catchup_order;
    w.counters.frames_delivered += live_served + catchup_served;
    w.counters.cursor_advance += live_served + catchup_served;
    w.live_bytes += live_spent;
    w.catchup_bytes += catchup_spent;
    if live_wanted > 0 && live_served == 0 && catchup_served > 0 && pot_live >= min_live_cost {
        w.counters.starvation_ticks += 1;
    }

    // Pass 3 — QoS observation, staleness, recovery bookkeeping.
    w.stale_buf.clear();
    let production_live = now <= w.cfg.horizon_secs + 1e-9;
    let mut recovered: Vec<usize> = Vec::new();
    for id in 0..w.clients.len() {
        let interval = w.cfg.frame_interval_secs;
        let c = &mut w.clients[id];
        if c.phase != Phase::Connected {
            continue;
        }
        let backlog = head - c.cursor;
        let sig = QosSignals {
            bandwidth_frac: if c.tick_wanted > 0 {
                c.tick_served as f64 / c.tick_wanted as f64
            } else {
                1.0
            },
            receiver_lag_frames: backlog,
            free_disk_pct: 100.0,
            deadline_slack: 10.0,
        };
        c.qos.observe(&sig);
        if production_live {
            // Frame s is produced at (s + 1) × interval, so a client
            // whose cursor sits at the head is exactly current.
            w.stale_buf
                .push((now - interval * c.cursor as f64).max(0.0));
        }
        if c.in_recovery && backlog <= LIVE_LAG_FRAMES {
            recovered.push(id);
        }
    }
    for id in recovered {
        w.clear_recovery(id);
    }
    if w.recovery_open == 0 && w.recovery_secs.is_none() && w.recovery_start > 0.0 {
        // Close the recovery window only once the last cohort member is
        // live again *after* the outage ended.
        if now >= w.recovery_start {
            w.recovery_secs = Some(now - w.recovery_start);
        }
    }
    if production_live && !w.stale_buf.is_empty() {
        let p99 = crate::metrics::percentile(w.stale_buf.iter().copied(), 99.0);
        w.p99_staleness = w.p99_staleness.max(p99);
        w.staleness_series.record(SimTime::from_secs(now), p99);
    }
    w.connected_series
        .record(SimTime::from_secs(now), w.connected_count as f64);
    w.ring_series
        .record(SimTime::from_secs(now), w.log.len() as f64);
    w.tick_index += 1;

    // Keep ticking while production runs, events are pending, or any
    // connected client still has a backlog — capped by a safety horizon.
    let work_left = w
        .clients
        .iter()
        .any(|c| c.phase == Phase::Connected && c.cursor < head);
    let max_wall = w.cfg.horizon_secs * 10.0 + 3600.0;
    if (now < w.cfg.horizon_secs || !sched.is_empty() || work_left)
        && now + w.cfg.tick_secs < max_wall
    {
        sched.schedule_in(w.cfg.tick_secs, Ev::Tick);
    }
}

/// Run one broker load scenario on the DES clock.
///
/// # Panics
/// On invalid configuration (see [`BrokerConfig`] field docs).
pub fn run_broker(cfg: BrokerConfig) -> BrokerOutcome {
    cfg.validate();
    let mut sched: Scheduler<Ev> = Scheduler::new();
    // Produce before Tick at equal timestamps: scheduled first, and both
    // reschedule themselves in handler order, so ties keep breaking the
    // same way — frame N is in the ring before the tick that serves it.
    sched.schedule_in(cfg.frame_interval_secs, Ev::Produce);
    sched.schedule_in(cfg.tick_secs, Ev::Tick);
    for (idx, &(at, _)) in cfg.scenario.events.iter().enumerate() {
        sched.schedule_at(SimTime::from_secs(at), Ev::Scenario(idx));
    }
    let mut world = World {
        link: cfg.link.clone(),
        log: FrameLog::new(cfg.frame_bytes, cfg.retention_frames),
        gate: AdmissionGate::new(cfg.admission_rate_per_sec, cfg.admission_burst),
        clients: Vec::new(),
        connected_count: 0,
        counters: BrokerCounters::default(),
        live_bytes: 0.0,
        catchup_bytes: 0.0,
        p99_staleness: 0.0,
        max_admission_wait: 0.0,
        recovery_open: 0,
        recovery_start: 0.0,
        recovery_secs: None,
        tick_index: 0,
        connected_series: Series::new("connected"),
        ring_series: Series::new("ring_frames"),
        staleness_series: Series::new("p99_staleness"),
        live: Vec::new(),
        catchup: Vec::new(),
        stale_buf: Vec::new(),
        cfg,
    };
    let end = des::run_until_empty(&mut sched, &mut world, |w, t, ev, sched| {
        let now = t.as_secs();
        match ev {
            Ev::Produce => {
                w.log.append();
                w.counters.frames_produced += 1;
                w.counters.peak_ring_frames = w.counters.peak_ring_frames.max(w.log.len());
                if now + w.cfg.frame_interval_secs <= w.cfg.horizon_secs + 1e-9 {
                    sched.schedule_in(w.cfg.frame_interval_secs, Ev::Produce);
                }
            }
            Ev::Tick => handle_tick(w, now, sched),
            Ev::Scenario(idx) => handle_scenario(w, idx, now, sched),
            Ev::Admit { client } => handle_admit(w, client, now, sched),
            Ev::FlapDrop { client } => {
                if w.clients[client].phase == Phase::Connected {
                    drop_session(w, client, now, sched, 0.0);
                }
            }
            Ev::LinkRestore => w.link.set_degradation(1.0),
        }
        true
    });

    let head = world.log.head();
    let drained = world
        .clients
        .iter()
        .all(|c| c.phase != Phase::Connected || head - c.cursor <= LIVE_LAG_FRAMES);
    for c in &world.clients {
        world.counters.demotions += c.qos.demotions();
        world.counters.promotions += c.qos.promotions();
        world.counters.deepest_rung = world.counters.deepest_rung.max(c.qos.deepest().as_byte());
    }
    let mut series = SeriesSet::new();
    series.push(world.connected_series);
    series.push(world.ring_series);
    series.push(world.staleness_series);
    BrokerOutcome {
        counters: world.counters,
        live_bytes: world.live_bytes,
        catchup_bytes: world.catchup_bytes,
        p99_staleness_secs: world.p99_staleness,
        max_admission_wait_secs: world.max_admission_wait,
        recovery_secs: world.recovery_secs,
        wall_secs: end.as_secs(),
        drained,
        series,
    }
}

// ---------------------------------------------------------------------------
// Transport integration
// ---------------------------------------------------------------------------

/// A [`FrameTransport`] tee that records every parked frame into a shared
/// [`FrameLog`], making any live pipeline's frame stream replayable by
/// broker client cursors while delegating all transport behavior to the
/// wrapped implementation.
pub struct BrokerTransport<T: FrameTransport> {
    inner: T,
    log: Rc<RefCell<FrameLog>>,
}

impl<T: FrameTransport> BrokerTransport<T> {
    /// Wrap `inner`, teeing frames into `log`.
    pub fn new(inner: T, log: Rc<RefCell<FrameLog>>) -> Self {
        Self { inner, log }
    }

    /// The shared frame log handle.
    pub fn log(&self) -> Rc<RefCell<FrameLog>> {
        Rc::clone(&self.log)
    }
}

impl<T: FrameTransport> FrameTransport for BrokerTransport<T> {
    fn emit(
        &mut self,
        model: &wrf::WrfModel,
        sim_min: f64,
        modeled_bytes: u64,
        rung: QosRung,
    ) -> (u64, Vec<u8>) {
        self.inner.emit(model, sim_min, modeled_bytes, rung)
    }

    fn decision_frame_bytes(&self, modeled_bytes: u64) -> u64 {
        self.inner.decision_frame_bytes(modeled_bytes)
    }

    fn park(&mut self, id: u64, sim_min: f64, payload: Vec<u8>) {
        self.log.borrow_mut().append();
        self.inner.park(id, sim_min, payload);
    }

    fn deliver(&mut self, id: u64, sim_min: f64) -> bool {
        self.inner.deliver(id, sim_min)
    }

    fn applied_watermark(&self) -> u64 {
        self.inner.applied_watermark()
    }

    fn finish(&mut self) -> viz::TrackLog {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ModeledTransport;

    #[test]
    fn frame_log_ring_semantics() {
        let mut log = FrameLog::new(100, 3);
        assert!(log.is_empty());
        assert_eq!(log.append(), 0);
        assert_eq!(log.append(), 1);
        assert_eq!(log.append(), 2);
        assert_eq!((log.tail(), log.head(), log.len()), (0, 3, 3));
        assert_eq!(log.append(), 3);
        // Oldest evicted: memory is bounded by retention, not history.
        assert_eq!((log.tail(), log.head(), log.len()), (1, 4, 3));
        assert!(!log.contains(0));
        assert!(log.contains(1) && log.contains(3));
        assert!(!log.contains(4));
        assert_eq!(log.bytes(), 300);
    }

    #[test]
    #[should_panic(expected = "retention must be positive")]
    fn frame_log_rejects_zero_retention() {
        FrameLog::new(1, 0);
    }

    #[test]
    fn gate_admits_burst_then_defers_with_fifo_slots() {
        let mut gate = AdmissionGate::new(10.0, 3);
        for _ in 0..3 {
            assert_eq!(gate.request(0.0), Admission::Admitted);
        }
        // Deferred retries get strictly increasing slots spaced 1/rate:
        // a storm drains in arrival order at the admission rate.
        let mut last = 0.0;
        for i in 1..=5 {
            match gate.request(0.0) {
                Admission::Deferred { retry_after_secs } => {
                    assert!((retry_after_secs - i as f64 * 0.1).abs() < 1e-9);
                    assert!(retry_after_secs > last);
                    last = retry_after_secs;
                }
                other => panic!("expected deferral, got {other:?}"),
            }
        }
        assert_eq!((gate.admitted(), gate.deferred()), (3, 5));
        // Tokens refill at the rate; a later request is admitted again.
        assert_eq!(gate.request(1.0), Admission::Admitted);
    }

    #[test]
    #[should_panic(expected = "admission rate must be positive")]
    fn gate_rejects_bad_rate() {
        AdmissionGate::new(0.0, 1);
    }

    /// Small fleet, ~1 h of production, frames fit the link: everything
    /// is delivered live, nothing shed, and the books balance.
    #[test]
    fn steady_ramp_serves_everyone_live() {
        let mut cfg = BrokerConfig::new(7, loadgen::steady_ramp(200));
        cfg.horizon_secs = 3600.0;
        let out = run_broker(cfg);
        let c = out.counters;
        assert_eq!(c.clients_total, 200);
        assert_eq!(c.peak_connected, 200);
        assert_eq!(c.frames_produced, 120);
        assert_eq!(c.frames_shed, 0);
        assert_eq!(c.starvation_ticks, 0);
        assert_eq!(c.quarantined, 0);
        assert_eq!(c.frames_delivered + c.frames_shed, c.cursor_advance);
        assert!(c.peak_ring_frames <= 60);
        assert!(out.drained);
        assert!(out.p99_staleness_secs <= 2.0 * 30.0 + 1e-9);
        assert!(out.recovery_secs.is_none());
    }

    #[test]
    fn broker_runs_are_deterministic() {
        let cfg = || {
            let mut c = BrokerConfig::new(99, loadgen::outage_reconnect(150, 1200.0));
            c.horizon_secs = 2.0 * 3600.0;
            c
        };
        let a = run_broker(cfg());
        let b = run_broker(cfg());
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.p99_staleness_secs, b.p99_staleness_secs);
        assert_eq!(
            a.live_bytes + a.catchup_bytes,
            b.live_bytes + b.catchup_bytes
        );
        assert_eq!(a.recovery_secs, b.recovery_secs);
    }

    #[test]
    fn thundering_herd_drains_through_the_gate_fairly() {
        let mut cfg = BrokerConfig::new(3, loadgen::thundering_herd(500));
        cfg.horizon_secs = 1800.0;
        let out = run_broker(cfg);
        let c = out.counters;
        assert_eq!(c.peak_connected, 500);
        assert!(
            c.deferred_admissions > 0,
            "500 at once must overflow burst 50"
        );
        assert_eq!(c.starvation_ticks, 0);
        // Virtual-FIFO fairness: nobody waits much longer than the time
        // the gate needs to drain the whole herd at its rate.
        let drain = 500.0 / 200.0;
        assert!(
            out.max_admission_wait_secs <= 2.0 * drain + 1.0,
            "max wait {} vs drain {}",
            out.max_admission_wait_secs,
            drain
        );
        assert_eq!(c.frames_delivered + c.frames_shed, c.cursor_advance);
        assert!(out.drained);
    }

    /// The pinned storm: a 2 h WAN outage outlives the 0.5 h ring, so
    /// every client's resume cursor has expired — each sheds the gap
    /// exactly once, catches up paced, and nobody is quarantined or
    /// starves the live stream.
    #[test]
    fn mass_reconnect_after_long_outage_recovers() {
        let mut cfg = BrokerConfig::new(42, loadgen::outage_reconnect(300, 7200.0));
        cfg.horizon_secs = 3.0 * 3600.0;
        let out = run_broker(cfg);
        let c = out.counters;
        assert_eq!(c.clients_total, 300);
        assert_eq!(c.resume_failures, 300, "every cursor outlived by the ring");
        assert_eq!(c.quarantined, 0, "one outage must not trip breakers");
        assert_eq!(
            c.starvation_ticks, 0,
            "catch-up must not starve live frames"
        );
        assert!(c.peak_ring_frames <= cfg_retention());
        assert_eq!(c.frames_delivered + c.frames_shed, c.cursor_advance);
        assert!(out.drained, "storm must drain");
        let rec = out.recovery_secs.expect("recovery window must close");
        assert!(
            rec <= 600.0,
            "fleet took {rec}s after outage end to go live again"
        );
        assert!(out.catchup_bytes > 0.0);
    }

    fn cfg_retention() -> u64 {
        BrokerConfig::new(0, LoadScenario::default()).retention_frames
    }

    /// A link sag long enough to blow the 32-frame bulkhead, under each
    /// shed policy.
    fn sag_cfg(shed: ShedPolicy) -> BrokerConfig {
        let scenario = loadgen::steady_ramp(20).then(
            900.0,
            LoadEvent::LinkSag {
                factor: 1e-9,
                for_secs: 1500.0,
            },
        );
        let mut cfg = BrokerConfig::new(5, scenario);
        cfg.horizon_secs = 3600.0;
        cfg.shed = shed;
        cfg
    }

    #[test]
    fn bulkhead_drop_oldest_sheds_but_keeps_sessions() {
        let out = run_broker(sag_cfg(ShedPolicy::DropOldest));
        let c = out.counters;
        assert!(
            c.frames_shed > 0,
            "50 stalled frames must overflow the bulkhead"
        );
        assert_eq!(c.bulkhead_disconnects, 0);
        assert_eq!(c.admitted_sessions, 20, "nobody reconnects");
        assert_eq!(c.frames_delivered + c.frames_shed, c.cursor_advance);
        assert!(out.drained);
    }

    #[test]
    fn bulkhead_demote_rides_out_the_sag_losslessly() {
        let out = run_broker(sag_cfg(ShedPolicy::DemoteToTrackOnly));
        let c = out.counters;
        // Track-only frames are cheap enough that the byte-bound bulkhead
        // (and the 60-frame ring) never trims a 50-frame backlog.
        assert_eq!(c.frames_shed, 0);
        assert_eq!(c.bulkhead_disconnects, 0);
        assert_eq!(c.frames_delivered, c.cursor_advance);
        assert!(out.drained);
    }

    #[test]
    fn bulkhead_disconnect_kicks_and_readmits() {
        let out = run_broker(sag_cfg(ShedPolicy::Disconnect));
        let c = out.counters;
        assert!(c.bulkhead_disconnects > 0);
        assert!(
            c.admitted_sessions > 20,
            "kicked sessions reconnect through the gate"
        );
        assert_eq!(c.frames_delivered + c.frames_shed, c.cursor_advance);
        assert!(out.drained);
    }

    #[test]
    fn flap_squad_trips_the_breaker() {
        let mut cfg = BrokerConfig::new(11, loadgen::ramp_with_flappers(50, 5));
        cfg.horizon_secs = 3600.0;
        let out = run_broker(cfg);
        let c = out.counters;
        assert_eq!(c.quarantined, 5, "every flapper quarantined, nobody else");
        assert_eq!(c.clients_total, 55);
        assert_eq!(c.starvation_ticks, 0);
        assert!(out.drained);
    }

    #[test]
    #[should_panic(expected = "catchup_share must be in [0, 1]")]
    fn config_rejects_bad_catchup_share() {
        let mut cfg = BrokerConfig::new(0, loadgen::steady_ramp(1));
        cfg.catchup_share = 1.5;
        run_broker(cfg);
    }

    #[test]
    #[should_panic(expected = "MassDisconnect frac must be in [0, 1]")]
    fn config_rejects_bad_disconnect_frac() {
        let scenario = LoadScenario::single(
            10.0,
            LoadEvent::MassDisconnect {
                frac: 2.0,
                outage_secs: 10.0,
            },
        );
        run_broker(BrokerConfig::new(0, scenario));
    }

    #[test]
    fn broker_transport_tees_parked_frames_into_the_log() {
        let log = Rc::new(RefCell::new(FrameLog::new(10, 4)));
        let mut t = BrokerTransport::new(ModeledTransport, Rc::clone(&log));
        for seq in 0..6u64 {
            t.park(seq, seq as f64, Vec::new());
            assert!(t.deliver(seq, seq as f64));
        }
        let log = log.borrow();
        assert_eq!(log.head(), 6);
        assert_eq!(log.tail(), 2, "ring evicts beyond retention");
    }
}
