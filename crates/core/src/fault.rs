//! Fault model: scripted resource faults and fault plans.
//!
//! The framework's thesis is that *ordinary* adaptation absorbs resource
//! faults: the bandwidth probe, `df`, and the decision algorithm see a
//! degraded world and re-plan, with no dedicated failure-handling path in
//! the decision logic itself. This module provides the vocabulary of
//! faults the test harness can throw at a run — in the DES orchestrator
//! and in the live online pipeline alike — plus [`FaultPlan`], a scripted
//! (optionally seeded-random) schedule of them.
//!
//! The transport layer is the one place with explicit recovery machinery
//! (reconnect, backoff, resume-from-last-ack — see
//! [`crate::resilience`]): a dead receiver cannot be absorbed by widening
//! an output interval, only by store-and-forward plus replay.

/// An injected resource fault, applied at a scripted wall time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Scale the sim→vis link's effective bandwidth by `factor`
    /// (e.g. 0.02 = a WAN segment collapsing to 2 %); `1.0` restores it.
    LinkDegradation {
        /// Multiplier on the nominal bandwidth; must be positive.
        factor: f64,
    },
    /// An external writer (another job sharing the scratch filesystem)
    /// seizes up to `bytes` of the simulation-site disk and holds them for
    /// `duration_hours` of wall time.
    DiskPressure {
        /// Bytes the external writer tries to take (capped at free space).
        bytes: u64,
        /// Wall hours until the external writer releases the space.
        duration_hours: f64,
    },
    /// The visualization site becomes unreachable for `duration_hours`:
    /// no transfer can complete, any in-flight frame is aborted back to
    /// the pending queue, and the probe observes a dead link — so the
    /// decision algorithm widens the output interval (store-and-forward)
    /// instead of dropping frames.
    ReceiverOutage {
        /// Wall hours until the receiver is reachable again.
        duration_hours: f64,
    },
    /// The simulation process crashes and the job handler relaunches it
    /// from the last checkpoint (a restart with an extra requeue penalty;
    /// no simulated progress is produced while it is down).
    SimCrash,
    /// The link's bandwidth flaps: each firing toggles between `factor`
    /// and healthy, re-arming itself every `half_period_hours` until
    /// `flips` transitions have happened.
    BandwidthFlap {
        /// Degraded-phase multiplier on the nominal bandwidth.
        factor: f64,
        /// Wall hours between transitions.
        half_period_hours: f64,
        /// Remaining transitions (the initial firing counts as one).
        flips: u32,
    },
    /// `kill -9` of the whole simulation-site pipeline — simulation,
    /// sender, manager, all of it — at the given wall time. Unlike
    /// [`SimCrash`](Fault::SimCrash) nothing volatile survives; the
    /// recovery supervisor must rebuild the incarnation from the journal
    /// and the newest valid checkpoint.
    ProcessKill {
        /// Wall hours into the run at which the process dies.
        at_hours: f64,
    },
    /// The next kill happens mid-append: the write-ahead journal is left
    /// with a torn final record, which replay must truncate away without
    /// losing any committed frame.
    TornWrite,
    /// The next kill leaves the newest checkpoint file corrupt (flipped
    /// bytes); recovery must fall back past it to an older valid one, or
    /// to a cold start.
    CorruptCheckpoint,
}

/// A scripted schedule of faults: `(wall_hours, fault)` pairs.
///
/// Thin wrapper over the raw vector so random plans have one canonical
/// generator that both the DES and online harnesses (and the property
/// tests) share.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scripted events; not required to be sorted (the scheduler
    /// orders them by time).
    pub events: Vec<(f64, Fault)>,
}

impl FaultPlan {
    /// Empty plan (a fault-free run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Plan from explicit events.
    pub fn from_events(events: Vec<(f64, Fault)>) -> Self {
        FaultPlan { events }
    }

    /// Add one scripted fault.
    pub fn push(&mut self, wall_hours: f64, fault: Fault) {
        self.events.push((wall_hours, fault));
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no faults are scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Seeded random plan over the first `horizon_hours` of a run: 1–4
    /// faults of mixed kinds at random times. Deterministic per seed, so a
    /// failing property-test case can be replayed exactly.
    pub fn random(seed: u64, horizon_hours: f64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let n = 1 + (rng.next_u64() % 4) as usize;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            let at = rng.unit_f64() * horizon_hours.max(0.1);
            let fault = match rng.next_u64() % 5 {
                0 => Fault::LinkDegradation {
                    // 0.02 .. ~1.0: from near-collapse to harmless.
                    factor: (0.02 + 0.98 * rng.unit_f64()).min(1.0),
                },
                1 => Fault::DiskPressure {
                    bytes: 1_000_000_000 + rng.next_u64() % 50_000_000_000,
                    duration_hours: 0.5 + 3.0 * rng.unit_f64(),
                },
                2 => Fault::ReceiverOutage {
                    duration_hours: 0.25 + 2.0 * rng.unit_f64(),
                },
                3 => Fault::SimCrash,
                _ => Fault::BandwidthFlap {
                    factor: 0.05 + 0.3 * rng.unit_f64(),
                    half_period_hours: 0.25 + rng.unit_f64(),
                    flips: 2 + (rng.next_u64() % 5) as u32,
                },
            };
            events.push((at, fault));
        }
        FaultPlan { events }
    }

    /// Like [`random`](Self::random), but the plan additionally contains
    /// one whole-pipeline kill (optionally preceded by a torn journal
    /// write or a corrupt checkpoint) so the recovery supervisor is
    /// exercised too. Deterministic per seed; `random`'s plans are left
    /// untouched so existing seeds keep their meaning.
    pub fn random_with_kill(seed: u64, horizon_hours: f64) -> Self {
        let mut plan = Self::random(seed, horizon_hours);
        let mut rng = SplitMix64::new(seed ^ 0x6b69_6c6c);
        let at = (0.1 + 0.8 * rng.unit_f64()) * horizon_hours.max(0.1);
        match rng.next_u64() % 3 {
            0 => plan.push(at - 1e-3, Fault::TornWrite),
            1 => plan.push(at - 1e-3, Fault::CorruptCheckpoint),
            _ => {}
        }
        plan.push(at, Fault::ProcessKill { at_hours: at });
        plan
    }
}

/// Small deterministic generator (SplitMix64) so fault plans do not drag
/// in the full `rand` dependency for two dice rolls.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plans_are_deterministic_per_seed() {
        let a = FaultPlan::random(7, 12.0);
        let b = FaultPlan::random(7, 12.0);
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= 4);
        let c = FaultPlan::random(8, 12.0);
        assert_ne!(a, c, "different seeds give different plans");
    }

    #[test]
    fn random_fault_times_stay_inside_the_horizon() {
        for seed in 0..50 {
            let plan = FaultPlan::random(seed, 6.0);
            for &(at, fault) in &plan.events {
                assert!((0.0..6.0).contains(&at), "fault at {at}");
                if let Fault::LinkDegradation { factor } = fault {
                    assert!(factor > 0.0 && factor <= 1.0);
                }
            }
        }
    }

    #[test]
    fn random_with_kill_adds_exactly_one_process_kill() {
        for seed in 0..40 {
            let plan = FaultPlan::random_with_kill(seed, 8.0);
            let kills: Vec<f64> = plan
                .events
                .iter()
                .filter_map(|&(at, f)| match f {
                    Fault::ProcessKill { at_hours } => {
                        assert_eq!(at, at_hours, "event time matches the payload");
                        Some(at)
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(kills.len(), 1);
            assert!(kills[0] > 0.0 && kills[0] < 8.0);
            // The base plan for the same seed is a strict prefix.
            let base = FaultPlan::random(seed, 8.0);
            assert_eq!(&plan.events[..base.len()], &base.events[..]);
        }
    }

    #[test]
    fn plan_builders_compose() {
        let mut plan = FaultPlan::new();
        assert!(plan.is_empty());
        plan.push(1.0, Fault::SimCrash);
        plan.push(
            2.0,
            Fault::ReceiverOutage {
                duration_hours: 0.5,
            },
        );
        assert_eq!(plan.len(), 2);
        let same = FaultPlan::from_events(plan.events.clone());
        assert_eq!(plan, same);
    }
}
