//! The adaptive framework — the paper's primary contribution.
//!
//! Components mirror the paper's Figure 2 one-to-one:
//!
//! - [`config::ApplicationConfig`] — the *application configuration file*
//!   through which the manager steers the other components (number of
//!   processors, output interval, resolution, CRITICAL flag),
//! - [`manager::ApplicationManager`] — periodically observes free disk
//!   space and measured bandwidth and invokes a decision algorithm,
//! - [`decision`] — the two decision algorithms: the reactive
//!   [`decision::GreedyThreshold`] (the paper's Algorithm 1) and the
//!   linear-programming [`decision::Optimization`] (paper §IV-B, solved
//!   with our own simplex instead of GLPK),
//! - [`jobhandler::JobHandler`] — starts, stalls, and restarts the
//!   simulation process when the configuration changes,
//! - [`orchestrator::Orchestrator`] — the closed loop on a discrete-event
//!   clock: simulation steps, parallel I/O, the frame sender/receiver
//!   pair, the visualization process, decision epochs, restarts and
//!   stalls — producing the exact time series plotted in Figures 5–8,
//! - [`online`] — the same pipeline as real communicating threads (live
//!   daemons) for demonstration and end-to-end testing.
//!
//! # Quickstart
//!
//! ```
//! use adaptive_core::decision::AlgorithmKind;
//! use adaptive_core::orchestrator::Orchestrator;
//! use cyclone::{Mission, Site};
//!
//! let outcome = Orchestrator::new(
//!     Site::inter_department(),
//!     Mission::aila().with_duration_hours(3.0),
//!     AlgorithmKind::Optimization,
//! )
//! .run();
//! assert!(outcome.completed);
//! assert!(outcome.frames_visualized > 0);
//! ```

pub mod config;
pub mod decision;
pub mod fanout;
pub mod fault;
pub mod jobhandler;
pub mod manager;
pub mod metrics;
pub mod net_transport;
pub mod online;
pub mod orchestrator;
pub mod recovery;
pub mod resilience;
pub mod steering;
