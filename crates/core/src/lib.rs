//! The adaptive framework — the paper's primary contribution.
//!
//! Components mirror the paper's Figure 2 one-to-one:
//!
//! - [`config::ApplicationConfig`] — the *application configuration file*
//!   through which the manager steers the other components (number of
//!   processors, output interval, resolution, CRITICAL flag),
//! - [`manager::ApplicationManager`] — periodically observes free disk
//!   space and measured bandwidth and invokes a decision algorithm,
//! - [`decision`] — the two decision algorithms: the reactive
//!   [`decision::GreedyThreshold`] (the paper's Algorithm 1) and the
//!   linear-programming [`decision::Optimization`] (paper §IV-B, solved
//!   with our own simplex instead of GLPK),
//! - [`jobhandler::JobHandler`] — starts, stalls, and restarts the
//!   simulation process when the configuration changes,
//! - [`engine::EpochEngine`] — the single epoch-driven pipeline state
//!   machine (observe → decide → simulate-epoch → emit/transport →
//!   persist → advance), parameterized by environment traits
//!   ([`engine::Clock`], [`engine::FrameTransport`],
//!   [`engine::Durability`], [`engine::FaultInjector`]),
//! - [`orchestrator::Orchestrator`] — the DES driver: the engine on a
//!   virtual clock with fully modeled transport — producing the exact
//!   time series plotted in Figures 5–8,
//! - [`online`] — the live driver: the same engine paced against the
//!   wall clock with real encoded frames, a receiver thread, and
//!   journal+checkpoint durability.
//!
//! # Quickstart
//!
//! ```
//! use adaptive_core::decision::AlgorithmKind;
//! use adaptive_core::orchestrator::Orchestrator;
//! use cyclone::{Mission, Site};
//!
//! let outcome = Orchestrator::new(
//!     Site::inter_department(),
//!     Mission::aila().with_duration_hours(3.0),
//!     AlgorithmKind::Optimization,
//! )
//! .run();
//! assert!(outcome.completed);
//! assert!(outcome.frames_rendered > 0);
//! ```

pub mod broker;
pub mod chaos;
pub mod config;
pub mod decision;
pub mod engine;
pub mod fanout;
pub mod fault;
pub mod fleet;
pub mod jobhandler;
pub mod manager;
pub mod metrics;
pub mod net_transport;
pub mod online;
pub mod orchestrator;
pub mod qos;
pub mod recovery;
pub mod resilience;
pub mod server;
pub mod steering;
