//! Closed-loop graceful degradation: the QoS controller and its ladder.
//!
//! The paper's framework *adapts*: when the constrained link or cluster
//! degrades, it should trade visualization fidelity for timeliness
//! instead of stalling a critical cyclone forecast. The pipeline already
//! *measures* degradation (`manager.rs` counts `degraded_epochs`); this
//! module closes the loop. A [`QosController`] watches four per-epoch
//! signals — link throughput relative to the best ever seen, receiver
//! lag in frames, disk pressure, and deadline slack — folds them into a
//! single pressure score, and walks a five-rung **degradation ladder**:
//!
//! | rung | payload                              | ~bytes vs full |
//! |------|--------------------------------------|----------------|
//! | 0    | full-resolution frame (`NCDL`)       | 1.0            |
//! | 1    | delta/quantized frame (`AQZ1`)       | 0.25           |
//! | 2    | thumbnail: decimated + nest dropped  | 0.04           |
//! | 3    | track-only: one 32-byte eye fix      | 0.001          |
//! | 4    | store-and-forward pause (fix parked) | 0.001          |
//!
//! Demotion and promotion use *separate* thresholds plus dwell windows
//! (hysteresis), so a flapping link cannot make the ladder oscillate: a
//! single bad epoch demotes, but promotion needs several consecutive
//! calm epochs and a strictly lower pressure than the one that demoted.
//! The controller moves at most one rung per epoch, and under monotone
//! non-decreasing pressure the rung sequence is monotone non-decreasing
//! — both properties are load-bearing for the chaos-soak invariant
//! checker ([`crate::chaos`]).
//!
//! The rung travels with each frame (a one-byte tag on channel/in-process
//! payloads, a header field on the TCP wire — see
//! [`crate::net_transport`]), so receivers decode correctly whatever mix
//! of rungs a run produced.

use ncdf::{codec, AttrValue, Data, Dataset};
use std::collections::HashMap;
use viz::{EyeFix, TrackLog};
use wrf::WrfModel;

// ---------------------------------------------------------------------
// The ladder
// ---------------------------------------------------------------------

/// One rung of the degradation ladder, ordered from full fidelity (0)
/// to store-and-forward pause (4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QosRung {
    /// Full-resolution encoded frame.
    FullRes = 0,
    /// Quantized + delta-coded frame ([`ncdf::codec::encode_quantized`]).
    DeltaQuantized = 1,
    /// Spatially decimated frame with the nest dropped.
    Thumbnail = 2,
    /// A bare 32-byte eye fix — the forecast-critical minimum.
    TrackOnly = 3,
    /// Store-and-forward: fixes are parked on disk, nothing is sent
    /// until the controller promotes again (or the mission drains).
    Pause = 4,
}

/// Stride used by the thumbnail rung's spatial decimation. Two keeps
/// the eye localizable even on already-decimated test grids; combined
/// with quantization and nest-dropping it still cuts the payload by an
/// order of magnitude.
pub const THUMBNAIL_STRIDE: usize = 2;

impl QosRung {
    /// All rungs, top to bottom.
    pub const ALL: [QosRung; 5] = [
        QosRung::FullRes,
        QosRung::DeltaQuantized,
        QosRung::Thumbnail,
        QosRung::TrackOnly,
        QosRung::Pause,
    ];

    /// Wire byte for this rung.
    pub fn as_byte(self) -> u8 {
        self as u8
    }

    /// Parse a wire byte.
    pub fn from_byte(b: u8) -> Option<QosRung> {
        QosRung::ALL.get(b as usize).copied()
    }

    /// Approximate payload size relative to a full-resolution frame;
    /// the modeled (DES) transport scales its byte counts by this, so
    /// the ladder relieves both the link and the disk in the model
    /// exactly as the real encodings do live.
    pub fn byte_factor(self) -> f64 {
        match self {
            QosRung::FullRes => 1.0,
            QosRung::DeltaQuantized => 0.25,
            QosRung::Thumbnail => 0.06,
            QosRung::TrackOnly | QosRung::Pause => 0.001,
        }
    }

    fn down(self) -> QosRung {
        QosRung::from_byte(self.as_byte() + 1).unwrap_or(QosRung::Pause)
    }

    fn up(self) -> QosRung {
        match self.as_byte() {
            0 => QosRung::FullRes,
            b => QosRung::from_byte(b - 1).expect("b-1 < 4"),
        }
    }
}

// ---------------------------------------------------------------------
// Signals and pressure
// ---------------------------------------------------------------------

/// The per-epoch observations the controller folds into one pressure
/// score. All four are cheap reads the engine already has on hand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosSignals {
    /// Measured link throughput over the last epoch relative to the best
    /// throughput ever measured (1.0 = healthy, → 0 = collapsed).
    pub bandwidth_frac: f64,
    /// Frames written but not yet delivered (pending + in flight).
    pub receiver_lag_frames: u64,
    /// Free space on the simulation-site disk, percent.
    pub free_disk_pct: f64,
    /// Remaining wall budget over the estimated remaining work
    /// (>1 = ahead of the deadline, <1 = behind).
    pub deadline_slack: f64,
}

impl QosSignals {
    /// A fully healthy observation (pressure 0).
    pub fn healthy() -> Self {
        QosSignals {
            bandwidth_frac: 1.0,
            receiver_lag_frames: 0,
            free_disk_pct: 100.0,
            deadline_slack: 10.0,
        }
    }
}

/// Controller tuning: hysteresis thresholds and dwell windows.
///
/// `demote_at[r]` is the pressure at or above which rung `r` demotes to
/// `r+1`; `promote_at[r]` is the pressure at or below which rung `r+1`
/// promotes back to `r`. The structural invariant
/// `promote_at[r] < demote_at[r]` (validated by
/// [`QosController::new`]) is what makes the ladder monotone under
/// monotone pressure and flap-proof in between.
#[derive(Debug, Clone, PartialEq)]
pub struct QosConfig {
    /// Demotion thresholds, one per descent edge (rung r → r+1).
    pub demote_at: [f64; 4],
    /// Promotion thresholds, one per ascent edge (rung r+1 → r).
    pub promote_at: [f64; 4],
    /// Consecutive epochs at or above the demote threshold before
    /// demoting (1 = react immediately to real trouble).
    pub demote_dwell: u32,
    /// Consecutive epochs at or below the promote threshold before
    /// promoting (>1 = a flap must stay calm a while to win back
    /// fidelity).
    pub promote_dwell: u32,
    /// Receiver lag (frames) that alone saturates the lag term.
    pub lag_scale_frames: f64,
    /// Free-disk percentage below which the disk term starts rising
    /// (it saturates at 0% free).
    pub disk_low_pct: f64,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            demote_at: [0.55, 0.70, 0.80, 0.92],
            promote_at: [0.30, 0.45, 0.55, 0.70],
            demote_dwell: 1,
            promote_dwell: 3,
            lag_scale_frames: 12.0,
            disk_low_pct: 40.0,
        }
    }
}

/// The closed-loop degradation controller. Volatile: a recovered
/// incarnation restarts at [`QosRung::FullRes`] and re-derives its rung
/// from fresh observations (the signals it watches are themselves
/// rebuilt from the durable ledger).
#[derive(Debug, Clone)]
pub struct QosController {
    cfg: QosConfig,
    rung: QosRung,
    above: u32,
    below: u32,
    last_pressure: f64,
    demotions: u64,
    promotions: u64,
    deepest: QosRung,
}

impl QosController {
    /// New controller at full fidelity. Panics when the configuration
    /// violates the hysteresis invariant (`promote_at[r] < demote_at[r]`
    /// for every edge, thresholds within `(0, 1]`, dwells ≥ 1).
    pub fn new(cfg: QosConfig) -> Self {
        for r in 0..4 {
            assert!(
                cfg.promote_at[r] < cfg.demote_at[r],
                "hysteresis requires promote_at[{r}] < demote_at[{r}]"
            );
            assert!(
                cfg.demote_at[r] > 0.0 && cfg.demote_at[r] <= 1.0,
                "demote_at[{r}] must lie in (0, 1]"
            );
            assert!(
                cfg.promote_at[r] >= 0.0,
                "promote_at[{r}] must be non-negative"
            );
        }
        assert!(cfg.demote_dwell >= 1, "demote dwell must be at least 1");
        assert!(cfg.promote_dwell >= 1, "promote dwell must be at least 1");
        assert!(cfg.lag_scale_frames > 0.0, "lag scale must be positive");
        assert!(cfg.disk_low_pct > 0.0, "disk threshold must be positive");
        QosController {
            cfg,
            rung: QosRung::FullRes,
            above: 0,
            below: 0,
            last_pressure: 0.0,
            demotions: 0,
            promotions: 0,
            deepest: QosRung::FullRes,
        }
    }

    /// Current rung.
    pub fn rung(&self) -> QosRung {
        self.rung
    }

    /// Pressure computed by the most recent [`observe`](Self::observe).
    pub fn last_pressure(&self) -> f64 {
        self.last_pressure
    }

    /// Deepest rung ever reached.
    pub fn deepest(&self) -> QosRung {
        self.deepest
    }

    /// Demotions performed so far.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Promotions performed so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Fold the four signals into one pressure score in `[0, 1]`.
    ///
    /// MAX-combining of monotone per-signal terms: each signal alone can
    /// drive the ladder down (a collapsed link is an emergency even with
    /// an empty disk), and pressure is monotone in every signal — the
    /// property the ladder-monotonicity invariant rests on.
    pub fn pressure(&self, s: &QosSignals) -> f64 {
        let bw = (1.0 - s.bandwidth_frac).clamp(0.0, 1.0);
        let lag = (s.receiver_lag_frames as f64 / self.cfg.lag_scale_frames).clamp(0.0, 1.0);
        let disk = (1.0 - s.free_disk_pct / self.cfg.disk_low_pct).clamp(0.0, 1.0);
        let slack = (1.0 - s.deadline_slack).clamp(0.0, 1.0);
        bw.max(lag).max(disk).max(slack)
    }

    /// The pressure that gates *promotion*: only the leading signals
    /// (link health, deadline slack). Receiver lag and disk backlog are
    /// *consequences* of the degraded state — while shipping is parked
    /// at [`QosRung::Pause`] they cannot drain, so holding promotion
    /// hostage to them would deadlock the ladder at the bottom (classic
    /// integrator windup). Demotion still uses the full
    /// [`pressure`](Self::pressure), so a lag or disk emergency always
    /// drives the ladder down; it just cannot keep it down after the
    /// root cause has cleared.
    pub fn recovery_pressure(&self, s: &QosSignals) -> f64 {
        let bw = (1.0 - s.bandwidth_frac).clamp(0.0, 1.0);
        let slack = (1.0 - s.deadline_slack).clamp(0.0, 1.0);
        bw.max(slack)
    }

    /// One epoch tick: fold the signals, update the dwell windows, move
    /// at most one rung, and return the rung now in force.
    pub fn observe(&mut self, s: &QosSignals) -> QosRung {
        let p = self.pressure(s);
        self.last_pressure = p;
        let r = self.rung.as_byte() as usize;
        let wants_down = r < 4 && p >= self.cfg.demote_at[r];
        let wants_up = r > 0 && self.recovery_pressure(s) <= self.cfg.promote_at[r - 1];
        self.above = if wants_down { self.above + 1 } else { 0 };
        self.below = if wants_up { self.below + 1 } else { 0 };
        if wants_down && self.above >= self.cfg.demote_dwell {
            self.rung = self.rung.down();
            self.demotions += 1;
            self.above = 0;
            self.below = 0;
        } else if wants_up && self.below >= self.cfg.promote_dwell {
            self.rung = self.rung.up();
            self.promotions += 1;
            self.above = 0;
            self.below = 0;
        }
        self.deepest = self.deepest.max(self.rung);
        self.rung
    }
}

// ---------------------------------------------------------------------
// Per-rung frame encodings
// ---------------------------------------------------------------------

/// Byte length of an encoded eye fix (rungs 3 and 4).
pub const FIX_BYTES: usize = 32;

/// Encode one eye fix as 32 little-endian bytes
/// (`sim_minutes, lon, lat, pressure_hpa`, each f64).
pub fn encode_fix(fix: &EyeFix) -> [u8; FIX_BYTES] {
    let mut out = [0u8; FIX_BYTES];
    out[0..8].copy_from_slice(&fix.sim_minutes.to_le_bytes());
    out[8..16].copy_from_slice(&fix.lon.to_le_bytes());
    out[16..24].copy_from_slice(&fix.lat.to_le_bytes());
    out[24..32].copy_from_slice(&fix.pressure_hpa.to_le_bytes());
    out
}

/// Decode a 32-byte eye fix; `None` on wrong length or non-finite
/// values.
pub fn decode_fix(b: &[u8]) -> Option<EyeFix> {
    if b.len() != FIX_BYTES {
        return None;
    }
    let f = |i: usize| f64::from_le_bytes(b[i..i + 8].try_into().expect("8 bytes"));
    let fix = EyeFix {
        sim_minutes: f(0),
        lon: f(8),
        lat: f(16),
        pressure_hpa: f(24),
    };
    let finite = fix.sim_minutes.is_finite()
        && fix.lon.is_finite()
        && fix.lat.is_finite()
        && fix.pressure_hpa.is_finite();
    finite.then_some(fix)
}

/// The model's current eye fix from ground truth (what the track-only
/// rung ships instead of a frame).
pub fn model_fix(model: &WrfModel) -> EyeFix {
    let (lon, lat) = model.eye_lonlat();
    EyeFix {
        sim_minutes: model.sim_minutes(),
        lon,
        lat,
        pressure_hpa: model.min_pressure_hpa(),
    }
}

/// Build the thumbnail rung's dataset: every spatial dimension sampled
/// with the given stride and the nest (variables, dimensions, and
/// geometry attributes) dropped. Eye detection still works on the
/// decimated parent grid because [`viz::track::detect_eye`]'s parent path uses
/// fractional grid indices, which survive decimation.
pub fn thumbnail_dataset(ds: &Dataset, stride: usize) -> Dataset {
    let d = stride.max(1);
    let mut out = Dataset::new();
    for (name, val) in ds.attrs() {
        if name == "nest_origin_km" || name == "nest_dx_km" {
            continue;
        }
        out.set_attr(name, val.clone());
    }
    out.set_attr("thumbnail_stride", AttrValue::I64(d as i64));
    let src_dims: Vec<&ncdf::Dim> = ds.dims().collect();
    let mut ids = HashMap::new();
    for dim in &src_dims {
        if dim.name.starts_with("nest_") {
            continue;
        }
        let new_len = if dim.len == 0 {
            0
        } else {
            (dim.len - 1) / d + 1
        };
        let id = out.add_dim(&dim.name, new_len).expect("fresh dataset");
        ids.insert(dim.name.as_str(), id);
    }
    for var in ds.vars() {
        if var.name.starts_with("nest_") {
            continue;
        }
        let shape = var.shape(ds);
        let vdims: Vec<_> = var
            .dims
            .iter()
            .map(|&id| ids[src_dims[id.index()].name.as_str()])
            .collect();
        let picks = strided_indices(&shape, d);
        let data = match &var.data {
            Data::F32(xs) => Data::F32(picks.iter().map(|&i| xs[i]).collect()),
            Data::F64(xs) => Data::F64(picks.iter().map(|&i| xs[i]).collect()),
            Data::I32(xs) => Data::I32(picks.iter().map(|&i| xs[i]).collect()),
            Data::U8(xs) => Data::U8(picks.iter().map(|&i| xs[i]).collect()),
        };
        let v = out
            .add_var(&var.name, &vdims, data)
            .expect("decimated shape matches decimated dims");
        v.attrs.extend(var.attrs.clone());
    }
    out
}

/// Row-major flat indices of an N-D strided sample.
fn strided_indices(shape: &[usize], d: usize) -> Vec<usize> {
    let out_shape: Vec<usize> = shape
        .iter()
        .map(|&s| if s == 0 { 0 } else { (s - 1) / d + 1 })
        .collect();
    let total: usize = out_shape.iter().product();
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    let mut picks = Vec::with_capacity(total);
    let mut multi = vec![0usize; shape.len()];
    for _ in 0..total {
        picks.push(multi.iter().zip(&strides).map(|(&m, &st)| m * d * st).sum());
        for ax in (0..shape.len()).rev() {
            multi[ax] += 1;
            if multi[ax] < out_shape[ax] {
                break;
            }
            multi[ax] = 0;
        }
    }
    picks
}

/// Encode the current model state at the given rung. Full-resolution
/// frames stay byte-identical to the pre-ladder pipeline (a raw `NCDL`
/// dataset, no tag); every degraded rung prepends a one-byte rung tag.
/// The two cases never collide: rung tags are `1..=4`, while an `NCDL`
/// blob starts with `0x4E` (`'N'`).
pub fn encode_frame(model: &WrfModel, rung: QosRung) -> Vec<u8> {
    match rung {
        QosRung::FullRes => model.frame().to_bytes().to_vec(),
        _ => {
            let mut out = vec![rung.as_byte()];
            out.extend_from_slice(&encode_body(model, rung));
            out
        }
    }
}

/// Encode just the rung body (no tag) — what the TCP wire ships, with
/// the rung carried in the frame header instead.
pub fn encode_body(model: &WrfModel, rung: QosRung) -> Vec<u8> {
    match rung {
        QosRung::FullRes => model.frame().to_bytes().to_vec(),
        QosRung::DeltaQuantized => codec::encode_quantized(&model.frame()).to_vec(),
        QosRung::Thumbnail => {
            codec::encode_quantized(&thumbnail_dataset(&model.frame(), THUMBNAIL_STRIDE)).to_vec()
        }
        QosRung::TrackOnly | QosRung::Pause => encode_fix(&model_fix(model)).to_vec(),
    }
}

/// Apply a rung body at the receiving end. Returns true when the track
/// accepted a fix from it.
pub fn apply_body(track: &mut TrackLog, rung: QosRung, body: &[u8]) -> bool {
    match rung {
        QosRung::FullRes => match Dataset::from_bytes(body) {
            Ok(ds) => track.ingest(&ds).is_some(),
            Err(_) => false,
        },
        QosRung::DeltaQuantized | QosRung::Thumbnail => match codec::decode_quantized(body) {
            Ok(ds) => track.ingest(&ds).is_some(),
            Err(_) => false,
        },
        QosRung::TrackOnly | QosRung::Pause => match decode_fix(body) {
            Some(fix) => {
                track.push_fix(fix);
                true
            }
            None => false,
        },
    }
}

/// Ingest a payload that may be rung-tagged (first byte `1..=4`) or a
/// legacy untagged full-resolution dataset. Returns true when the track
/// accepted a fix.
pub fn ingest_tagged(track: &mut TrackLog, bytes: &[u8]) -> bool {
    match bytes.first().and_then(|&b| {
        if (1..=4).contains(&b) {
            QosRung::from_byte(b)
        } else {
            None
        }
    }) {
        Some(rung) => apply_body(track, rung, &bytes[1..]),
        None => apply_body(track, QosRung::FullRes, bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::SplitMix64;
    use wrf::ModelConfig;

    fn model() -> WrfModel {
        WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid config")
    }

    fn pressured(p: f64) -> QosSignals {
        QosSignals {
            bandwidth_frac: 1.0 - p,
            ..QosSignals::healthy()
        }
    }

    #[test]
    fn rung_bytes_roundtrip_and_factors_decrease() {
        for r in QosRung::ALL {
            assert_eq!(QosRung::from_byte(r.as_byte()), Some(r));
        }
        assert_eq!(QosRung::from_byte(5), None);
        for pair in QosRung::ALL.windows(2) {
            assert!(pair[0].byte_factor() >= pair[1].byte_factor());
        }
        assert_eq!(QosRung::FullRes.byte_factor(), 1.0);
    }

    #[test]
    fn controller_demotes_fast_and_promotes_slow() {
        let mut c = QosController::new(QosConfig::default());
        assert_eq!(c.rung(), QosRung::FullRes);
        // A collapsed link demotes one rung per epoch, down to Pause.
        let collapse = pressured(0.98);
        for want in [1u8, 2, 3, 4, 4] {
            assert_eq!(c.observe(&collapse).as_byte(), want);
        }
        assert_eq!(c.deepest(), QosRung::Pause);
        assert_eq!(c.demotions(), 4);
        // Recovery promotes only after the dwell window, one rung at a
        // time: with promote_dwell=3, the first two calm epochs hold.
        let calm = QosSignals::healthy();
        assert_eq!(c.observe(&calm), QosRung::Pause);
        assert_eq!(c.observe(&calm), QosRung::Pause);
        assert_eq!(c.observe(&calm), QosRung::TrackOnly);
        let mut seen = vec![c.rung()];
        for _ in 0..12 {
            seen.push(c.observe(&calm));
        }
        assert_eq!(*seen.last().unwrap(), QosRung::FullRes);
        assert_eq!(c.promotions(), 4);
        assert_eq!(c.deepest(), QosRung::Pause, "deepest is sticky");
    }

    #[test]
    fn paused_ladder_promotes_once_the_link_recovers_despite_backlog() {
        let mut c = QosController::new(QosConfig::default());
        // Collapse the link until the ladder parks at Pause.
        while c.rung() != QosRung::Pause {
            c.observe(&pressured(0.98));
        }
        // The link recovers, but the pause left a big receiver backlog
        // and a nearly full disk — consequences that can only drain
        // *after* promotion. Anti-windup: promotion keys off the leading
        // signals, so the ladder climbs anyway.
        let recovered_with_backlog = QosSignals {
            bandwidth_frac: 1.0,
            receiver_lag_frames: 500,
            free_disk_pct: 0.5,
            deadline_slack: 5.0,
        };
        assert_eq!(
            c.pressure(&recovered_with_backlog),
            1.0,
            "full pressure pinned"
        );
        assert_eq!(c.recovery_pressure(&recovered_with_backlog), 0.0);
        let mut promoted = false;
        for _ in 0..(QosConfig::default().promote_dwell + 1) {
            promoted |= c.observe(&recovered_with_backlog) < QosRung::Pause;
        }
        assert!(promoted, "ladder must not deadlock at Pause on backlog");
    }

    #[test]
    fn flapping_pressure_cannot_oscillate_the_ladder() {
        let mut c = QosController::new(QosConfig::default());
        // Alternate one bad epoch with one calm epoch: demotions happen
        // (dwell 1) but no promotion ever fires (dwell 3 is never met),
        // so the rung ratchets down instead of flapping.
        let mut rungs = Vec::new();
        for i in 0..20 {
            let s = if i % 2 == 0 {
                pressured(0.95)
            } else {
                QosSignals::healthy()
            };
            rungs.push(c.observe(&s));
        }
        assert!(
            rungs.windows(2).all(|w| w[1] >= w[0]),
            "no promotions: {rungs:?}"
        );
        assert_eq!(c.promotions(), 0);
    }

    #[test]
    fn ladder_is_monotone_under_monotone_pressure() {
        // Property: for seeded random monotone non-decreasing pressure
        // schedules, the rung sequence is monotone non-decreasing and
        // moves at most one rung per epoch.
        let mut rng = SplitMix64::new(0x5eed_cafe);
        for _case in 0..200 {
            let mut c = QosController::new(QosConfig::default());
            let mut p = 0.0f64;
            let mut prev = QosRung::FullRes;
            for _ in 0..60 {
                p = (p + rng.unit_f64() * 0.08).min(1.0);
                let r = c.observe(&pressured(p));
                assert!(r >= prev, "monotone pressure demoted then promoted");
                assert!(
                    r.as_byte() <= prev.as_byte() + 1,
                    "more than one rung per epoch"
                );
                prev = r;
            }
        }
    }

    #[test]
    fn pressure_is_max_combined_and_monotone_per_signal() {
        let c = QosController::new(QosConfig::default());
        assert_eq!(c.pressure(&QosSignals::healthy()), 0.0);
        let lagged = QosSignals {
            receiver_lag_frames: 6,
            ..QosSignals::healthy()
        };
        assert!((c.pressure(&lagged) - 0.5).abs() < 1e-12);
        let full_disk = QosSignals {
            free_disk_pct: 0.0,
            ..QosSignals::healthy()
        };
        assert_eq!(c.pressure(&full_disk), 1.0);
        let behind = QosSignals {
            deadline_slack: 0.25,
            ..QosSignals::healthy()
        };
        assert!((c.pressure(&behind) - 0.75).abs() < 1e-12);
        // MAX-combining: the worst signal alone sets the score.
        let combo = QosSignals {
            bandwidth_frac: 0.9,
            receiver_lag_frames: 6,
            free_disk_pct: 100.0,
            deadline_slack: 0.25,
        };
        assert!((c.pressure(&combo) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hysteresis requires")]
    fn config_without_hysteresis_gap_is_rejected() {
        let cfg = QosConfig {
            promote_at: [0.55, 0.45, 0.55, 0.70], // promote_at[0] == demote_at[0]
            ..QosConfig::default()
        };
        QosController::new(cfg);
    }

    #[test]
    fn fix_codec_roundtrips_and_rejects_garbage() {
        let fix = EyeFix {
            sim_minutes: 123.5,
            lon: 88.25,
            lat: 16.125,
            pressure_hpa: 964.75,
        };
        let b = encode_fix(&fix);
        assert_eq!(decode_fix(&b), Some(fix));
        assert_eq!(decode_fix(&b[..31]), None);
        let mut nan = b;
        nan[0..8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_fix(&nan), None);
    }

    #[test]
    fn every_rung_body_yields_a_track_fix() {
        let mut m = model();
        m.advance_steps(4, 1).expect("finite");
        let truth = model_fix(&m);
        for rung in QosRung::ALL {
            let body = encode_body(&m, rung);
            let mut track = TrackLog::new();
            assert!(
                apply_body(&mut track, rung, &body),
                "rung {rung:?} body must apply"
            );
            let fix = track.fixes()[0];
            // Degraded rungs stay close to the full-res eye; the fix
            // rungs ship model ground truth exactly.
            assert!(
                (fix.lon - truth.lon).abs() < 3.0 && (fix.lat - truth.lat).abs() < 3.0,
                "rung {rung:?} fix drifted: {fix:?} vs {truth:?}"
            );
            if rung >= QosRung::TrackOnly {
                assert_eq!(fix, truth);
            }
        }
    }

    #[test]
    fn degraded_rungs_shrink_payloads_in_order() {
        let mut m = model();
        m.advance_steps(2, 1).expect("finite");
        let sizes: Vec<usize> = QosRung::ALL
            .iter()
            .map(|&r| encode_frame(&m, r).len())
            .collect();
        assert!(
            sizes.windows(2).all(|w| w[1] <= w[0]),
            "sizes must not grow down the ladder: {sizes:?}"
        );
        assert!(
            sizes[1] * 2 < sizes[0],
            "quantized at least halves the frame: {sizes:?}"
        );
        assert!(
            sizes[2] * 4 < sizes[0],
            "thumbnail is a small fraction even on a tiny test grid: {sizes:?}"
        );
        assert_eq!(sizes[3], FIX_BYTES + 1);
    }

    #[test]
    fn tagged_and_legacy_payloads_both_ingest() {
        let mut m = model();
        m.advance_steps(2, 1).expect("finite");
        let mut track = TrackLog::new();
        // Legacy untagged full-res payload.
        assert!(ingest_tagged(&mut track, &m.frame().to_bytes()));
        // Tagged payloads for every degraded rung.
        for rung in [
            QosRung::DeltaQuantized,
            QosRung::Thumbnail,
            QosRung::TrackOnly,
        ] {
            assert!(ingest_tagged(&mut track, &encode_frame(&m, rung)));
        }
        assert_eq!(track.fixes().len(), 4);
        // Garbage neither panics nor applies.
        assert!(!ingest_tagged(&mut track, b""));
        assert!(!ingest_tagged(&mut track, &[1, 2, 3]));
        assert!(!ingest_tagged(&mut track, &[9u8; 40]));
    }

    #[test]
    fn thumbnail_drops_nest_and_decimates_every_grid() {
        let mut m = model();
        m.advance_steps(3, 1).expect("finite");
        m.spawn_nest();
        m.advance_steps(2, 1).expect("finite");
        let full = m.frame();
        assert!(full.var("nest_pressure").is_some(), "nest present");
        let thumb = thumbnail_dataset(&full, THUMBNAIL_STRIDE);
        assert!(thumb.var("nest_pressure").is_none());
        assert!(thumb.attr("nest_origin_km").is_none());
        assert!(thumb.attr("nest_dx_km").is_none());
        let (full_ny, thumb_ny) = (
            full.dim("south_north").unwrap().len,
            thumb.dim("south_north").unwrap().len,
        );
        assert_eq!(thumb_ny, (full_ny - 1) / THUMBNAIL_STRIDE + 1);
        // Decimated values are exact samples of the full grid.
        let fp = full.var("pressure").unwrap().data.to_f64_vec();
        let tp = thumb.var("pressure").unwrap().data.to_f64_vec();
        let nx = full.dim("west_east").unwrap().len;
        assert_eq!(tp[0], fp[0]);
        assert_eq!(tp[1], fp[THUMBNAIL_STRIDE]);
        let tnx = thumb.dim("west_east").unwrap().len;
        assert_eq!(tp[tnx], fp[THUMBNAIL_STRIDE * nx]);
        // The decimated frame still carries an eye.
        let mut track = TrackLog::new();
        assert!(track.ingest(&thumb).is_some());
    }

    #[test]
    fn strided_indices_cover_corners() {
        assert_eq!(strided_indices(&[5], 2), vec![0, 2, 4]);
        assert_eq!(strided_indices(&[1], 4), vec![0]);
        assert_eq!(strided_indices(&[3, 3], 2), vec![0, 2, 6, 8], "2-D corners");
        assert_eq!(strided_indices(&[], 2), vec![0], "scalar");
    }
}
