//! TCP frame transport — the frame sender/receiver daemons as real
//! network programs.
//!
//! The DES and in-process online modes model the link; this module is the
//! deployable path: a receiver daemon listens on a socket at the
//! visualization site, the sender connects from the simulation site, and
//! frames travel as length-prefixed [`ncdf`] blobs. Wire protocol v3
//! makes the link restartable and rung-aware:
//!
//! ```text
//! handshake (receiver → sender, once per connection):
//!     magic "AHL2" | u64 LE last-applied sequence
//! frame (sender → receiver):
//!     magic "AFR3" | u64 LE sequence | u32 LE payload length
//!                  | u32 LE CRC-32 of payload | u8 degradation rung
//!                  | payload
//! ack (receiver → sender, after every frame):
//!     status byte | u64 LE last-applied sequence
//! ```
//!
//! The rung byte (v3's addition over v2) tells the receiver how to
//! decode the payload — full-resolution dataset, quantized dataset,
//! thumbnail, or a bare eye fix (see [`crate::qos::QosRung`]) — so a
//! sender walking the degradation ladder mid-stream stays decodable
//! frame by frame. An unknown rung is a protocol violation.
//!
//! Sequences start at 1 (`0` = nothing applied yet). The receiver applies
//! a frame at most once: a sequence at or below its last-applied value is
//! acknowledged without being re-applied, which is what lets a sender
//! replay everything unacknowledged after a reconnect without double
//! visualization. Status bytes: `+` applied (or deduplicated), `-` the
//! payload was rejected (undecodable or CRC mismatch — resending the same
//! bytes will not help), `!` protocol violation (bad magic or oversized
//! length) — a terminal nack sent just before the receiver drops the
//! connection, so the sender sees an explicit refusal instead of a bare
//! reset.
//!
//! All sender sockets carry connect/read/write timeouts so a dead or
//! frozen receiver surfaces as [`TransportError::Timeout`] instead of a
//! hang. The recovery loop (reconnect, backoff, resume-from-last-ack)
//! lives in [`crate::resilience::ResilientSender`].

use crate::qos::{self, QosRung};
use crate::resilience::crc32;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use viz::TrackLog;

pub(crate) const FRAME_MAGIC: &[u8; 4] = b"AFR3";
/// Magic bytes opening the resume handshake ("AHL2"): the receiver's
/// hello carries its last-applied sequence so a sender — or the broker's
/// per-client cursors ([`crate::broker`]) — resumes exactly where the
/// peer left off instead of replaying the stream from frame one.
pub const HANDSHAKE_MAGIC: &[u8; 4] = b"AHL2";
/// Upper bound on a frame payload (defends the receiver against a corrupt
/// length prefix).
pub(crate) const MAX_FRAME_BYTES: u32 = 1 << 30;
/// Default socket connect/read/write timeout for senders.
const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

pub(crate) const ACK_APPLIED: u8 = b'+';
pub(crate) const ACK_REJECTED: u8 = b'-';
pub(crate) const ACK_PROTOCOL: u8 = b'!';

/// Transport failures.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent something that is not a frame. Terminal for the
    /// payload: resending the same bytes cannot succeed.
    BadFrame(&'static str),
    /// The resume handshake went wrong: the hello was cut short, stalled
    /// past the handshake deadline, or carried the wrong magic. Unlike
    /// [`BadFrame`](Self::BadFrame) this is *retryable* — a fresh
    /// connection may find a healthy peer — and a resilient sender counts
    /// the successful retry as a reconnect.
    Handshake(&'static str),
    /// The peer stopped responding within the socket timeout.
    Timeout,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::BadFrame(m) => write!(f, "bad frame: {m}"),
            TransportError::Handshake(m) => write!(f, "handshake failed: {m}"),
            TransportError::Timeout => write!(f, "transport timeout"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            TransportError::Timeout
        } else {
            TransportError::Io(e)
        }
    }
}

/// Frame sender: the simulation site's end of the link.
#[derive(Debug)]
pub struct FrameSender {
    stream: TcpStream,
    next_seq: u64,
    peer_last_applied: u64,
}

impl FrameSender {
    /// Connect to a receiver daemon with the default I/O timeout.
    pub fn connect(addr: SocketAddr) -> Result<Self, TransportError> {
        Self::connect_with_timeout(addr, DEFAULT_IO_TIMEOUT)
    }

    /// Connect with an explicit connect/read/write timeout and perform
    /// the resume handshake.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> Result<Self, TransportError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let mut sender = FrameSender {
            stream,
            next_seq: 1,
            peer_last_applied: 0,
        };
        let mut hello = [0u8; 12];
        read_exact_deadline(&mut sender.stream, &mut hello, timeout)?;
        // Restore the steady-state socket timeout the deadline loop
        // tightened per-read.
        sender.stream.set_read_timeout(Some(timeout))?;
        if &hello[..4] != HANDSHAKE_MAGIC {
            return Err(TransportError::Handshake("bad handshake magic"));
        }
        sender.peer_last_applied = u64::from_le_bytes(hello[4..12].try_into().expect("8 bytes"));
        sender.next_seq = sender.peer_last_applied + 1;
        Ok(sender)
    }

    /// Last sequence the receiver reported as applied (from the handshake
    /// and subsequent acks). A reconnecting sender resumes from here.
    pub fn peer_last_applied(&self) -> u64 {
        self.peer_last_applied
    }

    /// Ship one full-resolution frame under the next sequence number and
    /// wait for the ack. The sequence advances only on success.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        self.send_rung(QosRung::FullRes, payload)
    }

    /// Ship one frame at an explicit degradation rung under the next
    /// sequence number. The rung rides in the header so the receiver
    /// picks the matching decoder.
    pub fn send_rung(&mut self, rung: QosRung, payload: &[u8]) -> Result<(), TransportError> {
        let seq = self.next_seq;
        self.send_seq_rung(seq, rung, payload)?;
        self.next_seq = seq + 1;
        Ok(())
    }

    /// Ship one full-resolution frame under an explicit sequence number
    /// and wait for the ack. Used by the resilient sender when replaying
    /// after a reconnect.
    pub fn send_seq(&mut self, seq: u64, payload: &[u8]) -> Result<(), TransportError> {
        self.send_seq_rung(seq, QosRung::FullRes, payload)
    }

    /// Ship one frame under an explicit sequence number and degradation
    /// rung and wait for the ack.
    pub fn send_seq_rung(
        &mut self,
        seq: u64,
        rung: QosRung,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        if payload.len() as u64 > MAX_FRAME_BYTES as u64 {
            return Err(TransportError::BadFrame("payload exceeds frame limit"));
        }
        let mut header = [0u8; 21];
        header[..4].copy_from_slice(FRAME_MAGIC);
        header[4..12].copy_from_slice(&seq.to_le_bytes());
        header[12..16].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[16..20].copy_from_slice(&crc32(payload).to_le_bytes());
        header[20] = rung.as_byte();
        self.stream.write_all(&header)?;
        self.stream.write_all(payload)?;
        let mut ack = [0u8; 9];
        self.read_exact_to(&mut ack)?;
        self.peer_last_applied = u64::from_le_bytes(ack[1..9].try_into().expect("8 bytes"));
        match ack[0] {
            ACK_APPLIED => Ok(()),
            ACK_REJECTED => Err(TransportError::BadFrame("receiver rejected the frame")),
            ACK_PROTOCOL => Err(TransportError::BadFrame(
                "receiver reported a protocol violation",
            )),
            _ => Err(TransportError::BadFrame("unknown ack status")),
        }
    }

    /// `read_exact` that surfaces socket timeouts as
    /// [`TransportError::Timeout`] (the satellite fix for the old
    /// ack-path hang: every read is bounded by the socket timeout).
    fn read_exact_to(&mut self, buf: &mut [u8]) -> Result<(), TransportError> {
        self.stream.read_exact(buf).map_err(TransportError::from)
    }
}

/// Behavior knobs for a receiver daemon.
#[derive(Debug, Clone, Default)]
pub struct ReceiverOptions {
    /// Track accumulated by a previous incarnation (restart-from-
    /// persisted-state); frames land on top of it.
    pub resume_track: TrackLog,
    /// Last sequence the previous incarnation applied (0 = fresh). The
    /// handshake reports it so senders resume from there, and any replay
    /// at or below it is deduplicated.
    pub resume_seq: u64,
    /// Fault-injection hook: the daemon dies after fully *receiving* this
    /// many frames — before applying or acknowledging the last one — as a
    /// crash mid-frame would. `None` = healthy.
    pub kill_after_frames: Option<u64>,
}

/// Handle to a running receiver daemon.
pub struct FrameReceiver {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    frames: Arc<AtomicU64>,
    last_applied: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<TrackLog>>,
}

impl FrameReceiver {
    /// Start a healthy, fresh receiver daemon on `127.0.0.1` (ephemeral
    /// port). It accepts one sender connection at a time, decodes frames,
    /// and accumulates the cyclone track until stopped.
    pub fn start() -> Result<Self, TransportError> {
        Self::start_with(ReceiverOptions::default())
    }

    /// Start a receiver daemon with explicit options (resume state and/or
    /// the fault-injection kill hook).
    pub fn start_with(options: ReceiverOptions) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let frames = Arc::new(AtomicU64::new(0));
        let last_applied = Arc::new(AtomicU64::new(options.resume_seq));
        let t_stop = Arc::clone(&stop);
        let t_frames = Arc::clone(&frames);
        let t_applied = Arc::clone(&last_applied);
        let handle = std::thread::spawn(move || {
            let mut track = options.resume_track;
            let mut frames_left_to_kill = options.kill_after_frames;
            while !t_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true).ok();
                        // Blocking per-connection I/O with a short timeout
                        // so the stop flag is honored.
                        stream
                            .set_read_timeout(Some(Duration::from_millis(50)))
                            .ok();
                        serve_connection(
                            stream,
                            &t_stop,
                            &t_frames,
                            &t_applied,
                            &mut frames_left_to_kill,
                            &mut track,
                        );
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            track
        });
        Ok(FrameReceiver {
            addr,
            stop,
            frames,
            last_applied,
            handle: Some(handle),
        })
    }

    /// Address the sender should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Frames applied by *this* incarnation (resumed frames not counted).
    pub fn frames_received(&self) -> u64 {
        self.frames.load(Ordering::SeqCst)
    }

    /// Highest sequence applied so far (includes the resumed state).
    pub fn last_applied(&self) -> u64 {
        self.last_applied.load(Ordering::SeqCst)
    }

    /// True once the daemon thread has exited (normally via `shutdown`,
    /// or on its own when the kill hook fired).
    pub fn is_finished(&self) -> bool {
        self.handle
            .as_ref()
            .map(|h| h.is_finished())
            .unwrap_or(true)
    }

    /// Stop the daemon and return the accumulated track.
    pub fn shutdown(mut self) -> TrackLog {
        self.stop.store(true, Ordering::SeqCst);
        self.handle
            .take()
            .expect("handle present until shutdown")
            .join()
            .expect("receiver thread panicked")
    }
}

impl Drop for FrameReceiver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    stop: &AtomicBool,
    frames: &AtomicU64,
    last_applied: &AtomicU64,
    frames_left_to_kill: &mut Option<u64>,
    track: &mut TrackLog,
) {
    // Resume handshake: tell the sender where to pick up.
    let mut hello = [0u8; 12];
    hello[..4].copy_from_slice(HANDSHAKE_MAGIC);
    hello[4..12].copy_from_slice(&last_applied.load(Ordering::SeqCst).to_le_bytes());
    if stream.write_all(&hello).is_err() {
        return;
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let mut header = [0u8; 21];
        match read_exact_interruptible(&mut stream, &mut header, stop) {
            Ok(true) => {}
            _ => return, // peer gone or stop requested
        }
        let applied_now = last_applied.load(Ordering::SeqCst);
        if &header[..4] != FRAME_MAGIC {
            // Protocol violation: explicit terminal nack, then close.
            send_ack(&mut stream, ACK_PROTOCOL, applied_now);
            return;
        }
        let seq = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(header[12..16].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
        let Some(rung) = QosRung::from_byte(header[20]) else {
            // An unknown rung is undecodable by construction: terminal nack.
            send_ack(&mut stream, ACK_PROTOCOL, applied_now);
            return;
        };
        if len > MAX_FRAME_BYTES {
            send_ack(&mut stream, ACK_PROTOCOL, applied_now);
            return;
        }
        let mut payload = vec![0u8; len as usize];
        match read_exact_interruptible(&mut stream, &mut payload, stop) {
            Ok(true) => {}
            _ => return,
        }
        // Fault-injection hook: die mid-frame, after receiving but before
        // applying or acking — the worst-timed crash for the sender.
        if let Some(left) = frames_left_to_kill {
            *left = left.saturating_sub(1);
            if *left == 0 {
                stop.store(true, Ordering::SeqCst);
                return;
            }
        }
        if seq <= applied_now {
            // Replay of something already applied (the ack must have been
            // lost): acknowledge without re-applying — exactly-once from
            // the track's point of view.
            if !send_ack(&mut stream, ACK_APPLIED, applied_now) {
                return;
            }
            continue;
        }
        let ok = crc == crc32(&payload)
            && match rung {
                // Full resolution keeps the legacy contract: a decodable
                // dataset counts as applied even when no eye is found.
                QosRung::FullRes => match ncdf::Dataset::from_bytes(&payload) {
                    Ok(ds) => {
                        track.ingest(&ds);
                        true
                    }
                    Err(_) => false,
                },
                // Degraded rungs decode per the header's rung byte.
                _ => qos::apply_body(track, rung, &payload),
            };
        if ok {
            frames.fetch_add(1, Ordering::SeqCst);
            last_applied.store(seq, Ordering::SeqCst);
        }
        let status = if ok { ACK_APPLIED } else { ACK_REJECTED };
        if !send_ack(&mut stream, status, last_applied.load(Ordering::SeqCst)) {
            return;
        }
    }
}

/// `read_exact` under one *overall* deadline: the per-read socket timeout
/// shrinks to the time remaining, so a peer trickling one byte per
/// almost-timeout cannot stretch a 12-byte hello into `12 × timeout` —
/// the whole read is bounded by `deadline`. Short reads (EOF mid-buffer)
/// and deadline expiry both surface as the typed
/// [`TransportError::Handshake`], never a hang.
pub(crate) fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Duration,
) -> Result<(), TransportError> {
    let t0 = Instant::now();
    let mut filled = 0usize;
    while filled < buf.len() {
        let remaining = deadline.saturating_sub(t0.elapsed());
        if remaining.is_zero() {
            return Err(TransportError::Handshake("handshake deadline exceeded"));
        }
        stream.set_read_timeout(Some(remaining))?;
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(TransportError::Handshake("hello cut short")),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(TransportError::Handshake("handshake deadline exceeded"));
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Write a status byte plus the last-applied sequence; false on failure.
fn send_ack(stream: &mut TcpStream, status: u8, last_applied: u64) -> bool {
    let mut ack = [0u8; 9];
    ack[0] = status;
    ack[1..9].copy_from_slice(&last_applied.to_le_bytes());
    stream.write_all(&ack).is_ok()
}

/// `read_exact` that keeps retrying across read timeouts so the stop flag
/// stays responsive. Returns `Ok(false)` on orderly EOF before any byte.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> Result<bool, std::io::Error> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Ok(false);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrf::{ModelConfig, WrfModel};

    #[test]
    fn frames_cross_a_real_socket_and_get_tracked() {
        let receiver = FrameReceiver::start().expect("bind localhost");
        let mut sender = FrameSender::connect(receiver.addr()).expect("connect");
        assert_eq!(sender.peer_last_applied(), 0, "fresh receiver");

        let mut model =
            WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid");
        for _ in 0..3 {
            model
                .advance_to_minutes(model.sim_minutes() + 120.0, 1)
                .expect("finite");
            let bytes = model.frame().to_bytes();
            sender.send(&bytes).expect("frame accepted");
        }
        assert_eq!(receiver.frames_received(), 3);
        assert_eq!(receiver.last_applied(), 3);
        assert_eq!(sender.peer_last_applied(), 3, "acks carry the sequence");
        let track = receiver.shutdown();
        assert_eq!(track.fixes().len(), 3);
        // The remote track matches the model's truth.
        let (lon, lat) = model.eye_lonlat();
        let last = track.fixes().last().expect("fixes recorded");
        assert!((last.lon - lon).abs() < 2.0);
        assert!((last.lat - lat).abs() < 2.0);
    }

    #[test]
    fn garbage_payload_is_nacked_not_fatal() {
        let receiver = FrameReceiver::start().expect("bind");
        let mut sender = FrameSender::connect(receiver.addr()).expect("connect");
        let err = sender.send(b"definitely not a dataset").unwrap_err();
        assert!(matches!(err, TransportError::BadFrame(_)));
        // The connection survives: a valid frame still goes through.
        let model = WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid");
        sender
            .send(&model.frame().to_bytes())
            .expect("valid frame after a nack");
        assert_eq!(receiver.frames_received(), 1);
    }

    #[test]
    fn empty_payload_is_nacked() {
        let receiver = FrameReceiver::start().expect("bind");
        let mut sender = FrameSender::connect(receiver.addr()).expect("connect");
        // Zero bytes is not a decodable dataset; the receiver nacks it and
        // the connection stays usable.
        let err = sender.send(&[]).unwrap_err();
        assert!(matches!(err, TransportError::BadFrame(_)));
        assert_eq!(receiver.frames_received(), 0);
    }

    #[test]
    fn replayed_sequences_are_deduplicated() {
        let receiver = FrameReceiver::start().expect("bind");
        let mut sender = FrameSender::connect(receiver.addr()).expect("connect");
        let model = WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid");
        let bytes = model.frame().to_bytes();
        sender.send(&bytes).expect("first transmission applies");
        assert_eq!(receiver.frames_received(), 1);
        // A replay of sequence 1 (as after a lost ack) is acked but not
        // re-applied.
        sender.send_seq(1, &bytes).expect("replay is acknowledged");
        assert_eq!(receiver.frames_received(), 1, "no double application");
        assert_eq!(receiver.last_applied(), 1);
        let track = receiver.shutdown();
        assert_eq!(track.fixes().len(), 1, "exactly once");
    }

    #[test]
    fn resumed_receiver_reports_its_state_in_the_handshake() {
        let receiver = FrameReceiver::start().expect("bind");
        let mut sender = FrameSender::connect(receiver.addr()).expect("connect");
        let model = WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid");
        sender.send(&model.frame().to_bytes()).expect("applied");
        let applied = receiver.last_applied();
        let track = receiver.shutdown();

        // Restart "after a crash" from persisted state.
        let receiver2 = FrameReceiver::start_with(ReceiverOptions {
            resume_track: track,
            resume_seq: applied,
            kill_after_frames: None,
        })
        .expect("bind");
        let sender2 = FrameSender::connect(receiver2.addr()).expect("connect");
        assert_eq!(sender2.peer_last_applied(), applied, "resume point");
        let track2 = receiver2.shutdown();
        assert_eq!(track2.fixes().len(), 1, "resumed track carried over");
    }

    #[test]
    fn corrupted_payload_is_rejected_by_crc() {
        let receiver = FrameReceiver::start().expect("bind");
        let mut sender = FrameSender::connect(receiver.addr()).expect("connect");
        let model = WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid");
        let mut bytes = model.frame().to_bytes().to_vec();
        // Simulate on-path corruption: flip a byte after the CRC was
        // computed by hand-rolling the frame write.
        let crc = crc32(&bytes);
        let idx = bytes.len() / 2;
        bytes[idx] ^= 0xff;
        let mut header = [0u8; 21];
        header[..4].copy_from_slice(b"AFR3");
        header[4..12].copy_from_slice(&1u64.to_le_bytes());
        header[12..16].copy_from_slice(&(bytes.len() as u32).to_le_bytes());
        header[16..20].copy_from_slice(&crc.to_le_bytes());
        header[20] = 0; // full resolution
        use std::io::Write as _;
        sender.stream.write_all(&header).unwrap();
        sender.stream.write_all(&bytes).unwrap();
        let mut ack = [0u8; 9];
        sender.stream.read_exact(&mut ack).unwrap();
        assert_eq!(ack[0], b'-', "CRC mismatch is rejected");
        assert_eq!(receiver.frames_received(), 0);
    }

    #[test]
    fn bad_magic_gets_a_terminal_nack_before_close() {
        let receiver = FrameReceiver::start().expect("bind");
        let mut stream = TcpStream::connect(receiver.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut hello = [0u8; 12];
        stream.read_exact(&mut hello).expect("handshake");
        assert_eq!(&hello[..4], b"AHL2");
        // 21 bytes of garbage where a frame header should be.
        stream.write_all(&[0xaau8; 21]).unwrap();
        let mut ack = [0u8; 9];
        stream.read_exact(&mut ack).expect("terminal nack arrives");
        assert_eq!(ack[0], b'!', "explicit protocol nack");
        // ...and then the connection is closed.
        let mut rest = [0u8; 1];
        assert_eq!(stream.read(&mut rest).unwrap_or(0), 0, "closed after nack");
    }

    #[test]
    fn oversized_length_gets_a_terminal_nack() {
        let receiver = FrameReceiver::start().expect("bind");
        let mut stream = TcpStream::connect(receiver.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut hello = [0u8; 12];
        stream.read_exact(&mut hello).expect("handshake");
        let mut header = [0u8; 21];
        header[..4].copy_from_slice(b"AFR3");
        header[4..12].copy_from_slice(&1u64.to_le_bytes());
        header[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        header[16..20].copy_from_slice(&0u32.to_le_bytes());
        header[20] = 0;
        stream.write_all(&header).unwrap();
        let mut ack = [0u8; 9];
        stream.read_exact(&mut ack).expect("terminal nack arrives");
        assert_eq!(ack[0], b'!');
    }

    #[test]
    fn unknown_rung_byte_gets_a_terminal_nack() {
        let receiver = FrameReceiver::start().expect("bind");
        let mut stream = TcpStream::connect(receiver.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut hello = [0u8; 12];
        stream.read_exact(&mut hello).expect("handshake");
        let mut header = [0u8; 21];
        header[..4].copy_from_slice(b"AFR3");
        header[4..12].copy_from_slice(&1u64.to_le_bytes());
        header[12..16].copy_from_slice(&0u32.to_le_bytes());
        header[16..20].copy_from_slice(&crc32(&[]).to_le_bytes());
        header[20] = 9; // no such rung
        stream.write_all(&header).unwrap();
        let mut ack = [0u8; 9];
        stream.read_exact(&mut ack).expect("terminal nack arrives");
        assert_eq!(ack[0], b'!', "unknown rung is a protocol violation");
        assert_eq!(receiver.frames_received(), 0);
    }

    #[test]
    fn degraded_rungs_cross_the_socket_and_land_as_fixes() {
        let receiver = FrameReceiver::start().expect("bind");
        let mut sender = FrameSender::connect(receiver.addr()).expect("connect");
        let mut model =
            WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid");

        // Walk the ladder across one connection: the header's rung byte
        // lets the receiver pick the right decoder frame by frame.
        for rung in [
            QosRung::FullRes,
            QosRung::DeltaQuantized,
            QosRung::Thumbnail,
            QosRung::TrackOnly,
        ] {
            model
                .advance_to_minutes(model.sim_minutes() + 60.0, 1)
                .expect("finite");
            let body = qos::encode_body(&model, rung);
            sender.send_rung(rung, &body).expect("frame accepted");
        }
        assert_eq!(receiver.frames_received(), 4);
        assert_eq!(receiver.last_applied(), 4);
        let (lon, lat) = model.eye_lonlat();

        // A quantized body mislabeled as full-res is rejected, not
        // misdecoded: the rung byte is load-bearing.
        model
            .advance_to_minutes(model.sim_minutes() + 60.0, 1)
            .expect("finite");
        let body = qos::encode_body(&model, QosRung::DeltaQuantized);
        let err = sender.send_rung(QosRung::FullRes, &body).unwrap_err();
        assert!(matches!(err, TransportError::BadFrame(_)));

        let track = receiver.shutdown();
        assert_eq!(track.fixes().len(), 4, "every rung produced a fix");
        // The track-only fix is the model's ground truth, bit-exact
        // through the 32-byte fix codec.
        let last = track.fixes().last().expect("fixes recorded");
        assert_eq!(last.lon, lon);
        assert_eq!(last.lat, lat);
    }

    #[test]
    fn short_read_hello_is_a_typed_handshake_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let imposter = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            // Four of the twelve hello bytes, then a clean close: the
            // old `read_exact` surfaced this as a bare I/O error (or, on
            // a half-open peer, a hang).
            let _ = conn.write_all(b"AHL2");
        });
        let err = FrameSender::connect_with_timeout(addr, Duration::from_millis(500)).unwrap_err();
        assert!(
            matches!(err, TransportError::Handshake("hello cut short")),
            "got {err:?}"
        );
        imposter.join().expect("imposter thread");
    }

    #[test]
    fn stalled_handshake_fails_at_the_deadline_not_per_byte() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let imposter = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().expect("accept");
            // Slow-loris hello: one byte per tick, each tick inside a
            // naive per-read timeout. Only an overall deadline bounds
            // this; per-read timeouts alone would tolerate it for
            // 12 x timeout.
            let mut hello = [0u8; 12];
            hello[..4].copy_from_slice(b"AHL2");
            for b in hello {
                if conn.write_all(&[b]).is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(60));
            }
        });
        let started = Instant::now();
        let err = FrameSender::connect_with_timeout(addr, Duration::from_millis(200)).unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::Handshake("handshake deadline exceeded")
            ),
            "got {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_millis(900),
            "the whole handshake is bounded by one deadline, \
             took {:?}",
            started.elapsed()
        );
        imposter.join().expect("imposter thread");
    }

    #[test]
    fn garbage_hello_magic_is_retryable_and_counts_a_reconnect() {
        use crate::resilience::{BackoffPolicy, ResilientSender};

        let fake = TcpListener::bind("127.0.0.1:0").expect("bind");
        let fake_addr = fake.local_addr().expect("addr");
        let imposter = std::thread::spawn(move || {
            let (mut conn, _) = fake.accept().expect("accept");
            // Right length, wrong magic. This must classify as the
            // retryable Handshake error — a terminal BadFrame here would
            // stop the sender from ever trying a healthy replacement.
            let _ = conn.write_all(b"XXXX\x00\x00\x00\x00\x00\x00\x00\x00");
        });
        let err = FrameSender::connect_with_timeout(fake_addr, Duration::from_millis(500))
            .expect_err("wrong magic is refused");
        assert!(
            matches!(err, TransportError::Handshake("bad handshake magic")),
            "got {err:?}"
        );
        imposter.join().expect("imposter thread");

        // The resilient sender retries past the imposter onto a healthy
        // receiver and books the recovery as a reconnect.
        let fake2 = TcpListener::bind("127.0.0.1:0").expect("bind");
        let fake2_addr = fake2.local_addr().expect("addr");
        let imposter2 = std::thread::spawn(move || {
            let (mut conn, _) = fake2.accept().expect("accept");
            let _ = conn.write_all(b"XXXX\x00\x00\x00\x00\x00\x00\x00\x00");
        });
        let receiver = FrameReceiver::start().expect("bind");
        let real_addr = receiver.addr();
        let mut calls = 0u32;
        let mut sender = ResilientSender::new(
            move || {
                calls += 1;
                if calls == 1 {
                    fake2_addr
                } else {
                    real_addr
                }
            },
            BackoffPolicy::new(7).with_base(Duration::from_millis(5)),
        )
        .with_io_timeout(Duration::from_millis(500));
        let model = WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid");
        sender
            .send(&model.frame().to_bytes())
            .expect("retried onto the healthy receiver");
        assert_eq!(
            sender.stats().reconnects,
            1,
            "the failed handshake counted as a reconnect"
        );
        assert_eq!(receiver.frames_received(), 1);
        imposter2.join().expect("imposter thread");
    }

    #[test]
    fn dead_receiver_times_out_instead_of_hanging() {
        let receiver = FrameReceiver::start_with(ReceiverOptions {
            kill_after_frames: Some(1),
            ..Default::default()
        })
        .expect("bind");
        let mut sender =
            FrameSender::connect_with_timeout(receiver.addr(), Duration::from_millis(300))
                .expect("connect");
        let model = WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid");
        // The receiver dies before acking this frame; the old v1 sender
        // would block forever on the ack read. Now the socket timeout
        // fires.
        let started = std::time::Instant::now();
        let err = sender.send(&model.frame().to_bytes()).unwrap_err();
        assert!(
            matches!(err, TransportError::Timeout | TransportError::Io(_)),
            "got {err:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "bounded by the socket timeout"
        );
        assert!(receiver.is_finished(), "kill hook stopped the daemon");
    }
}
