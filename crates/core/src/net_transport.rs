//! TCP frame transport — the frame sender/receiver daemons as real
//! network programs.
//!
//! The DES and in-process online modes model the link; this module is the
//! deployable path: a receiver daemon listens on a socket at the
//! visualization site, the sender connects from the simulation site, and
//! frames travel as length-prefixed [`ncdf`] blobs. The wire format is
//! deliberately trivial:
//!
//! ```text
//! magic "AFRM" | u32 LE payload length | payload (one encoded Dataset)
//! ```
//!
//! The receiver decodes each frame, feeds the eye tracker, and acks with
//! a single byte so the sender can pace itself (the paper's sender also
//! ships frames strictly one at a time).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use viz::TrackLog;

const FRAME_MAGIC: &[u8; 4] = b"AFRM";
/// Upper bound on a frame payload (defends the receiver against a corrupt
/// length prefix).
const MAX_FRAME_BYTES: u32 = 1 << 30;

/// Transport failures.
#[derive(Debug)]
pub enum TransportError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The peer sent something that is not a frame.
    BadFrame(&'static str),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport I/O error: {e}"),
            TransportError::BadFrame(m) => write!(f, "bad frame: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Frame sender: the simulation site's end of the link.
pub struct FrameSender {
    stream: TcpStream,
}

impl FrameSender {
    /// Connect to a receiver daemon.
    pub fn connect(addr: SocketAddr) -> Result<Self, TransportError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(FrameSender { stream })
    }

    /// Ship one encoded frame and wait for the ack.
    pub fn send(&mut self, payload: &[u8]) -> Result<(), TransportError> {
        if payload.len() as u64 > MAX_FRAME_BYTES as u64 {
            return Err(TransportError::BadFrame("payload exceeds frame limit"));
        }
        self.stream.write_all(FRAME_MAGIC)?;
        self.stream
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.stream.write_all(payload)?;
        let mut ack = [0u8; 1];
        self.stream.read_exact(&mut ack)?;
        if ack[0] != b'+' {
            return Err(TransportError::BadFrame("receiver rejected the frame"));
        }
        Ok(())
    }
}

/// Handle to a running receiver daemon.
pub struct FrameReceiver {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    frames: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<TrackLog>>,
}

impl FrameReceiver {
    /// Start a receiver daemon on `127.0.0.1` (ephemeral port). It
    /// accepts one sender connection at a time, decodes frames, and
    /// accumulates the cyclone track until stopped.
    pub fn start() -> Result<Self, TransportError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let frames = Arc::new(AtomicU64::new(0));
        let t_stop = Arc::clone(&stop);
        let t_frames = Arc::clone(&frames);
        let handle = std::thread::spawn(move || {
            let mut track = TrackLog::new();
            while !t_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true).ok();
                        // Blocking per-connection I/O with a short timeout
                        // so the stop flag is honored.
                        stream
                            .set_read_timeout(Some(std::time::Duration::from_millis(50)))
                            .ok();
                        serve_connection(stream, &t_stop, &t_frames, &mut track);
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
            track
        });
        Ok(FrameReceiver {
            addr,
            stop,
            frames,
            handle: Some(handle),
        })
    }

    /// Address the sender should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Frames decoded so far.
    pub fn frames_received(&self) -> u64 {
        self.frames.load(Ordering::SeqCst)
    }

    /// Stop the daemon and return the accumulated track.
    pub fn shutdown(mut self) -> TrackLog {
        self.stop.store(true, Ordering::SeqCst);
        self.handle
            .take()
            .expect("handle present until shutdown")
            .join()
            .expect("receiver thread panicked")
    }
}

impl Drop for FrameReceiver {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_connection(
    mut stream: TcpStream,
    stop: &AtomicBool,
    frames: &AtomicU64,
    track: &mut TrackLog,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let mut header = [0u8; 8];
        match read_exact_interruptible(&mut stream, &mut header, stop) {
            Ok(true) => {}
            _ => return, // peer gone or stop requested
        }
        if &header[..4] != FRAME_MAGIC {
            return; // protocol violation: drop the connection
        }
        let len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len > MAX_FRAME_BYTES {
            return;
        }
        let mut payload = vec![0u8; len as usize];
        match read_exact_interruptible(&mut stream, &mut payload, stop) {
            Ok(true) => {}
            _ => return,
        }
        let ok = match ncdf::Dataset::from_bytes(&payload) {
            Ok(ds) => {
                track.ingest(&ds);
                frames.fetch_add(1, Ordering::SeqCst);
                true
            }
            Err(_) => false,
        };
        let ack = if ok { b"+" } else { b"-" };
        if stream.write_all(ack).is_err() {
            return;
        }
    }
}

/// `read_exact` that keeps retrying across read timeouts so the stop flag
/// stays responsive. Returns `Ok(false)` on orderly EOF before any byte.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    stop: &AtomicBool,
) -> Result<bool, std::io::Error> {
    let mut filled = 0usize;
    while filled < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return Ok(false);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(false),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrf::{ModelConfig, WrfModel};

    #[test]
    fn frames_cross_a_real_socket_and_get_tracked() {
        let receiver = FrameReceiver::start().expect("bind localhost");
        let mut sender = FrameSender::connect(receiver.addr()).expect("connect");

        let mut model =
            WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid");
        for _ in 0..3 {
            model
                .advance_to_minutes(model.sim_minutes() + 120.0, 1)
                .expect("finite");
            let bytes = model.frame().to_bytes();
            sender.send(&bytes).expect("frame accepted");
        }
        assert_eq!(receiver.frames_received(), 3);
        let track = receiver.shutdown();
        assert_eq!(track.fixes().len(), 3);
        // The remote track matches the model's truth.
        let (lon, lat) = model.eye_lonlat();
        let last = track.fixes().last().expect("fixes recorded");
        assert!((last.lon - lon).abs() < 2.0);
        assert!((last.lat - lat).abs() < 2.0);
    }

    #[test]
    fn garbage_payload_is_nacked_not_fatal() {
        let receiver = FrameReceiver::start().expect("bind");
        let mut sender = FrameSender::connect(receiver.addr()).expect("connect");
        let err = sender.send(b"definitely not a dataset").unwrap_err();
        assert!(matches!(err, TransportError::BadFrame(_)));
        // The connection survives: a valid frame still goes through.
        let model =
            WrfModel::new(ModelConfig::aila_default().with_decimation(16)).expect("valid");
        sender
            .send(&model.frame().to_bytes())
            .expect("valid frame after a nack");
        assert_eq!(receiver.frames_received(), 1);
    }

    #[test]
    fn empty_payload_is_nacked() {
        let receiver = FrameReceiver::start().expect("bind");
        let mut sender = FrameSender::connect(receiver.addr()).expect("connect");
        // Zero bytes is not a decodable dataset; the receiver nacks it and
        // the connection stays usable.
        let err = sender.send(&[]).unwrap_err();
        assert!(matches!(err, TransportError::BadFrame(_)));
        assert_eq!(receiver.frames_received(), 0);
    }
}
