//! The application configuration file.
//!
//! "The application manager stores these parameters to an application
//! configuration file. ... The WRF simulation process also periodically
//! reads the application configuration file written by the application
//! manager." In the DES the struct is passed directly; the online mode
//! writes/polls a real JSON file exactly as the paper's components do.

use serde::{Deserialize, Serialize};
use std::path::Path;

/// The tunables the application manager controls.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationConfig {
    /// Processors allocated to the simulation.
    pub num_procs: usize,
    /// Output interval in *simulated* minutes (inverse of the paper's
    /// output frequency).
    pub output_interval_min: f64,
    /// Parent-domain resolution, km.
    pub resolution_km: f64,
    /// Whether the tracking nest is active.
    pub nest_active: bool,
    /// CRITICAL flag: free disk is so low the simulation must stall.
    pub critical: bool,
}

impl ApplicationConfig {
    /// Initial configuration: every algorithm starts at maximum
    /// processors and the minimum output interval ("the greedy method
    /// starts with the maximum number of processors ... and a lowest
    /// output interval of 3 minutes"); the optimization method overwrites
    /// this at its first epoch.
    pub fn initial(max_procs: usize, min_oi_min: f64, resolution_km: f64) -> Self {
        ApplicationConfig {
            num_procs: max_procs,
            output_interval_min: min_oi_min,
            resolution_km,
            nest_active: false,
            critical: false,
        }
    }

    /// True when applying `next` requires a simulation restart (anything
    /// but the CRITICAL flag differs — processors, output interval,
    /// resolution, or nest state).
    pub fn requires_restart(&self, next: &ApplicationConfig) -> bool {
        self.num_procs != next.num_procs
            || (self.output_interval_min - next.output_interval_min).abs() > 1e-9
            || (self.resolution_km - next.resolution_km).abs() > 1e-9
            || self.nest_active != next.nest_active
    }

    /// Serialize to the on-disk JSON representation.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plain struct serializes")
    }

    /// Parse the on-disk JSON representation.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Write the configuration file (atomic via rename, so a polling
    /// reader never sees a torn file).
    pub fn write_file(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)
    }

    /// Read a configuration file.
    pub fn read_file(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ApplicationConfig {
        ApplicationConfig::initial(48, 3.0, 24.0)
    }

    #[test]
    fn initial_is_greedy_start() {
        let c = cfg();
        assert_eq!(c.num_procs, 48);
        assert_eq!(c.output_interval_min, 3.0);
        assert!(!c.critical);
        assert!(!c.nest_active);
    }

    #[test]
    fn restart_detection() {
        let a = cfg();
        assert!(!a.requires_restart(&a.clone()));
        let mut b = a.clone();
        b.critical = true;
        assert!(
            !a.requires_restart(&b),
            "CRITICAL alone is a stall, not a restart"
        );
        let mut b = a.clone();
        b.num_procs = 24;
        assert!(a.requires_restart(&b));
        let mut b = a.clone();
        b.output_interval_min = 25.0;
        assert!(a.requires_restart(&b));
        let mut b = a.clone();
        b.resolution_km = 21.0;
        assert!(a.requires_restart(&b));
        let mut b = a.clone();
        b.nest_active = true;
        assert!(a.requires_restart(&b));
    }

    #[test]
    fn json_roundtrip() {
        let c = cfg();
        let back = ApplicationConfig::from_json(&c.to_json()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("adaptive-core-config-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app_config.json");
        let c = cfg();
        c.write_file(&path).unwrap();
        let back = ApplicationConfig::read_file(&path).unwrap();
        assert_eq!(c, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_file_is_invalid_data() {
        let dir = std::env::temp_dir().join("adaptive-core-config-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = ApplicationConfig::read_file(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }
}
