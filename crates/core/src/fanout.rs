//! Multi-site visualization fan-out.
//!
//! The paper motivates remote visualization with "joint analysis by a
//! geographically distributed climate science community" but evaluates a
//! single visualization site. This module extends the frame pipeline to
//! *N* receivers over heterogeneous links, which surfaces a policy
//! question the single-site design never faces: **when may the simulation
//! site reclaim a frame's disk space?**
//!
//! - [`ReleasePolicy::AllReceived`] — only after every site has the frame
//!   (archival semantics; one overseas dial-up link holds the whole
//!   system's storage hostage),
//! - [`ReleasePolicy::Quorum`]`(k)` — after `k` sites have it (the
//!   stragglers keep streaming from their queues, but a frame still on
//!   disk only for laggards no longer counts against the simulation),
//! - [`ReleasePolicy::FirstReceived`] — as soon as anyone has it (the
//!   paper's single-site behaviour, generalized; laggards' unserved
//!   queues are dropped when space is reclaimed).
//!
//! Each receiver also carries its own degradation rung
//! ([`crate::qos::QosRung`]): on heterogeneous links the overseas site
//! can take track-only fixes while the campus site takes full frames,
//! which shrinks the straggler's transfer times by the rung's byte
//! factor. The simulation site still stores the full-resolution frame —
//! the rung only scales what crosses that receiver's link.
//!
//! The fan-out runs on the same DES substrate as the main orchestrator
//! and is exercised by the `multi_site_viz` example and the fan-out
//! integration tests.

use crate::qos::QosRung;
use des::{run_until_empty, Scheduler, Series, SeriesSet};
use resources::{Disk, Network};
use std::collections::HashMap;

/// One remote visualization site.
#[derive(Debug)]
pub struct ReceiverSpec {
    /// Site label for reports.
    pub label: String,
    /// The sim→site link.
    pub network: Network,
    /// Degradation rung this site's frames ship at (scales transfer
    /// bytes by [`QosRung::byte_factor`]).
    pub rung: QosRung,
}

/// When the simulation site may free a frame's bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReleasePolicy {
    /// Free once every receiver holds the frame.
    AllReceived,
    /// Free once this many receivers hold the frame.
    ///
    /// `k` larger than the (live) receiver count is clamped down to it —
    /// a quorum bigger than the fleet can only mean "everyone", so it
    /// behaves as [`AllReceived`](Self::AllReceived). `k == 0` is
    /// **rejected** when the fan-out starts: a zero quorum would release
    /// every frame the instant it is produced, silently behaving like
    /// [`FirstReceived`](Self::FirstReceived) minus the delivery — if
    /// that is wanted, it must be asked for by name.
    Quorum(usize),
    /// Free as soon as the first receiver holds the frame.
    FirstReceived,
}

impl ReleasePolicy {
    /// Deliveries required before a frame's bytes may be reclaimed,
    /// given how many receivers are still alive. With no survivors no
    /// count can satisfy any policy, so the threshold is unreachable.
    fn threshold(&self, alive: usize) -> usize {
        if alive == 0 {
            return usize::MAX;
        }
        match *self {
            ReleasePolicy::AllReceived => alive,
            ReleasePolicy::Quorum(k) => k.clamp(1, alive),
            ReleasePolicy::FirstReceived => 1,
        }
    }
}

/// Fan-out experiment configuration: a producer writing fixed-cadence
/// frames against a finite disk, broadcast to every receiver.
#[derive(Debug)]
pub struct FanOutConfig {
    /// Simulation-site disk.
    pub disk: Disk,
    /// Bytes per frame.
    pub frame_bytes: u64,
    /// Wall seconds between produced frames.
    pub production_interval_secs: f64,
    /// Frames to produce.
    pub frames: u64,
    /// The receivers.
    pub receivers: Vec<ReceiverSpec>,
    /// Space-reclamation policy.
    pub policy: ReleasePolicy,
    /// Mid-stream receiver failures as `(receiver index, wall seconds)`:
    /// at that instant the site dies permanently — its backlog is counted
    /// unserved, an in-flight transfer never lands, it receives nothing
    /// produced afterwards, and release thresholds are recomputed over
    /// the survivors (frames the survivors already cover release then).
    pub crashes: Vec<(usize, f64)>,
}

/// What a fan-out run observed.
#[derive(Debug)]
pub struct FanOutOutcome {
    /// Frames successfully written (dropped writes hit a full disk).
    pub frames_produced: u64,
    /// Frames dropped on a full disk.
    pub frames_dropped: u64,
    /// Frames delivered per receiver, in receiver order.
    pub delivered: Vec<u64>,
    /// Frames a receiver never got because the bytes were reclaimed
    /// first (queue entries trimmed by [`ReleasePolicy::FirstReceived`])
    /// or because the receiver crashed while they were queued or in
    /// flight, in receiver order. This is the data loss those events
    /// trade for disk headroom — zero under `AllReceived`/`Quorum` with
    /// no crashes.
    pub unserved: Vec<u64>,
    /// Wall seconds when the last *policy-satisfying* delivery happened.
    pub wall_secs: f64,
    /// Lowest free-disk percentage observed.
    pub min_free_pct: f64,
    /// `free_disk_pct` plus one `delivered:<label>` series per receiver.
    pub series: SeriesSet,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Ev {
    Produce,
    Delivered { receiver: usize, frame: u64 },
    Crash { receiver: usize },
}

struct World {
    cfg: FanOutConfig,
    disk_free_series: Series,
    delivered_series: Vec<Series>,
    // Per-receiver FIFO backlog (frame ids awaiting transfer) + busy flag.
    queues: Vec<Vec<u64>>,
    busy: Vec<bool>,
    alive: Vec<bool>,
    // How many receivers have each in-flight frame; bytes freed at the
    // policy threshold. A frame's entry is removed when it releases, so
    // reclamation is exactly-once by construction.
    received_count: HashMap<u64, usize>,
    next_frame: u64,
    produced: u64,
    dropped: u64,
    delivered: Vec<u64>,
    unserved: Vec<u64>,
    min_free_pct: f64,
    threshold: usize,
    last_release_secs: f64,
}

impl World {
    fn kick(&mut self, r: usize, sched: &mut Scheduler<Ev>) {
        if !self.alive[r] || self.busy[r] || self.queues[r].is_empty() {
            return;
        }
        let frame = self.queues[r].remove(0);
        self.busy[r] = true;
        self.cfg.receivers[r].network.step();
        // The receiver's rung scales what actually crosses its link.
        let factor = self.cfg.receivers[r].rung.byte_factor();
        let wire_bytes = ((self.cfg.frame_bytes as f64 * factor).ceil() as u64).max(1);
        let secs = self.cfg.receivers[r].network.transfer_time(wire_bytes);
        sched.schedule_in(secs, Ev::Delivered { receiver: r, frame });
    }

    fn record_disk(&mut self, now: des::SimTime) {
        let pct = self.cfg.disk.free_percent();
        self.min_free_pct = self.min_free_pct.min(pct);
        self.disk_free_series.record(now, pct);
    }

    /// Reclaim one frame's bytes. Removing the count entry first is what
    /// makes this exactly-once: a later delivery of the same frame, or a
    /// second threshold recomputation after another crash, finds nothing
    /// left to free.
    fn release(&mut self, frame: u64, now: des::SimTime) {
        if self.received_count.remove(&frame).is_none() {
            return;
        }
        self.cfg.disk.free_bytes(self.cfg.frame_bytes);
        self.last_release_secs = now.as_secs();
        self.record_disk(now);
        // FirstReceived semantics only: laggards' queued copies of this
        // frame are dropped with the bytes — and counted, so the data
        // loss is visible per site. A Quorum that *degraded* to a
        // threshold of one after crashes still lets stragglers stream
        // from their queues.
        if matches!(self.cfg.policy, ReleasePolicy::FirstReceived) {
            for (r, q) in self.queues.iter_mut().enumerate() {
                let before = q.len();
                q.retain(|&f| f != frame);
                self.unserved[r] += (before - q.len()) as u64;
            }
        }
    }
}

/// Run the fan-out to completion (all frames produced and every queue
/// drained or dropped).
pub fn run_fanout(cfg: FanOutConfig) -> FanOutOutcome {
    assert!(!cfg.receivers.is_empty(), "fan-out needs receivers");
    assert!(cfg.frame_bytes > 0 && cfg.frames > 0);
    assert!(
        !matches!(cfg.policy, ReleasePolicy::Quorum(0)),
        "Quorum(0) is rejected: a zero quorum would release every frame \
         the instant it is produced — ask for FirstReceived by name, or \
         use a quorum of at least one"
    );
    let n = cfg.receivers.len();
    for &(r, at) in &cfg.crashes {
        assert!(r < n, "crash names receiver {r} but there are only {n}");
        assert!(
            at >= 0.0 && at.is_finite(),
            "crash time must be finite and non-negative, got {at}"
        );
    }
    let threshold = cfg.policy.threshold(n);
    let delivered_series = cfg
        .receivers
        .iter()
        .map(|r| Series::new(format!("delivered:{}", r.label)))
        .collect();
    let mut world = World {
        threshold,
        disk_free_series: Series::new("free_disk_pct"),
        delivered_series,
        queues: vec![Vec::new(); n],
        busy: vec![false; n],
        alive: vec![true; n],
        received_count: HashMap::new(),
        next_frame: 0,
        produced: 0,
        dropped: 0,
        delivered: vec![0; n],
        unserved: vec![0; n],
        min_free_pct: 100.0,
        last_release_secs: 0.0,
        cfg,
    };
    let mut sched: Scheduler<Ev> = Scheduler::new();
    sched.schedule_in(world.cfg.production_interval_secs, Ev::Produce);
    for &(r, at) in &world.cfg.crashes {
        sched.schedule_in(at, Ev::Crash { receiver: r });
    }

    run_until_empty(&mut sched, &mut world, |w, now, ev, sched| {
        match ev {
            Ev::Produce => {
                let id = w.next_frame;
                w.next_frame += 1;
                if w.cfg.disk.write(w.cfg.frame_bytes).is_ok() {
                    w.produced += 1;
                    w.received_count.insert(id, 0);
                    for r in 0..w.queues.len() {
                        if !w.alive[r] {
                            continue;
                        }
                        w.queues[r].push(id);
                        w.kick(r, sched);
                    }
                } else {
                    w.dropped += 1;
                }
                w.record_disk(now);
                if w.next_frame < w.cfg.frames {
                    sched.schedule_in(w.cfg.production_interval_secs, Ev::Produce);
                }
            }
            Ev::Delivered { receiver, frame } => {
                if !w.alive[receiver] {
                    // The transfer was mid-flight when the site died; the
                    // frame never landed anywhere usable.
                    w.unserved[receiver] += 1;
                    return true;
                }
                w.busy[receiver] = false;
                w.delivered[receiver] += 1;
                w.delivered_series[receiver].record(now, w.delivered[receiver] as f64);
                if let Some(count) = w.received_count.get_mut(&frame) {
                    *count += 1;
                    if *count >= w.threshold {
                        w.release(frame, now);
                    }
                }
                w.kick(receiver, sched);
            }
            Ev::Crash { receiver } => {
                if !w.alive[receiver] {
                    return true;
                }
                w.alive[receiver] = false;
                // Whatever the site was still owed is lost — counted,
                // not silent. (Its in-flight frame, if any, is counted
                // when the Delivered event fires on a dead receiver.)
                w.unserved[receiver] += w.queues[receiver].len() as u64;
                w.queues[receiver].clear();
                // The policy now binds over the survivors: frames they
                // already cover release immediately, each exactly once.
                let alive = w.alive.iter().filter(|a| **a).count();
                w.threshold = w.cfg.policy.threshold(alive);
                let mut ready: Vec<u64> = w
                    .received_count
                    .iter()
                    .filter(|&(_, c)| *c >= w.threshold)
                    .map(|(&f, _)| f)
                    .collect();
                ready.sort_unstable();
                for f in ready {
                    w.release(f, now);
                }
            }
        }
        true
    });
    let last_release_secs = world.last_release_secs;

    let mut series = SeriesSet::new();
    series.push(world.disk_free_series);
    for s in world.delivered_series {
        series.push(s);
    }
    FanOutOutcome {
        frames_produced: world.produced,
        frames_dropped: world.dropped,
        delivered: world.delivered,
        unserved: world.unserved,
        wall_secs: last_release_secs,
        min_free_pct: world.min_free_pct,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn receivers() -> Vec<ReceiverSpec> {
        vec![
            ReceiverSpec {
                label: "campus".into(),
                network: Network::ideal(7e6),
                rung: QosRung::FullRes,
            },
            ReceiverSpec {
                label: "national".into(),
                network: Network::ideal(5e6),
                rung: QosRung::FullRes,
            },
            ReceiverSpec {
                label: "overseas".into(),
                network: Network::ideal(7.5e3),
                rung: QosRung::FullRes,
            },
        ]
    }

    fn cfg(policy: ReleasePolicy) -> FanOutConfig {
        FanOutConfig {
            disk: Disk::new(2_000_000_000), // 2 GB
            frame_bytes: 100_000_000,       // 100 MB → disk holds 20 frames
            production_interval_secs: 30.0,
            frames: 40,
            receivers: receivers(),
            policy,
            crashes: Vec::new(),
        }
    }

    #[test]
    fn all_received_is_hostage_to_the_slowest_link() {
        let out = run_fanout(cfg(ReleasePolicy::AllReceived));
        // 100 MB over 7.5 KB/s ≈ 3.7 h per frame: the disk fills long
        // before the overseas site drains anything.
        assert!(out.frames_dropped > 0, "{out:?}");
        assert!(out.min_free_pct < 5.0);
    }

    #[test]
    fn quorum_two_decouples_the_straggler() {
        let out = run_fanout(cfg(ReleasePolicy::Quorum(2)));
        // The two fast sites clear each frame in ~34 s ≈ the production
        // cadence, so nothing is dropped...
        assert_eq!(out.frames_dropped, 0, "{out:?}");
        assert_eq!(out.delivered[0], 40);
        assert_eq!(out.delivered[1], 40);
        // ... and the overseas site still receives whatever it can.
        assert!(out.delivered[2] >= 1);
    }

    #[test]
    fn first_received_matches_single_site_behaviour() {
        let out = run_fanout(cfg(ReleasePolicy::FirstReceived));
        assert_eq!(out.frames_dropped, 0);
        assert_eq!(out.delivered[0], 40, "fastest site gets everything");
        // Straggler queues are trimmed when bytes are reclaimed.
        assert!(out.delivered[2] < 40);
    }

    #[test]
    fn first_received_data_loss_is_counted_per_laggard() {
        let out = run_fanout(cfg(ReleasePolicy::FirstReceived));
        // Every produced frame either reached a site or is counted as
        // unserved for it — the loss is visible, not silent.
        for r in 0..3 {
            assert_eq!(
                out.delivered[r] + out.unserved[r],
                out.frames_produced,
                "site {r}: delivered + unserved must cover production"
            );
        }
        assert_eq!(out.unserved[0], 0, "fastest site loses nothing");
        assert!(out.unserved[2] > 0, "the overseas laggard's loss shows up");
    }

    #[test]
    fn blocking_policies_never_unserve() {
        for policy in [ReleasePolicy::AllReceived, ReleasePolicy::Quorum(2)] {
            let out = run_fanout(cfg(policy));
            assert_eq!(out.unserved, vec![0, 0, 0], "{policy:?} holds bytes");
        }
    }

    #[test]
    fn per_receiver_rung_rescues_the_straggler() {
        // Same links, but the overseas site subscribes at track-only:
        // 100 MB shrinks to 100 KB on its link (~13 s ≪ 30 s cadence),
        // so even AllReceived stops being hostage to it.
        let mut c = cfg(ReleasePolicy::AllReceived);
        c.receivers[2].rung = QosRung::TrackOnly;
        let out = run_fanout(c);
        assert_eq!(out.frames_dropped, 0, "{out:?}");
        assert_eq!(out.delivered, vec![40, 40, 40]);
        assert_eq!(out.unserved, vec![0, 0, 0]);
    }

    #[test]
    fn policies_order_disk_pressure() {
        let all = run_fanout(cfg(ReleasePolicy::AllReceived));
        let quorum = run_fanout(cfg(ReleasePolicy::Quorum(2)));
        let first = run_fanout(cfg(ReleasePolicy::FirstReceived));
        assert!(all.min_free_pct <= quorum.min_free_pct + 1e-9);
        assert!(quorum.min_free_pct <= first.min_free_pct + 1e-9);
    }

    #[test]
    fn delivery_series_are_monotone() {
        let out = run_fanout(cfg(ReleasePolicy::Quorum(2)));
        for r in ["campus", "national", "overseas"] {
            let s = out
                .series
                .get(&format!("delivered:{r}"))
                .expect("series per receiver");
            assert!(s.is_monotone_non_decreasing());
        }
        assert!(out.series.get("free_disk_pct").is_some());
    }

    #[test]
    fn quorum_clamps_to_receiver_count() {
        let mut c = cfg(ReleasePolicy::Quorum(99));
        c.frames = 3;
        c.production_interval_secs = 1e5; // plenty of drain time
        let out = run_fanout(c);
        // Quorum(99) over 3 receivers behaves like AllReceived: with the
        // slow production cadence everything eventually clears.
        assert_eq!(out.frames_dropped, 0);
        assert_eq!(out.delivered, vec![3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "Quorum(0) is rejected")]
    fn quorum_zero_is_rejected() {
        run_fanout(cfg(ReleasePolicy::Quorum(0)));
    }

    #[test]
    fn crash_mid_stream_reclaims_each_frame_exactly_once() {
        // AllReceived is hostage to the overseas link — until that site
        // crashes at t=100 s, after which the threshold recomputes over
        // the two fast survivors and the run clears. Any double-free
        // would trip the Disk accounting panic; the final free-disk
        // sample proving all 40 frames came back exactly once.
        let mut c = cfg(ReleasePolicy::AllReceived);
        c.crashes = vec![(2, 100.0)];
        let out = run_fanout(c);
        assert_eq!(out.frames_dropped, 0, "{out:?}");
        assert_eq!(out.delivered[0], 40);
        assert_eq!(out.delivered[1], 40);
        assert_eq!(out.delivered[2], 0, "overseas never finished a frame");
        // 3 frames were owed to it when it died (one mid-flight).
        assert_eq!(out.unserved[2], 3);
        let free = out.series.get("free_disk_pct").expect("disk series");
        let (_, final_pct) = *free.points.last().expect("recorded");
        assert_eq!(final_pct, 100.0, "every frame reclaimed exactly once");
    }

    #[test]
    fn crash_under_quorum_recomputes_threshold_over_survivors() {
        // Quorum(2) sails while both fast sites live; when "national"
        // crashes at t=95 s the quorum binds over campus + overseas and
        // the run becomes hostage to the dial-up link again.
        let mut c = cfg(ReleasePolicy::Quorum(2));
        c.crashes = vec![(1, 95.0)];
        let out = run_fanout(c);
        assert!(out.frames_dropped > 0, "{out:?}");
        assert_eq!(out.delivered[1], 2, "two frames landed before death");
        assert_eq!(out.unserved[1], 1, "the in-flight third is counted");
        // Quorum never trims the straggler's queue — even one degraded
        // by a crash. Whatever overseas was queued, it eventually gets.
        assert_eq!(out.unserved[2], 0);
        assert!(out.delivered[2] > 0);
    }

    #[test]
    fn crash_under_first_received_still_trims_only_laggards() {
        // The fastest site dies mid-stream; FirstReceived keeps releasing
        // via the next-fastest survivor, and only laggard queues are
        // trimmed. The surviving sites' loss accounting stays exact.
        let mut c = cfg(ReleasePolicy::FirstReceived);
        c.crashes = vec![(0, 95.0)];
        let out = run_fanout(c);
        assert_eq!(out.frames_dropped, 0, "{out:?}");
        assert_eq!(out.delivered[1], 40, "the survivor takes over");
        assert_eq!(out.unserved[1], 0, "a releasing site is never trimmed");
        assert!(out.unserved[2] > 0, "the laggard still pays");
        assert_eq!(
            out.delivered[2] + out.unserved[2],
            out.frames_produced,
            "surviving laggard: delivered + unserved covers production"
        );
    }
}
