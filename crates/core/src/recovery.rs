//! Whole-pipeline crash recovery for the live online mode.
//!
//! The DES orchestrator models a `kill -9` analytically; this module makes
//! the *live* pipeline actually survive one. All simulation-site state is
//! kept crash-consistent in a single state directory:
//!
//! ```text
//! <state_dir>/
//!   MANIFEST.json          incarnation record (+ completed flag)
//!   LOCK                   held while an incarnation is alive
//!   journal/               FrameStore write-ahead log (resources::journal)
//!   frames/frame-<id>.bin  pending frame payloads (snapshot container)
//!   checkpoints/checkpoint-<n>.acp
//!                          bundles: meta JSON + WrfModel checkpoint bytes
//!   receiver.acp           visualization site: applied watermark + track
//! ```
//!
//! On startup the (crate-internal) `bootstrap` step detects a prior
//! incarnation (manifest present,
//! not marked completed), replays the journal into a rebuilt
//! [`FrameStore`], loads the newest *valid* checkpoint (falling back past
//! corrupt ones, to a cold start if none survive), reconciles the ledger
//! with the receiver's durable last-applied watermark (the live analogue
//! of the `AHL2` handshake's last-applied sequence), and requeues whatever
//! was mid-flight. [`run_with_recovery`] wraps the whole thing in a
//! supervisor loop: run the pipeline, and if it was killed, restart it
//! from disk until the mission completes.

use crate::config::ApplicationConfig;
use crate::decision::AlgorithmKind;
use crate::manager::ManagerState;
use crate::online::{run_online, OnlineOptions, OnlineReport};
use cyclone::{Mission, Site};
use resources::{journal, Disk, FrameStore};
use serde::{Deserialize, Serialize};
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use viz::{EyeFix, TrackLog};
use wrf::checkpoint::{read_snapshot_file, write_snapshot_file};
use wrf::WrfModel;

/// Where and how often the online pipeline persists its state.
#[derive(Debug, Clone)]
pub struct DurabilityOptions {
    /// Root of the state directory sketched in the module docs.
    pub state_dir: PathBuf,
    /// Checkpoint cadence in *simulated* minutes; `0.0` disables periodic
    /// checkpoints (the journal and receiver state stay durable, so
    /// recovery still works — it just re-simulates from the start).
    pub checkpoint_every_min: f64,
    /// How many checkpoint files to keep (at least 1). Older ones are
    /// pruned after each write; keeping several lets recovery fall back
    /// past a corrupt newest file.
    pub keep_checkpoints: usize,
}

impl DurabilityOptions {
    /// Sensible defaults: checkpoint every simulated hour, keep three.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        DurabilityOptions {
            state_dir: state_dir.into(),
            checkpoint_every_min: 60.0,
            keep_checkpoints: 3,
        }
    }

    /// Builder: checkpoint cadence in simulated minutes (`0` disables).
    pub fn with_checkpoint_every_min(mut self, minutes: f64) -> Self {
        self.checkpoint_every_min = minutes;
        self
    }

    /// Builder: checkpoint files to retain.
    pub fn with_keep_checkpoints(mut self, keep: usize) -> Self {
        self.keep_checkpoints = keep.max(1);
        self
    }

    /// Journal directory.
    pub fn journal_dir(&self) -> PathBuf {
        self.state_dir.join("journal")
    }

    /// Frame payload directory.
    pub fn frames_dir(&self) -> PathBuf {
        self.state_dir.join("frames")
    }

    /// Checkpoint directory.
    pub fn checkpoints_dir(&self) -> PathBuf {
        self.state_dir.join("checkpoints")
    }

    /// Receiver-state snapshot path.
    pub fn receiver_path(&self) -> PathBuf {
        self.state_dir.join("receiver.acp")
    }

    fn manifest_path(&self) -> PathBuf {
        self.state_dir.join("MANIFEST.json")
    }

    fn lock_path(&self) -> PathBuf {
        self.state_dir.join("LOCK")
    }
}

/// The manifest: one JSON file recording which incarnation last owned the
/// state directory and whether the mission ran to completion.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Manifest {
    version: u32,
    incarnation: u64,
    completed: bool,
}

const MANIFEST_VERSION: u32 = 1;

fn read_manifest(d: &DurabilityOptions) -> Option<Manifest> {
    let text = fs::read_to_string(d.manifest_path()).ok()?;
    serde_json::from_str(&text).ok()
}

fn write_manifest(d: &DurabilityOptions, m: &Manifest) -> io::Result<()> {
    let text = serde_json::to_string_pretty(m)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = d.manifest_path().with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, d.manifest_path())
}

/// Mark the mission complete and release the lock — called by the
/// pipeline after a clean finish.
pub(crate) fn mark_completed(d: &DurabilityOptions) {
    if let Some(mut m) = read_manifest(d) {
        m.completed = true;
        let _ = write_manifest(d, &m);
    }
    let _ = fs::remove_file(d.lock_path());
}

// ---------------------------------------------------------------------
// Checkpoint bundles
// ---------------------------------------------------------------------

/// Everything a checkpoint carries besides the model bytes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// Simulated minutes at checkpoint time.
    pub sim_minutes: f64,
    /// The sim thread's next scheduled output, simulated minutes.
    pub next_output_min: f64,
    /// Application configuration in force (nest schedule position rides
    /// in `resolution_km` / `nest_active`).
    pub config: ApplicationConfig,
    /// Manager epoch state.
    pub manager: ManagerState,
    /// Cumulative stall episodes.
    pub stalls: u64,
    /// Cumulative simulation crashes recovered in-process.
    pub crashes: u64,
    /// Receiver's applied watermark (last applied frame id + 1) when the
    /// checkpoint was cut — the transport's last-acked sequence.
    pub applied_watermark: u64,
}

fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq:06}.acp"))
}

fn checkpoint_seqs(dir: &Path) -> Vec<u64> {
    let mut seqs = Vec::new();
    if let Ok(entries) = fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(mid) = name
                .strip_prefix("checkpoint-")
                .and_then(|s| s.strip_suffix(".acp"))
            {
                if let Ok(seq) = mid.parse::<u64>() {
                    seqs.push(seq);
                }
            }
        }
    }
    seqs.sort_unstable();
    seqs
}

/// Write one checkpoint bundle: `u32 LE meta_len | meta JSON | model
/// checkpoint bytes` inside the checksummed snapshot container.
pub(crate) fn write_checkpoint(
    dir: &Path,
    seq: u64,
    meta: &CheckpointMeta,
    model_bytes: &[u8],
) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let meta_json = serde_json::to_string(meta)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut payload = Vec::with_capacity(4 + meta_json.len() + model_bytes.len());
    payload.extend_from_slice(&(meta_json.len() as u32).to_le_bytes());
    payload.extend_from_slice(meta_json.as_bytes());
    payload.extend_from_slice(model_bytes);
    write_snapshot_file(&checkpoint_path(dir, seq), &payload)
}

fn parse_checkpoint(payload: &[u8]) -> Option<(CheckpointMeta, WrfModel)> {
    if payload.len() < 4 {
        return None;
    }
    let meta_len = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
    let rest = payload.get(4..)?;
    if rest.len() < meta_len {
        return None;
    }
    let meta: CheckpointMeta =
        serde_json::from_str(std::str::from_utf8(&rest[..meta_len]).ok()?).ok()?;
    let model = WrfModel::restore(&rest[meta_len..]).ok()?;
    Some((meta, model))
}

/// Load the newest checkpoint that verifies and parses, walking backwards
/// past corrupt ones. Returns the bundle, its sequence number, and how
/// many corrupt files were skipped on the way.
pub(crate) fn load_newest_checkpoint(dir: &Path) -> Option<(CheckpointMeta, WrfModel, u64, usize)> {
    let mut skipped = 0;
    for &seq in checkpoint_seqs(dir).iter().rev() {
        match read_snapshot_file(&checkpoint_path(dir, seq)) {
            Ok(payload) => {
                if let Some((meta, model)) = parse_checkpoint(&payload) {
                    return Some((meta, model, seq, skipped));
                }
                skipped += 1;
            }
            Err(_) => skipped += 1,
        }
    }
    None
}

/// Delete all but the newest `keep` checkpoints.
pub(crate) fn prune_checkpoints(dir: &Path, keep: usize) {
    let seqs = checkpoint_seqs(dir);
    if seqs.len() > keep {
        for &seq in &seqs[..seqs.len() - keep] {
            let _ = fs::remove_file(checkpoint_path(dir, seq));
        }
    }
}

/// Fault-injection hook: flip bytes in the middle of the newest
/// checkpoint file so its CRC no longer verifies. Returns `true` when a
/// file was damaged.
pub(crate) fn corrupt_newest_checkpoint(dir: &Path) -> bool {
    let Some(&seq) = checkpoint_seqs(dir).last() else {
        return false;
    };
    let path = checkpoint_path(dir, seq);
    let Ok(mut data) = fs::read(&path) else {
        return false;
    };
    if data.len() < 64 {
        return false;
    }
    let mid = data.len() / 2;
    for b in &mut data[mid..mid + 8] {
        *b ^= 0xa5;
    }
    fs::write(&path, &data).is_ok()
}

// ---------------------------------------------------------------------
// Receiver-state snapshots
// ---------------------------------------------------------------------

/// Persist the visualization site's durable state: the applied watermark
/// (last applied frame id + 1) and every accumulated eye fix.
pub(crate) fn save_receiver_state(path: &Path, watermark: u64, track: &TrackLog) -> io::Result<()> {
    let fixes = track.fixes();
    let mut payload = Vec::with_capacity(16 + fixes.len() * 32);
    payload.extend_from_slice(&watermark.to_le_bytes());
    payload.extend_from_slice(&(fixes.len() as u64).to_le_bytes());
    for f in fixes {
        payload.extend_from_slice(&f.sim_minutes.to_le_bytes());
        payload.extend_from_slice(&f.lon.to_le_bytes());
        payload.extend_from_slice(&f.lat.to_le_bytes());
        payload.extend_from_slice(&f.pressure_hpa.to_le_bytes());
    }
    write_snapshot_file(path, &payload)
}

/// Load receiver state saved by [`save_receiver_state`]; `None` when the
/// snapshot is absent or does not verify (the receiver then starts cold
/// and the sender re-ships everything still on disk).
pub(crate) fn load_receiver_state(path: &Path) -> Option<(u64, TrackLog)> {
    let payload = read_snapshot_file(path).ok()?;
    if payload.len() < 16 {
        return None;
    }
    let f64_at = |off: usize| f64::from_le_bytes(payload[off..off + 8].try_into().unwrap());
    let watermark = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let n = u64::from_le_bytes(payload[8..16].try_into().unwrap()) as usize;
    if payload.len() != 16 + n * 32 {
        return None;
    }
    let mut fixes = Vec::with_capacity(n);
    for i in 0..n {
        let off = 16 + i * 32;
        fixes.push(EyeFix {
            sim_minutes: f64_at(off),
            lon: f64_at(off + 8),
            lat: f64_at(off + 16),
            pressure_hpa: f64_at(off + 24),
        });
    }
    Some((watermark, TrackLog::from_fixes(fixes)))
}

// ---------------------------------------------------------------------
// Frame payload files
// ---------------------------------------------------------------------

/// Path of frame `id`'s payload file.
pub(crate) fn frame_path(frames_dir: &Path, id: u64) -> PathBuf {
    frames_dir.join(format!("frame-{id:08}.bin"))
}

fn frame_ids(frames_dir: &Path) -> Vec<u64> {
    let mut ids = Vec::new();
    if let Ok(entries) = fs::read_dir(frames_dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(mid) = name
                .strip_prefix("frame-")
                .and_then(|s| s.strip_suffix(".bin"))
            {
                if let Ok(id) = mid.parse::<u64>() {
                    ids.push(id);
                }
            }
        }
    }
    ids.sort_unstable();
    ids
}

// ---------------------------------------------------------------------
// Bootstrap
// ---------------------------------------------------------------------

/// Everything `run_online` needs to start (or resume) a durable
/// incarnation.
pub(crate) struct DurableBoot {
    /// Journal-backed store carrying the prior incarnation's ledger.
    pub store: FrameStore,
    /// Model to resume from (`None` = cold start from the mission config).
    pub model: Option<WrfModel>,
    /// Next scheduled output in simulated minutes (`None` = mission
    /// minimum).
    pub next_output_min: Option<f64>,
    /// Configuration to (re)write to the config file.
    pub config: Option<ApplicationConfig>,
    /// Manager epoch state to resume from.
    pub manager: Option<ManagerState>,
    /// Reloaded payloads of still-pending frames: `(id, sim_minutes,
    /// bytes)`.
    pub payloads: Vec<(u64, f64, Vec<u8>)>,
    /// Receiver's durable applied watermark.
    pub applied_watermark: u64,
    /// Receiver's durable track.
    pub track: TrackLog,
    /// Cumulative stalls / in-process crashes from the checkpoint.
    pub base_stalls: u64,
    pub base_crashes: u64,
    /// Outputs at or before this simulated minute are already durable:
    /// the resuming sim thread advances its output schedule through them
    /// without re-storing (re-simulation is bit-exact, so the skipped
    /// frames are identical to the stored ones).
    pub skip_outputs_through: f64,
    /// 1 when a prior incarnation's journal was replayed.
    pub journal_replays: u64,
    /// Frames that came back from the dead incarnation's disk (pending
    /// again after reconcile + requeue).
    pub frames_recovered: u64,
    /// Corrupt checkpoint files skipped while loading.
    pub checkpoints_skipped: usize,
    /// Sequence number for the next checkpoint this incarnation writes.
    pub next_checkpoint_seq: u64,
}

/// Prepare the state directory and rebuild whatever a prior incarnation
/// left behind.
pub(crate) fn bootstrap(d: &DurabilityOptions, disk_capacity: u64) -> io::Result<DurableBoot> {
    fs::create_dir_all(&d.state_dir)?;
    fs::create_dir_all(d.frames_dir())?;
    fs::create_dir_all(d.checkpoints_dir())?;

    let prior = read_manifest(d).map(|m| !m.completed).unwrap_or(false);
    let incarnation = read_manifest(d).map(|m| m.incarnation + 1).unwrap_or(1);
    write_manifest(
        d,
        &Manifest {
            version: MANIFEST_VERSION,
            incarnation,
            completed: false,
        },
    )?;
    fs::write(d.lock_path(), format!("{}\n", std::process::id()))?;

    let (mut store, replay) = FrameStore::recover(Disk::new(disk_capacity), &d.journal_dir())?;

    let mut boot = DurableBoot {
        model: None,
        next_output_min: None,
        config: None,
        manager: None,
        payloads: Vec::new(),
        applied_watermark: 0,
        track: TrackLog::new(),
        base_stalls: 0,
        base_crashes: 0,
        skip_outputs_through: f64::NEG_INFINITY,
        journal_replays: if prior { 1 } else { 0 },
        frames_recovered: 0,
        checkpoints_skipped: 0,
        next_checkpoint_seq: checkpoint_seqs(&d.checkpoints_dir())
            .last()
            .map(|s| s + 1)
            .unwrap_or(0),
        store: FrameStore::new(Disk::new(disk_capacity)), // placeholder, replaced below
    };

    if prior {
        // Reconcile with the receiver's durable watermark, then requeue
        // whatever was mid-flight when the process died.
        if let Some((watermark, track)) = load_receiver_state(&d.receiver_path()) {
            boot.applied_watermark = watermark;
            boot.track = track;
            store.reconcile_shipped(watermark);
        }
        store.requeue_in_flight();

        // Reload pending payloads; prune files the ledger no longer owns
        // (shipped frames, or a store whose journal record was torn away).
        let frames_dir = d.frames_dir();
        let pending: Vec<_> = store.pending_frames().copied().collect();
        for meta in &pending {
            if let Ok(bytes) = read_snapshot_file(&frame_path(&frames_dir, meta.id)) {
                boot.payloads.push((meta.id, meta.sim_minutes, bytes));
            }
            // A pending frame whose payload file did not survive (it is
            // written before the journal record commits, so this is
            // external damage) stays in the ledger; the sender settles it
            // as shipped-and-lost when its turn comes.
        }
        let owned: std::collections::HashSet<u64> =
            boot.payloads.iter().map(|(id, _, _)| *id).collect();
        for id in frame_ids(&frames_dir) {
            if !owned.contains(&id) {
                let _ = fs::remove_file(frame_path(&frames_dir, id));
            }
        }
        boot.frames_recovered = boot.payloads.len() as u64;

        // Newest valid checkpoint, falling back past corrupt ones.
        if let Some((meta, model, _seq, skipped)) = load_newest_checkpoint(&d.checkpoints_dir()) {
            boot.next_output_min = Some(meta.next_output_min);
            boot.config = Some(meta.config.clone());
            boot.manager = Some(meta.manager);
            boot.base_stalls = meta.stalls;
            boot.base_crashes = meta.crashes;
            boot.model = Some(model);
            boot.checkpoints_skipped = skipped;
        } else {
            boot.checkpoints_skipped = checkpoint_seqs(&d.checkpoints_dir()).len();
        }
        // Outputs already on the durable record are not re-stored.
        if let Some(last) = replay.last_stored_sim_minutes {
            boot.skip_outputs_through = last;
        }
    }

    boot.store = store;
    Ok(boot)
}

// ---------------------------------------------------------------------
// The supervisor
// ---------------------------------------------------------------------

/// Hard cap on restarts, so a fault plan that kills every incarnation
/// cannot loop forever.
const MAX_INCARNATIONS: u64 = 16;

/// Run the live pipeline under the recovery supervisor: every time an
/// incarnation is killed, stage any torn-write / corrupt-checkpoint
/// damage the fault plan scripted, strip the already-fired fault events,
/// and relaunch from disk — until the mission completes (or the restart
/// cap trips). Requires `options.pipeline.durability` to be set.
pub fn run_with_recovery(
    site: &Site,
    mission: &Mission,
    algorithm: AlgorithmKind,
    options: &OnlineOptions,
) -> OnlineReport {
    let durability = options
        .pipeline
        .durability
        .clone()
        .expect("run_with_recovery needs OnlineOptions durability");
    let mut opts = options.clone();
    let mut recoveries = 0u64;
    let mut journal_replays = 0u64;
    let mut frames_recovered = 0u64;
    // Volatile per-incarnation counters, accumulated so the final report
    // conserves frames across incarnation boundaries (written/shipped/
    // in-flight come ledger-cumulative from the journal already).
    let mut frames_emitted = 0u64;
    let mut frames_dropped = 0u64;
    let mut frames_rendered = 0u64;

    loop {
        let mut report = run_online(site, mission, algorithm, &opts);
        journal_replays += report.journal_replays;
        frames_recovered += report.frames_recovered;
        frames_emitted += report.frames_emitted;
        frames_dropped += report.frames_dropped;
        frames_rendered += report.frames_rendered;
        report.recoveries = recoveries;
        report.journal_replays = journal_replays;
        report.frames_recovered = frames_recovered;
        report.frames_emitted = frames_emitted;
        report.frames_dropped = frames_dropped;
        report.frames_rendered = frames_rendered;

        let Some(kill) = report.kill else {
            return report;
        };
        if report.completed || recoveries + 1 >= MAX_INCARNATIONS {
            return report;
        }

        // The incarnation is dead. Stage the scripted storage damage the
        // kill was supposed to tear into the durable state…
        if kill.torn_write {
            let _ = journal::simulate_torn_tail(&durability.journal_dir(), 7);
        }
        if kill.corrupt_checkpoint {
            corrupt_newest_checkpoint(&durability.checkpoints_dir());
        }
        // …and drop every fault that already fired so the next
        // incarnation does not die at the same scripted instant again.
        let mut plan = opts.pipeline.fault_plan.clone();
        plan.events.retain(|&(at, _)| at > kill.at_hours + 1e-9);
        opts = opts.with_fault_plan(plan);
        recoveries += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("adaptive-recovery-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta(sim_minutes: f64) -> CheckpointMeta {
        CheckpointMeta {
            sim_minutes,
            next_output_min: sim_minutes + 15.0,
            config: ApplicationConfig::initial(48, 15.0, 24.0),
            manager: ManagerState {
                epochs: 2,
                peak_bandwidth_bps: 1e6,
                degraded_epochs: 0,
            },
            stalls: 1,
            crashes: 0,
            applied_watermark: 3,
        }
    }

    fn model() -> WrfModel {
        WrfModel::new(wrf::ModelConfig::aila_default().with_decimation(16)).unwrap()
    }

    #[test]
    fn checkpoint_bundle_roundtrips() {
        let dir = tmpdir("bundle");
        let m = model();
        write_checkpoint(&dir, 0, &meta(60.0), &m.checkpoint()).unwrap();
        let (got_meta, got_model, seq, skipped) = load_newest_checkpoint(&dir).unwrap();
        assert_eq!(seq, 0);
        assert_eq!(skipped, 0);
        assert_eq!(got_meta.sim_minutes, 60.0);
        assert_eq!(got_meta.applied_watermark, 3);
        assert_eq!(got_meta.manager.epochs, 2);
        assert_eq!(got_model, m);
    }

    #[test]
    fn recovery_falls_back_past_a_corrupt_newest_checkpoint() {
        let dir = tmpdir("fallback");
        let m = model();
        write_checkpoint(&dir, 0, &meta(30.0), &m.checkpoint()).unwrap();
        write_checkpoint(&dir, 1, &meta(60.0), &m.checkpoint()).unwrap();
        assert!(corrupt_newest_checkpoint(&dir));
        let (got_meta, _, seq, skipped) = load_newest_checkpoint(&dir).unwrap();
        assert_eq!(seq, 0, "fell back to the older checkpoint");
        assert_eq!(skipped, 1);
        assert_eq!(got_meta.sim_minutes, 30.0);
    }

    #[test]
    fn all_checkpoints_corrupt_means_cold_start() {
        let dir = tmpdir("cold");
        let m = model();
        write_checkpoint(&dir, 0, &meta(30.0), &m.checkpoint()).unwrap();
        assert!(corrupt_newest_checkpoint(&dir));
        assert!(load_newest_checkpoint(&dir).is_none());
    }

    #[test]
    fn pruning_keeps_only_the_newest() {
        let dir = tmpdir("prune");
        let m = model();
        for seq in 0..5 {
            write_checkpoint(&dir, seq, &meta(seq as f64 * 10.0), &m.checkpoint()).unwrap();
        }
        prune_checkpoints(&dir, 2);
        assert_eq!(checkpoint_seqs(&dir), vec![3, 4]);
    }

    #[test]
    fn receiver_state_roundtrips() {
        let path = tmpdir("receiver").join("receiver.acp");
        let track = TrackLog::from_fixes(vec![
            EyeFix {
                sim_minutes: 15.0,
                lon: 88.1,
                lat: 14.2,
                pressure_hpa: 1001.5,
            },
            EyeFix {
                sim_minutes: 30.0,
                lon: 88.3,
                lat: 14.6,
                pressure_hpa: 999.25,
            },
        ]);
        save_receiver_state(&path, 2, &track).unwrap();
        let (watermark, got) = load_receiver_state(&path).unwrap();
        assert_eq!(watermark, 2);
        assert_eq!(got, track, "fixes survive bit-exactly");
        // Corruption is detected, not mis-parsed.
        let mut data = fs::read(&path).unwrap();
        let n = data.len();
        data[n - 3] ^= 0x40;
        fs::write(&path, &data).unwrap();
        assert!(load_receiver_state(&path).is_none());
    }

    #[test]
    fn bootstrap_fresh_directory_is_a_cold_start() {
        let d = DurabilityOptions::new(tmpdir("fresh"));
        let boot = bootstrap(&d, 1_000_000).unwrap();
        assert_eq!(boot.journal_replays, 0, "no prior incarnation");
        assert_eq!(boot.journal_replays, 0);
        assert_eq!(boot.frames_recovered, 0);
        assert!(boot.model.is_none());
        assert_eq!(boot.store.frames_stored(), 0);
        // A lock and manifest now exist; a second bootstrap sees a prior
        // (uncompleted) incarnation.
        let boot2 = bootstrap(&d, 1_000_000).unwrap();

        assert_eq!(boot2.journal_replays, 1);
    }

    #[test]
    fn completed_manifest_resets_to_a_cold_start() {
        let d = DurabilityOptions::new(tmpdir("completed"));
        bootstrap(&d, 1_000_000).unwrap();
        mark_completed(&d);
        assert!(!d.lock_path().exists());
        let boot = bootstrap(&d, 1_000_000).unwrap();
        assert_eq!(boot.journal_replays, 0, "completed runs are not resumed");
    }
}
