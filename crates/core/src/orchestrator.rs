//! The closed loop on a virtual clock.
//!
//! This is the paper's Figure 2 brought together: the simulation process
//! solves steps and writes frames through parallel I/O; the frame sender
//! ships the oldest frame over the wide-area link and the receiver hands
//! it to the visualization process; the application manager wakes every
//! 1.5 wall-clock hours, reads `df` and the bandwidth probe, and runs a
//! decision algorithm; the job handler restarts the simulation (with a
//! checkpoint-restart penalty) whenever the configuration changes and
//! stalls it on CRITICAL.
//!
//! Since the unified-engine refactor this module is a thin *driver*: the
//! loop itself lives in [`crate::engine`] and the [`Orchestrator`] merely
//! instantiates it with the discrete-event environment —
//! [`VirtualClock`], [`ModeledTransport`], [`NoDurability`],
//! [`ModeledInjector`]. Everything
//! advances on the DES clock, so one 20–40-wall-hour experiment runs in
//! well under a second while producing the exact time series of
//! Figures 5–8: simulated-time progress, free-disk percentage,
//! visualization progress, processor count, and output interval — all
//! against wall-clock time.

use crate::decision::AlgorithmKind;
use crate::engine::{
    EngineBoot, EngineSetup, EpochEngine, InProcessTransport, ModeledInjector, ModeledTransport,
    NoDurability, PipelineOptions, PipelineReport, VirtualClock,
};
use crate::steering::SteeringCommand;

pub use crate::engine::binding_code;
pub use crate::fault::{Fault, FaultPlan};
use cyclone::{Mission, Site};
use resources::{Disk, FrameStore, Network};
use std::ops::{Deref, DerefMut};

/// Knobs for one experiment run. Since the unified-engine refactor this
/// *is* the shared [`PipelineOptions`] — one source of defaults for the
/// DES and live drivers.
pub type RunOptions = PipelineOptions;

/// Everything a run produces: the shared [`PipelineReport`] plus the
/// experiment identity (algorithm, site). Derefs into the report (and
/// transitively into [`crate::engine::PipelineCounters`]), so
/// `out.frames_written`, `out.series`, `out.sim_rate_min_per_hour()` all
/// read as before.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Algorithm that produced this run.
    pub algorithm: AlgorithmKind,
    /// Site label (`inter-department`, ...).
    pub site_label: &'static str,
    /// The shared engine report.
    pub report: PipelineReport,
}

impl Deref for RunOutcome {
    type Target = PipelineReport;
    fn deref(&self) -> &PipelineReport {
        &self.report
    }
}

impl DerefMut for RunOutcome {
    fn deref_mut(&mut self) -> &mut PipelineReport {
        &mut self.report
    }
}

/// The experiment driver.
pub struct Orchestrator {
    site: Site,
    mission: Mission,
    algorithm: AlgorithmKind,
    options: RunOptions,
    steering_script: Vec<(f64, SteeringCommand)>,
    /// When set, run with real encoded frames over an ideal link into an
    /// in-process visualization (capacity, bandwidth) — the DES half of
    /// the DES↔live parity harness.
    live_emission: Option<(u64, f64)>,
}

impl Orchestrator {
    /// New experiment: one site, one mission, one algorithm.
    pub fn new(site: Site, mission: Mission, algorithm: AlgorithmKind) -> Self {
        Orchestrator {
            site,
            mission,
            algorithm,
            options: RunOptions::default(),
            steering_script: Vec::new(),
            live_emission: None,
        }
    }

    /// Override run options.
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Script steering commands: each fires at the given wall hour, as if
    /// a scientist at the visualization end issued it then (reproducible
    /// stand-in for live interaction; the online mode carries the same
    /// commands over a channel).
    pub fn with_steering(mut self, script: Vec<(f64, SteeringCommand)>) -> Self {
        self.steering_script = script;
        self
    }

    /// Script resource faults (failure injection): each fires at the
    /// given wall hour. The framework has no special handling for faults
    /// — the point is to observe the *decision algorithms* absorbing them
    /// through their ordinary observations (the bandwidth probe sees a
    /// degraded link at the next epoch and re-plans).
    pub fn with_faults(mut self, script: Vec<(f64, Fault)>) -> Self {
        self.options.fault_plan = FaultPlan::from_events(script);
        self
    }

    /// Script a whole [`FaultPlan`] (e.g. a seeded-random one from
    /// [`FaultPlan::random`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.options.fault_plan = plan;
        self
    }

    /// Turn on the closed-loop degradation ladder with the given
    /// controller configuration (see [`crate::qos`]).
    pub fn with_qos(mut self, qos: crate::qos::QosConfig) -> Self {
        self.options.qos = Some(qos);
        self
    }

    /// Emit *real* encoded frames (the live pipeline's emission path —
    /// same frame bytes, same track ingestion) instead of modeled byte
    /// counts, against a `disk_capacity`-byte disk and an ideal
    /// `bandwidth_bps` link. The run still advances on the virtual
    /// clock; this is the DES half of the DES↔live parity harness.
    pub fn with_live_emission(mut self, disk_capacity: u64, bandwidth_bps: f64) -> Self {
        self.live_emission = Some((disk_capacity, bandwidth_bps));
        self
    }

    /// Run the experiment to completion (or the wall cap) and collect the
    /// outcome.
    pub fn run(self) -> RunOutcome {
        let Orchestrator {
            site,
            mission,
            algorithm,
            options,
            steering_script,
            live_emission,
        } = self;
        let site_label = site.label;
        let report = match live_emission {
            None => {
                let store = FrameStore::new(site.make_disk());
                let net = site.make_network(options.seed);
                let setup = EngineSetup {
                    site,
                    mission,
                    algorithm,
                    options,
                    store,
                    net,
                    steering_script,
                    publish_config: None,
                    drain_on_complete: false,
                    boot: EngineBoot::default(),
                    fleet: None,
                };
                EpochEngine::new(
                    setup,
                    VirtualClock,
                    ModeledTransport,
                    NoDurability,
                    ModeledInjector,
                )
                .run()
                .report
            }
            Some((capacity, bandwidth_bps)) => {
                // Mirror the live driver's sizing: plan decisions in
                // real-frame multiples of the scaled-down disk.
                let transport = InProcessTransport::new((capacity / 12).max(1));
                let setup = EngineSetup {
                    site,
                    mission,
                    algorithm,
                    options,
                    store: FrameStore::new(Disk::new(capacity)),
                    net: Network::ideal(bandwidth_bps),
                    steering_script,
                    publish_config: None,
                    drain_on_complete: true,
                    boot: EngineBoot::default(),
                    fleet: None,
                };
                EpochEngine::new(
                    setup,
                    VirtualClock,
                    transport,
                    NoDurability,
                    ModeledInjector,
                )
                .run()
                .report
            }
        };
        RunOutcome {
            algorithm,
            site_label,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_mission(hours: f64) -> Mission {
        Mission::aila().with_duration_hours(hours)
    }

    #[test]
    fn optimization_completes_a_short_inter_department_mission() {
        let out = Orchestrator::new(
            Site::inter_department(),
            short_mission(3.0),
            AlgorithmKind::Optimization,
        )
        .run();
        assert!(out.completed);
        assert!(!out.ended_stalled);
        assert_eq!(out.sim_minutes, out.sim_minutes.max(180.0));
        assert!(out.frames_written > 0);
        assert!(out.frames_rendered > 0);
        assert!(out.frames_rendered <= out.frames_shipped);
        assert!(out.frames_shipped <= out.frames_written);
        assert!(out.sim_rate_min_per_hour() > 0.0);
    }

    #[test]
    fn greedy_completes_a_short_mission_too() {
        let out = Orchestrator::new(
            Site::inter_department(),
            short_mission(3.0),
            AlgorithmKind::GreedyThreshold,
        )
        .run();
        assert!(out.completed);
        assert!(out.frames_written > out.frames_shipped / 2);
    }

    #[test]
    fn series_are_recorded_and_monotone_where_required() {
        let out = Orchestrator::new(
            Site::inter_department(),
            short_mission(4.0),
            AlgorithmKind::Optimization,
        )
        .run();
        let sim = out.series.get("sim_progress").unwrap();
        assert!(!sim.is_empty());
        assert!(
            sim.is_monotone_non_decreasing(),
            "simulated time never rewinds"
        );
        let viz = out.series.get("viz_progress").unwrap();
        assert!(
            viz.is_monotone_non_decreasing(),
            "frames are visualized in sim-time order (FIFO shipping)"
        );
        let disk = out.series.get("free_disk_pct").unwrap();
        assert!(disk.min_value().unwrap() >= 0.0);
        assert!(disk.max_value().unwrap() <= 100.0);
        assert!(out.series.get("procs").is_some());
        assert!(out.series.get("output_interval").is_some());
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            Orchestrator::new(
                Site::intra_country(),
                short_mission(3.0),
                AlgorithmKind::GreedyThreshold,
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.sim_minutes, b.sim_minutes);
        assert_eq!(a.frames_written, b.frames_written);
        assert_eq!(a.wall_hours, b.wall_hours);
        assert_eq!(
            a.series.get("free_disk_pct").unwrap().points,
            b.series.get("free_disk_pct").unwrap().points
        );
    }

    #[test]
    fn cross_continent_greedy_starves_the_disk() {
        // A 30-simulated-hour mission on the 60 Kbps link shows the
        // greedy pathology: the disk fills and the minimum free
        // percentage dives far below the optimization method's.
        let mission = short_mission(30.0);
        let greedy = Orchestrator::new(
            Site::cross_continent(),
            mission.clone(),
            AlgorithmKind::GreedyThreshold,
        )
        .run();
        let opt = Orchestrator::new(
            Site::cross_continent(),
            mission,
            AlgorithmKind::Optimization,
        )
        .run();
        assert!(
            greedy.min_free_disk_pct < opt.min_free_disk_pct,
            "greedy {:.1}% vs optimization {:.1}%",
            greedy.min_free_disk_pct,
            opt.min_free_disk_pct
        );
        assert!(opt.frames_written < greedy.frames_written);
    }

    #[test]
    fn full_disk_drops_frames_and_emergency_stalls() {
        // A disk that holds barely two frames: the CRITICAL band (10 %)
        // is smaller than one frame, so the write-rejection path (not
        // just the manager's CRITICAL) must engage.
        let mut site = Site::cross_continent();
        site.disk_gb = 0.3; // 300 MB vs ≈136 MB frames
        let out = Orchestrator::new(site, short_mission(6.0), AlgorithmKind::StaticBaseline)
            .with_options(RunOptions {
                wall_cap_hours: 6.0,
                ..Default::default()
            })
            .run();
        assert!(out.frames_dropped > 0, "{out:?}");
        assert!(out.stalls >= 1, "emergency stall engaged");
        assert!(out.first_stall_wall_hours.is_some());
        // Accounting still conserves frames.
        crate::engine::assert_frame_conservation(&out);
    }

    #[test]
    fn wall_cap_halts_unfinishable_runs() {
        let opts = RunOptions {
            wall_cap_hours: 0.5,
            ..Default::default()
        };
        let out = Orchestrator::new(
            Site::cross_continent(),
            short_mission(60.0),
            AlgorithmKind::GreedyThreshold,
        )
        .with_options(opts)
        .run();
        assert!(!out.completed);
        assert!(out.wall_hours <= 0.5 + 1e-9);
    }

    #[test]
    fn steering_tightens_the_output_interval() {
        // Cross-continent optimization settles at OI = 25; a scientist
        // requesting 10-minute frames at hour 0.5 must pull it down.
        let mission = short_mission(12.0);
        let free = Orchestrator::new(
            Site::cross_continent(),
            mission.clone(),
            AlgorithmKind::Optimization,
        )
        .run();
        let steered = Orchestrator::new(
            Site::cross_continent(),
            mission,
            AlgorithmKind::Optimization,
        )
        .with_steering(vec![(
            0.5,
            crate::steering::SteeringCommand::RequestTemporalResolution { max_oi_min: 10.0 },
        )])
        .run();
        assert_eq!(steered.steering_commands_applied, 1);
        assert!(
            steered.frames_written > free.frames_written,
            "tighter interval means more frames: {} vs {}",
            steered.frames_written,
            free.frames_written
        );
        let oi = steered.series.get("output_interval").unwrap();
        assert!(oi.last_value().unwrap() <= 10.0 + 1e-9);
    }

    #[test]
    fn steering_pins_and_releases_resolution() {
        let mission = short_mission(8.0);
        let out = Orchestrator::new(
            Site::inter_department(),
            mission,
            AlgorithmKind::Optimization,
        )
        // The 8-simulated-hour fire mission takes only ~0.2 wall hours, so
        // the commands land early in the run.
        .with_steering(vec![
            (
                0.02,
                crate::steering::SteeringCommand::PinResolution { km: 12.0 },
            ),
            (0.1, crate::steering::SteeringCommand::Release),
        ])
        .run();
        assert!(out.completed);
        assert_eq!(out.steering_commands_applied, 2);
        // The pin forced a restart to 12 km long before the pressure
        // schedule would have (the cyclone is far above 988 hPa at 8 h).
        assert!(out.restarts >= 2, "pin + release each reconfigure");
    }

    #[test]
    fn process_kill_recovers_on_the_durable_ledger() {
        let free = Orchestrator::new(
            Site::inter_department(),
            short_mission(6.0),
            AlgorithmKind::Optimization,
        )
        .run();
        assert!(free.completed);
        assert_eq!(free.recoveries, 0);
        assert_eq!(free.journal_replays, 0);

        let killed = Orchestrator::new(
            Site::inter_department(),
            short_mission(6.0),
            AlgorithmKind::Optimization,
        )
        .with_faults(vec![
            (0.04, Fault::TornWrite),
            (0.05, Fault::ProcessKill { at_hours: 0.05 }),
        ])
        .run();
        assert!(killed.completed, "recovery finished the mission");
        assert_eq!(killed.recoveries, 1);
        assert_eq!(killed.journal_replays, 1);
        // Nothing written before the kill was lost: every frame is
        // shipped, dropped, or still held at the end.
        crate::engine::assert_frame_conservation(&killed);
        // The kill costs wall time (requeue + replay), never progress.
        assert!(killed.wall_hours >= free.wall_hours);
        assert_eq!(killed.sim_minutes, free.sim_minutes);
    }

    #[test]
    fn corrupt_checkpoint_fallback_costs_extra_wall_time() {
        let plain_kill = Orchestrator::new(
            Site::inter_department(),
            short_mission(6.0),
            AlgorithmKind::Optimization,
        )
        .with_faults(vec![(0.05, Fault::ProcessKill { at_hours: 0.05 })])
        .run();
        let corrupt = Orchestrator::new(
            Site::inter_department(),
            short_mission(6.0),
            AlgorithmKind::Optimization,
        )
        .with_faults(vec![
            (0.04, Fault::CorruptCheckpoint),
            (0.05, Fault::ProcessKill { at_hours: 0.05 }),
        ])
        .run();
        assert!(plain_kill.completed && corrupt.completed);
        assert_eq!(corrupt.recoveries, 1);
        assert!(
            corrupt.wall_hours >= plain_kill.wall_hours,
            "falling back past a corrupt checkpoint re-simulates more: {} vs {}",
            corrupt.wall_hours,
            plain_kill.wall_hours
        );
    }

    #[test]
    fn restarts_happen_when_the_cyclone_intensifies() {
        // 32 simulated hours crosses the 995 hPa nest threshold (the
        // dynamic field crosses it around t ≈ 28 h), which must trigger
        // at least one reconfiguration restart.
        let out = Orchestrator::new(
            Site::inter_department(),
            short_mission(32.0),
            AlgorithmKind::Optimization,
        )
        .run();
        assert!(out.completed);
        assert!(out.restarts >= 1, "nest spawn requires a restart");
        // Output interval stayed within mission bounds throughout.
        let oi = out.series.get("output_interval").unwrap();
        assert!(oi.min_value().unwrap() >= 3.0 - 1e-9);
        assert!(oi.max_value().unwrap() <= 25.0 + 1e-9);
    }
}
