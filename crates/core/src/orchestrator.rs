//! The closed loop on a virtual clock.
//!
//! This is the paper's Figure 2 brought together: the simulation process
//! solves steps and writes frames through parallel I/O; the frame sender
//! ships the oldest frame over the wide-area link and the receiver hands
//! it to the visualization process; the application manager wakes every
//! 1.5 wall-clock hours, reads `df` and the bandwidth probe, and runs a
//! decision algorithm; the job handler restarts the simulation (with a
//! checkpoint-restart penalty) whenever the configuration changes and
//! stalls it on CRITICAL.
//!
//! Everything advances on the DES clock, so one 20–40-wall-hour
//! experiment runs in well under a second while producing the exact time
//! series of Figures 5–8: simulated-time progress, free-disk percentage,
//! visualization progress, processor count, and output interval — all
//! against wall-clock time.

use crate::config::ApplicationConfig;
use crate::decision::{AlgorithmKind, BindingConstraint, RESUME_FREE_PERCENT};
use crate::jobhandler::{JobHandler, SimProcessState};
use crate::manager::{ApplicationManager, EpochContext};
use crate::steering::{SteeringCommand, SteeringState};

pub use crate::fault::{Fault, FaultPlan};
use cyclone::{Mission, Site};
use des::{run_until_empty, EventId, Scheduler, Series, SeriesSet, SimTime};
use perfmodel::ProcTable;
use resources::{FrameStore, Network};
use std::collections::HashMap;
use wrf::WrfModel;

/// Knobs for one experiment run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Give up (as the paper's dotted lines do) after this much wall time.
    pub wall_cap_hours: f64,
    /// Threads for the physics integrator (1 keeps runs deterministic and
    /// is plenty for decimated grids).
    pub physics_threads: usize,
    /// Seed for the network-variability walk.
    pub seed: u64,
    /// Period of the stalled-disk re-check, wall seconds.
    pub stall_probe_secs: f64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            wall_cap_hours: 120.0,
            physics_threads: 1,
            seed: 42,
            stall_probe_secs: 600.0,
        }
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Algorithm that produced this run.
    pub algorithm: AlgorithmKind,
    /// Site label (`inter-department`, ...).
    pub site_label: &'static str,
    /// True when the full mission was simulated before the wall cap.
    pub completed: bool,
    /// True when the run ended (capped) while stalled on disk space.
    pub ended_stalled: bool,
    /// Wall-clock hours consumed (to completion or the cap).
    pub wall_hours: f64,
    /// Simulated minutes reached.
    pub sim_minutes: f64,
    /// The figure time series (`sim_progress`, `free_disk_pct`,
    /// `viz_progress`, `procs`, `output_interval`).
    pub series: SeriesSet,
    /// Frames written to the simulation-site disk.
    pub frames_written: u64,
    /// Frames whose transfer to the visualization site completed.
    pub frames_shipped: u64,
    /// Frames rendered at the visualization site.
    pub frames_visualized: u64,
    /// Frames dropped because the disk was completely full.
    pub frames_dropped: u64,
    /// Completed restarts (configuration/resolution changes).
    pub restarts: u32,
    /// Stall episodes.
    pub stalls: u32,
    /// Wall hours at the first stall, if the run ever stalled.
    pub first_stall_wall_hours: Option<f64>,
    /// Steering commands applied during the run.
    pub steering_commands_applied: u32,
    /// Lowest free-disk percentage ever observed.
    pub min_free_disk_pct: f64,
    /// Free-disk percentage at the end of the run.
    pub final_free_disk_pct: f64,
    /// Sender reconnects after receiver outages.
    pub reconnects: u32,
    /// Frames replayed (pushed back to the queue and re-sent) after a
    /// lost connection.
    pub replays: u64,
    /// Simulation-process crashes injected (each costs a checkpoint
    /// relaunch with a requeue penalty).
    pub crashes: u32,
    /// Decision epochs that ran under a badly degraded link (measured
    /// bandwidth below a quarter of the best seen) — the store-and-
    /// forward regime where the manager widens the output interval
    /// rather than dropping frames.
    pub degraded_epochs: u32,
    /// Frames still on the simulation-site disk (pending or mid-
    /// transfer) when the run ended; together with `frames_shipped` and
    /// `frames_dropped` these account for every frame written.
    pub frames_in_flight: u64,
    /// Whole-pipeline kill→recover cycles (the recovery supervisor
    /// rebuilding an incarnation from the journal and checkpoints).
    pub recoveries: u32,
    /// Write-ahead journal replays performed while recovering.
    pub journal_replays: u32,
    /// Frames that survived a process kill on the durable ledger and
    /// were requeued for shipment by recovery.
    pub frames_recovered: u64,
}

impl RunOutcome {
    /// Average simulation rate over the run, simulated minutes per wall
    /// hour.
    pub fn sim_rate_min_per_hour(&self) -> f64 {
        if self.wall_hours > 0.0 {
            self.sim_minutes / self.wall_hours
        } else {
            0.0
        }
    }
}

/// The experiment driver.
pub struct Orchestrator {
    site: Site,
    mission: Mission,
    algorithm: AlgorithmKind,
    options: RunOptions,
    steering_script: Vec<(f64, SteeringCommand)>,
    fault_script: Vec<(f64, Fault)>,
}

#[derive(Debug, Clone, PartialEq)]
enum Ev {
    /// One solve step finished.
    Step,
    /// One frame finished writing through parallel I/O.
    FrameDone { sim_min: f64, bytes: u64 },
    /// One frame finished crossing the network.
    TransferDone { id: u64 },
    /// The visualization process finished rendering a frame.
    RenderDone { sim_min: f64 },
    /// Application-manager decision epoch.
    Decision,
    /// Checkpoint-restart finished; the new configuration is live.
    RestartDone,
    /// Periodic re-check while stalled with a full disk.
    StallProbe,
    /// A scripted steering command from the visualization end arrives.
    Steering(SteeringCommand),
    /// A scripted resource fault strikes.
    Fault(Fault),
    /// A receiver outage ends; the resilient sender reconnects and
    /// replays whatever is pending.
    ReceiverRestored,
    /// An external writer releases seized disk space.
    ExternalRelease { bytes: u64 },
}

struct World {
    site: Site,
    mission: Mission,
    options: RunOptions,
    manager: ApplicationManager,
    handler: JobHandler,
    model: WrfModel,
    store: FrameStore,
    net: Network,
    config: ApplicationConfig,
    pending_config: Option<ApplicationConfig>,
    next_output_min: f64,
    io_pending: bool,
    sender_busy: bool,
    step_event: Option<EventId>,
    /// The in-flight transfer's (event, frame id), so a receiver outage
    /// can cancel it and push the frame back to pending.
    transfer_event: Option<(EventId, u64)>,
    /// Nesting depth of overlapping receiver outages (0 = reachable).
    outage_depth: u32,
    /// Link degradation the faults intend, independent of outages (the
    /// value restored when the receiver comes back).
    link_factor: f64,
    completed: bool,
    tables: HashMap<(u64, bool), ProcTable>,
    // Series.
    sim_progress: Series,
    free_disk: Series,
    viz_progress: Series,
    procs_series: Series,
    oi_series: Series,
    binding_series: Series,
    // Counters.
    frames_dropped: u64,
    frames_visualized: u64,
    min_free_pct: f64,
    first_stall: Option<f64>,
    steering: SteeringState,
    reconnects: u32,
    replays: u64,
    crashes: u32,
    recoveries: u32,
    journal_replays: u32,
    frames_recovered: u64,
    /// A [`Fault::TornWrite`] is staged to land with the next kill.
    torn_staged: bool,
    /// A [`Fault::CorruptCheckpoint`] is staged to land with the next
    /// kill (recovery then falls back to an older checkpoint, which
    /// costs extra re-simulation).
    corrupt_staged: bool,
}

impl World {
    fn proc_table(&mut self, res_km: f64, nest: bool) -> &ProcTable {
        let key = (res_km.to_bits(), nest);
        let (site, mission) = (&self.site, &self.mission);
        self.tables
            .entry(key)
            .or_insert_with(|| site.proc_table(mission, res_km, nest))
    }

    /// Wall seconds per solve step under the active configuration.
    fn step_wall_secs(&mut self) -> f64 {
        let (res, nest, procs) = (
            self.config.resolution_km,
            self.config.nest_active,
            self.config.num_procs,
        );
        let table = self.proc_table(res, nest);
        table
            .time_for(procs)
            .unwrap_or_else(|| table.procs_closest_to_time(f64::INFINITY).1)
    }

    fn frame_bytes(&self) -> u64 {
        self.mission
            .frame_bytes(self.config.resolution_km, self.config.nest_active)
    }

    fn io_secs(&self) -> f64 {
        self.site.cluster.io_time(self.frame_bytes())
    }

    /// Estimated remaining wall time (the LP's overflow horizon `n`).
    ///
    /// Deliberately pessimistic: the pressure schedule will refine the
    /// grid toward its finest stage, where steps are smaller *and* each
    /// costs more, so the remaining mission is costed at the finest
    /// resolution with the nest active. A horizon estimated from the
    /// current (coarse) stage would let the early epochs write far too
    /// eagerly — the greedy algorithm's exact failure mode.
    fn horizon_secs(&mut self) -> f64 {
        let remaining_min = (self.mission.duration_minutes() - self.model.sim_minutes()).max(0.0);
        let finest = self.mission.schedule.finest_km();
        let dt = self.mission.dt_secs(finest);
        let steps = remaining_min * 60.0 / dt;
        // Cost the horizon at *maximum* cores, independent of the current
        // allocation: if it tracked the chosen processor count, slowing
        // down would lengthen the horizon, which tightens the overflow
        // constraint, which slows down further — a death spiral.
        let t = self.proc_table(finest, true).min_time();
        (steps * t).max(self.mission.decision_interval_hours * 3600.0)
    }

    fn record_disk(&mut self, now: SimTime) {
        let pct = self.store.disk().free_percent();
        self.min_free_pct = self.min_free_pct.min(pct);
        self.free_disk.record(now, pct);
    }

    fn record_config(&mut self, now: SimTime) {
        self.procs_series.record(now, self.config.num_procs as f64);
        self.oi_series.record(now, self.config.output_interval_min);
    }

    fn record_sim(&mut self, now: SimTime) {
        self.sim_progress.record(now, self.model.sim_minutes());
    }

    /// Remember when the first stall happened (for the non-adaptive-
    /// baseline comparison: "stalls much earlier").
    fn note_stall(&mut self, now: SimTime) {
        if self.first_stall.is_none() {
            self.first_stall = Some(now.as_hours());
        }
    }

    /// Start the next transfer if the link is free, the receiver is
    /// reachable, and frames are waiting.
    fn kick_sender(&mut self, sched: &mut Scheduler<Ev>) {
        if self.sender_busy || self.outage_depth > 0 || !self.store.has_pending() {
            return;
        }
        let meta = self.store.begin_transfer().expect("pending checked");
        self.net.step();
        let secs = self.net.transfer_time(meta.bytes);
        self.sender_busy = true;
        let id = sched.schedule_in(secs, Ev::TransferDone { id: meta.id });
        self.transfer_event = Some((id, meta.id));
    }

    /// Push the faults' intended link state onto the network model: a
    /// down receiver reads as an (effectively) dead link so the bandwidth
    /// probe and the decision algorithm see the outage through their
    /// ordinary observations.
    fn apply_link(&mut self) {
        let factor = if self.outage_depth > 0 {
            1e-6
        } else {
            self.link_factor
        };
        self.net.set_degradation(factor);
    }

    /// Schedule the next solve step.
    fn schedule_step(&mut self, sched: &mut Scheduler<Ev>) {
        debug_assert!(self.handler.is_running());
        debug_assert!(!self.io_pending);
        let t = self.step_wall_secs();
        self.step_event = Some(sched.schedule_in(t, Ev::Step));
    }

    fn cancel_step(&mut self, sched: &mut Scheduler<Ev>) {
        if let Some(id) = self.step_event.take() {
            sched.cancel(id);
        }
    }

    /// Begin a checkpoint-stop-restart with `next` as the target
    /// configuration.
    fn begin_restart(&mut self, next: ApplicationConfig, sched: &mut Scheduler<Ev>) {
        self.cancel_step(sched);
        self.handler.begin_restart();
        self.pending_config = Some(next);
        sched.schedule_in(self.site.cluster.restart_overhead_secs, Ev::RestartDone);
    }

    /// The pressure schedule's prescription given the current state
    /// (with coarsening hysteresis — see
    /// [`cyclone::ResolutionSchedule::apply_with_hysteresis`]).
    fn scheduled_resolution(&self) -> (f64, bool) {
        let p = self.model.min_pressure_hpa();
        let scheduled = self.mission.schedule.apply_with_hysteresis(
            p,
            self.config.resolution_km,
            self.config.nest_active,
        );
        self.steering.effective_resolution(scheduled)
    }
}

impl Orchestrator {
    /// New experiment: one site, one mission, one algorithm.
    pub fn new(site: Site, mission: Mission, algorithm: AlgorithmKind) -> Self {
        Orchestrator {
            site,
            mission,
            algorithm,
            options: RunOptions::default(),
            steering_script: Vec::new(),
            fault_script: Vec::new(),
        }
    }

    /// Override run options.
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// Script steering commands: each fires at the given wall hour, as if
    /// a scientist at the visualization end issued it then (reproducible
    /// stand-in for live interaction; the online mode carries the same
    /// commands over a channel).
    pub fn with_steering(mut self, script: Vec<(f64, SteeringCommand)>) -> Self {
        self.steering_script = script;
        self
    }

    /// Script resource faults (failure injection): each fires at the
    /// given wall hour. The framework has no special handling for faults
    /// — the point is to observe the *decision algorithms* absorbing them
    /// through their ordinary observations (the bandwidth probe sees a
    /// degraded link at the next epoch and re-plans).
    pub fn with_faults(mut self, script: Vec<(f64, Fault)>) -> Self {
        self.fault_script = script;
        self
    }

    /// Script a whole [`FaultPlan`] (e.g. a seeded-random one from
    /// [`FaultPlan::random`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_script = plan.events;
        self
    }

    /// Run the experiment to completion (or the wall cap) and collect the
    /// outcome.
    pub fn run(self) -> RunOutcome {
        let Orchestrator {
            site,
            mission,
            algorithm,
            options,
            steering_script,
            fault_script,
        } = self;
        let model = WrfModel::new(mission.model).expect("mission model config is valid");
        let store = FrameStore::new(site.make_disk());
        let net = site.make_network(options.seed);
        let initial = ApplicationConfig::initial(
            site.cluster.max_cores,
            mission.min_output_interval_min,
            mission.model.resolution_km,
        );
        let min_oi = mission.min_output_interval_min;

        let mut world = World {
            manager: ApplicationManager::new(algorithm),
            handler: JobHandler::new(),
            model,
            store,
            net,
            config: initial,
            pending_config: None,
            next_output_min: min_oi,
            io_pending: false,
            sender_busy: false,
            step_event: None,
            transfer_event: None,
            outage_depth: 0,
            link_factor: 1.0,
            completed: false,
            tables: HashMap::new(),
            sim_progress: Series::new("sim_progress"),
            free_disk: Series::new("free_disk_pct"),
            viz_progress: Series::new("viz_progress"),
            procs_series: Series::new("procs"),
            oi_series: Series::new("output_interval"),
            binding_series: Series::new("binding_constraint"),
            frames_dropped: 0,
            frames_visualized: 0,
            min_free_pct: 100.0,
            first_stall: None,
            steering: SteeringState::new(),
            reconnects: 0,
            replays: 0,
            crashes: 0,
            recoveries: 0,
            journal_replays: 0,
            frames_recovered: 0,
            torn_staged: false,
            corrupt_staged: false,
            site,
            mission,
            options,
        };

        let mut sched: Scheduler<Ev> = Scheduler::new();
        // Epoch zero runs before the simulation starts (the optimization
        // method "adapts the frequency of output to the best possible
        // value ... from the beginning of the simulations"), with no
        // restart penalty — it *is* the starting configuration.
        for (wall_hours, cmd) in steering_script {
            sched.schedule_at(SimTime::from_hours(wall_hours.max(0.0)), Ev::Steering(cmd));
        }
        for (wall_hours, fault) in fault_script {
            sched.schedule_at(SimTime::from_hours(wall_hours.max(0.0)), Ev::Fault(fault));
        }
        initial_epoch(&mut world);
        world.next_output_min = world.config.output_interval_min;
        world.record_config(SimTime::ZERO);
        world.record_disk(SimTime::ZERO);
        world.record_sim(SimTime::ZERO);
        world.schedule_step(&mut sched);
        sched.schedule_at(
            SimTime::from_hours(world.mission.decision_interval_hours),
            Ev::Decision,
        );

        let wall_cap = SimTime::from_hours(world.options.wall_cap_hours);
        run_until_empty(&mut sched, &mut world, |w, now, ev, sched| {
            if now > wall_cap {
                return false;
            }
            handle(w, now, ev, sched)
        });

        let ended_stalled = world.handler.state() == SimProcessState::Stalled;
        let final_free = world.store.disk().free_percent();
        RunOutcome {
            algorithm,
            site_label: world.site.label,
            completed: world.completed,
            ended_stalled,
            wall_hours: if world.completed {
                world
                    .sim_progress
                    .points
                    .last()
                    .map(|&(t, _)| t / 3600.0)
                    .unwrap_or(0.0)
            } else {
                world.options.wall_cap_hours
            },
            sim_minutes: world.model.sim_minutes(),
            frames_written: world.store.frames_stored(),
            frames_shipped: world.store.frames_shipped(),
            frames_visualized: world.frames_visualized,
            frames_dropped: world.frames_dropped,
            restarts: world.handler.restarts(),
            stalls: world.handler.stalls(),
            first_stall_wall_hours: world.first_stall,
            steering_commands_applied: world.steering.commands_applied,
            min_free_disk_pct: world.min_free_pct,
            final_free_disk_pct: final_free,
            reconnects: world.reconnects,
            replays: world.replays,
            crashes: world.crashes,
            recoveries: world.recoveries,
            journal_replays: world.journal_replays,
            frames_recovered: world.frames_recovered,
            degraded_epochs: world.manager.degraded_epochs(),
            frames_in_flight: (world.store.pending_count() + world.store.in_flight_count())
                as u64,
            series: {
                let mut s = SeriesSet::new();
                s.push(world.sim_progress);
                s.push(world.free_disk);
                s.push(world.viz_progress);
                s.push(world.procs_series);
                s.push(world.oi_series);
                s.push(world.binding_series);
                s
            },
        }
    }
}

/// One DES event. Returns false to halt the run.
fn handle(w: &mut World, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) -> bool {
    match ev {
        Ev::Step => {
            w.step_event = None;
            w.model
                .advance_steps(1, w.options.physics_threads)
                .expect("integrator stays finite on mission configurations");
            w.record_sim(now);

            if w.model.sim_minutes() >= w.mission.duration_minutes() {
                w.completed = true;
                return false; // Mission accomplished; the figures end here.
            }

            // The pressure schedule may prescribe a reconfiguration
            // ("whenever WRF finds the values of its certain variables
            // drop below a certain threshold, it stops and the job handler
            // reschedules it").
            let (res, nest) = w.scheduled_resolution();
            if res != w.config.resolution_km || nest != w.config.nest_active {
                let mut next = w.config.clone();
                next.resolution_km = res;
                next.nest_active = nest;
                w.begin_restart(next, sched);
                return true;
            }

            if w.model.sim_minutes() + 1e-9 >= w.next_output_min {
                // Write a history frame; I/O blocks the solver.
                w.io_pending = true;
                let bytes = w.frame_bytes();
                sched.schedule_in(
                    w.io_secs(),
                    Ev::FrameDone {
                        sim_min: w.model.sim_minutes(),
                        bytes,
                    },
                );
            } else {
                w.schedule_step(sched);
            }
        }

        Ev::FrameDone { sim_min, bytes } => {
            w.io_pending = false;
            match w.store.store(sim_min, bytes) {
                Ok(_) => {
                    w.next_output_min = sim_min + w.config.output_interval_min;
                    w.kick_sender(sched);
                }
                Err(_) => {
                    // Disk completely full: drop the frame and stall until
                    // transfers free space.
                    w.frames_dropped += 1;
                    if w.handler.state() != SimProcessState::Stalled {
                        w.handler.stall();
                        w.note_stall(now);
                        sched.schedule_in(w.options.stall_probe_secs, Ev::StallProbe);
                    }
                }
            }
            w.record_disk(now);
            if w.handler.is_running() {
                w.schedule_step(sched);
            }
        }

        Ev::TransferDone { id } => {
            w.sender_busy = false;
            w.transfer_event = None;
            let meta = w
                .store
                .complete_transfer(id)
                .expect("transfer was begun by kick_sender");
            w.record_disk(now);
            sched.schedule_in(
                w.site.render_secs_per_frame,
                Ev::RenderDone {
                    sim_min: meta.sim_minutes,
                },
            );
            w.kick_sender(sched);
            // Freed space may un-stall the simulation.
            maybe_resume(w, sched);
        }

        Ev::RenderDone { sim_min } => {
            w.frames_visualized += 1;
            w.viz_progress.record(now, sim_min);
        }

        Ev::Decision => {
            if w.completed {
                return true;
            }
            let horizon = w.horizon_secs();
            let (res, nest) = (w.config.resolution_km, w.config.nest_active);
            let frame_bytes = w.frame_bytes();
            let io_secs = w.io_secs();
            let dt = w.model.dt_secs();
            let (min_oi, max_oi) = (
                w.mission.min_output_interval_min,
                w.steering.effective_max_oi(
                    w.mission.min_output_interval_min,
                    w.mission.max_output_interval_min,
                ),
            );
            // Split borrows: the table lives in a map on `w`; clone it so
            // the manager can borrow the rest of the world.
            let table = w.proc_table(res, nest).clone();
            let ctx = EpochContext {
                frame_bytes,
                io_secs_per_frame: io_secs,
                proc_table: &table,
                dt_sim_secs: dt,
                min_oi_min: min_oi,
                max_oi_min: max_oi,
                horizon_secs: horizon,
            };
            let next = w
                .manager
                .epoch(w.store.disk(), &mut w.net, &ctx, &w.config);
            if let Some(binding) = w.manager.last_binding() {
                w.binding_series.record(now, binding_code(binding));
            }
            w.record_disk(now);

            match w.handler.state() {
                SimProcessState::Running => {
                    if next.critical {
                        w.cancel_step(sched);
                        w.handler.stall();
                        w.note_stall(now);
                        w.config.critical = true;
                    } else if w.config.requires_restart(&next) {
                        w.begin_restart(next, sched);
                    }
                }
                SimProcessState::Stalled => {
                    if !next.critical
                        && w.store.disk().free_percent() >= RESUME_FREE_PERCENT
                    {
                        w.handler.resume();
                        w.config.critical = false;
                        if w.config.requires_restart(&next) {
                            w.begin_restart(next, sched);
                        } else if !w.io_pending {
                            w.schedule_step(sched);
                        }
                    }
                }
                SimProcessState::Restarting => {
                    // A restart is in flight; the next epoch will see the
                    // new configuration.
                }
            }
            w.record_config(now);
            sched.schedule_in(
                w.mission.decision_interval_hours * 3600.0,
                Ev::Decision,
            );
        }

        Ev::RestartDone => {
            let next = w
                .pending_config
                .take()
                .expect("restart completion implies a pending configuration");
            if next.resolution_km != w.config.resolution_km {
                w.model
                    .set_resolution(next.resolution_km)
                    .expect("schedule resolutions are valid");
            }
            if next.nest_active && !w.model.has_nest() {
                w.model.spawn_nest();
            } else if !next.nest_active && w.model.has_nest() {
                w.model.despawn_nest();
            }
            let critical = w.config.critical;
            w.config = next;
            w.config.critical = critical;
            w.handler.finish_restart();
            w.record_config(now);
            if critical {
                // Came up stalled (CRITICAL still set).
                w.handler.stall();
                w.note_stall(now);
            } else if !w.io_pending {
                w.schedule_step(sched);
            }
            // A kill aborts the in-flight transfer; the relaunched
            // incarnation's sender resumes shipment (no-op when a
            // transfer is already running or nothing is pending).
            w.kick_sender(sched);
        }

        Ev::Steering(cmd) => {
            w.steering.apply(cmd);
            // Respond immediately where the command demands it: a tighter
            // temporal-resolution cap than the running interval, or a
            // resolution pin different from the live grid, triggers a
            // reconfiguration right away (when the process is running and
            // not already mid-restart).
            if w.handler.is_running() && !w.completed {
                let mut next = w.config.clone();
                let cap = w.steering.effective_max_oi(
                    w.mission.min_output_interval_min,
                    w.mission.max_output_interval_min,
                );
                if next.output_interval_min > cap {
                    next.output_interval_min = cap;
                }
                let (res, nest_active) = w.scheduled_resolution();
                next.resolution_km = res;
                next.nest_active = nest_active;
                if w.config.requires_restart(&next) {
                    w.begin_restart(next, sched);
                }
            }
        }

        Ev::Fault(fault) => match fault {
            Fault::LinkDegradation { factor } => {
                w.link_factor = factor;
                w.apply_link();
            }
            Fault::BandwidthFlap {
                factor,
                half_period_hours,
                flips,
            } => {
                // Toggle between degraded and healthy, and re-arm until
                // the flip budget is spent.
                w.link_factor = if (w.link_factor - factor).abs() < 1e-12 {
                    1.0
                } else {
                    factor
                };
                w.apply_link();
                if flips > 1 {
                    sched.schedule_in(
                        half_period_hours.max(1e-3) * 3600.0,
                        Ev::Fault(Fault::BandwidthFlap {
                            factor,
                            half_period_hours,
                            flips: flips - 1,
                        }),
                    );
                }
            }
            Fault::DiskPressure {
                bytes,
                duration_hours,
            } => {
                let got = w.store.seize_external(bytes);
                w.record_disk(now);
                if got > 0 {
                    sched.schedule_in(
                        duration_hours.max(1e-3) * 3600.0,
                        Ev::ExternalRelease { bytes: got },
                    );
                }
            }
            Fault::ReceiverOutage { duration_hours } => {
                w.outage_depth += 1;
                w.apply_link();
                // Whatever was mid-transfer is lost with the connection;
                // the frame goes back to the head of the queue and will be
                // replayed from the last acked frame once the receiver is
                // back (its bytes were never freed, so no data is lost).
                if let Some((event, frame_id)) = w.transfer_event.take() {
                    sched.cancel(event);
                    w.sender_busy = false;
                    w.store
                        .abort_transfer(frame_id)
                        .expect("transfer was in flight");
                    w.replays += 1;
                }
                sched.schedule_in(duration_hours.max(1e-3) * 3600.0, Ev::ReceiverRestored);
            }
            Fault::SimCrash => {
                // The solver process dies; the job handler relaunches it
                // from the last checkpoint. Modeled as a restart with a
                // requeue penalty on top of the ordinary restart overhead
                // (crash-time requeues wait in the batch queue).
                w.crashes += 1;
                if w.handler.state() != SimProcessState::Restarting && !w.completed {
                    let stalled = w.handler.state() == SimProcessState::Stalled;
                    w.cancel_step(sched);
                    w.handler.begin_restart();
                    w.pending_config = Some(w.config.clone());
                    let penalty = 3.0 * w.site.cluster.restart_overhead_secs;
                    sched.schedule_in(penalty, Ev::RestartDone);
                    if stalled {
                        // Preserve the CRITICAL stall across the relaunch.
                        w.config.critical = true;
                    }
                }
            }
            Fault::TornWrite => {
                w.torn_staged = true;
            }
            Fault::CorruptCheckpoint => {
                w.corrupt_staged = true;
            }
            Fault::ProcessKill { .. } => {
                // `kill -9` of the whole simulation-site pipeline. The
                // durable ledger (journal + payload files + checkpoints)
                // survives; everything volatile — the in-flight transfer,
                // the scheduled step — dies with the process. The
                // recovery supervisor replays the journal, requeues what
                // was pending, and relaunches from the newest valid
                // checkpoint.
                if w.handler.state() != SimProcessState::Restarting && !w.completed {
                    w.recoveries += 1;
                    w.journal_replays += 1;
                    if let Some((event, frame_id)) = w.transfer_event.take() {
                        sched.cancel(event);
                        w.sender_busy = false;
                        w.store
                            .abort_transfer(frame_id)
                            .expect("transfer was in flight");
                        w.replays += 1;
                    }
                    w.frames_recovered +=
                        (w.store.pending_count() + w.store.in_flight_count()) as u64;
                    let stalled = w.handler.state() == SimProcessState::Stalled;
                    w.cancel_step(sched);
                    w.handler.begin_restart();
                    w.pending_config = Some(w.config.clone());
                    // Crash-requeue penalty, plus extra re-simulation when
                    // the newest checkpoint was corrupt and recovery had
                    // to fall back to an older one. A torn journal tail
                    // only loses the uncommitted record — replay truncates
                    // it at no modeled cost.
                    let mut penalty = 3.0 * w.site.cluster.restart_overhead_secs;
                    if w.corrupt_staged {
                        penalty += 2.0 * w.site.cluster.restart_overhead_secs;
                    }
                    w.torn_staged = false;
                    w.corrupt_staged = false;
                    sched.schedule_in(penalty, Ev::RestartDone);
                    if stalled {
                        w.config.critical = true;
                    }
                }
            }
        },

        Ev::ReceiverRestored => {
            w.outage_depth = w.outage_depth.saturating_sub(1);
            if w.outage_depth == 0 {
                w.apply_link();
                // The resilient sender re-establishes the connection and
                // resumes from the receiver's last-applied frame.
                w.reconnects += 1;
                w.kick_sender(sched);
            }
        }

        Ev::ExternalRelease { bytes } => {
            w.store.release_external(bytes);
            w.record_disk(now);
            maybe_resume(w, sched);
        }

        Ev::StallProbe => {
            if w.handler.state() == SimProcessState::Stalled
                && !maybe_resume(w, sched) {
                    sched.schedule_in(w.options.stall_probe_secs, Ev::StallProbe);
                }
        }
    }
    true
}

/// Numeric code for a binding constraint so it fits a time series
/// (0 machine, 1 disk, 2 visualization, 3 infeasible).
pub fn binding_code(b: BindingConstraint) -> f64 {
    match b {
        BindingConstraint::MachineBound => 0.0,
        BindingConstraint::DiskBound => 1.0,
        BindingConstraint::VisualizationBound => 2.0,
        BindingConstraint::InfeasibleSafeCorner => 3.0,
    }
}

/// Epoch zero: decide the starting configuration (applied directly, no
/// restart — the simulation has not been launched yet).
fn initial_epoch(w: &mut World) {
    let horizon = w.horizon_secs();
    let (res, nest) = (w.config.resolution_km, w.config.nest_active);
    let frame_bytes = w.frame_bytes();
    let io_secs = w.io_secs();
    let dt = w.model.dt_secs();
    let (min_oi, max_oi) = (
        w.mission.min_output_interval_min,
        w.steering.effective_max_oi(
            w.mission.min_output_interval_min,
            w.mission.max_output_interval_min,
        ),
    );
    let table = w.proc_table(res, nest).clone();
    let ctx = EpochContext {
        frame_bytes,
        io_secs_per_frame: io_secs,
        proc_table: &table,
        dt_sim_secs: dt,
        min_oi_min: min_oi,
        max_oi_min: max_oi,
        horizon_secs: horizon,
    };
    let next = w.manager.epoch(w.store.disk(), &mut w.net, &ctx, &w.config);
    debug_assert!(!next.critical, "a fresh disk cannot be critical");
    w.config = next;
}

/// Resume a stalled simulation once enough disk has been freed. Returns
/// true when the simulation resumed.
fn maybe_resume(w: &mut World, sched: &mut Scheduler<Ev>) -> bool {
    if w.handler.state() == SimProcessState::Stalled
        && w.store.disk().free_percent() >= RESUME_FREE_PERCENT
    {
        w.handler.resume();
        w.config.critical = false;
        if !w.io_pending {
            w.schedule_step(sched);
        }
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_mission(hours: f64) -> Mission {
        Mission::aila().with_duration_hours(hours)
    }

    #[test]
    fn optimization_completes_a_short_inter_department_mission() {
        let out = Orchestrator::new(
            Site::inter_department(),
            short_mission(3.0),
            AlgorithmKind::Optimization,
        )
        .run();
        assert!(out.completed);
        assert!(!out.ended_stalled);
        assert_eq!(out.sim_minutes, out.sim_minutes.max(180.0));
        assert!(out.frames_written > 0);
        assert!(out.frames_visualized > 0);
        assert!(out.frames_visualized <= out.frames_shipped);
        assert!(out.frames_shipped <= out.frames_written);
        assert!(out.sim_rate_min_per_hour() > 0.0);
    }

    #[test]
    fn greedy_completes_a_short_mission_too() {
        let out = Orchestrator::new(
            Site::inter_department(),
            short_mission(3.0),
            AlgorithmKind::GreedyThreshold,
        )
        .run();
        assert!(out.completed);
        assert!(out.frames_written > out.frames_shipped / 2);
    }

    #[test]
    fn series_are_recorded_and_monotone_where_required() {
        let out = Orchestrator::new(
            Site::inter_department(),
            short_mission(4.0),
            AlgorithmKind::Optimization,
        )
        .run();
        let sim = out.series.get("sim_progress").unwrap();
        assert!(!sim.is_empty());
        assert!(sim.is_monotone_non_decreasing(), "simulated time never rewinds");
        let viz = out.series.get("viz_progress").unwrap();
        assert!(
            viz.is_monotone_non_decreasing(),
            "frames are visualized in sim-time order (FIFO shipping)"
        );
        let disk = out.series.get("free_disk_pct").unwrap();
        assert!(disk.min_value().unwrap() >= 0.0);
        assert!(disk.max_value().unwrap() <= 100.0);
        assert!(out.series.get("procs").is_some());
        assert!(out.series.get("output_interval").is_some());
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            Orchestrator::new(
                Site::intra_country(),
                short_mission(3.0),
                AlgorithmKind::GreedyThreshold,
            )
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.sim_minutes, b.sim_minutes);
        assert_eq!(a.frames_written, b.frames_written);
        assert_eq!(a.wall_hours, b.wall_hours);
        assert_eq!(
            a.series.get("free_disk_pct").unwrap().points,
            b.series.get("free_disk_pct").unwrap().points
        );
    }

    #[test]
    fn cross_continent_greedy_starves_the_disk() {
        // A 30-simulated-hour mission on the 60 Kbps link shows the
        // greedy pathology: the disk fills and the minimum free
        // percentage dives far below the optimization method's.
        let mission = short_mission(30.0);
        let greedy = Orchestrator::new(
            Site::cross_continent(),
            mission.clone(),
            AlgorithmKind::GreedyThreshold,
        )
        .run();
        let opt = Orchestrator::new(
            Site::cross_continent(),
            mission,
            AlgorithmKind::Optimization,
        )
        .run();
        assert!(
            greedy.min_free_disk_pct < opt.min_free_disk_pct,
            "greedy {:.1}% vs optimization {:.1}%",
            greedy.min_free_disk_pct,
            opt.min_free_disk_pct
        );
        assert!(opt.frames_written < greedy.frames_written);
    }

    #[test]
    fn full_disk_drops_frames_and_emergency_stalls() {
        // A disk that holds barely two frames: the CRITICAL band (10 %)
        // is smaller than one frame, so the write-rejection path (not
        // just the manager's CRITICAL) must engage.
        let mut site = Site::cross_continent();
        site.disk_gb = 0.3; // 300 MB vs ≈136 MB frames
        let out = Orchestrator::new(
            site,
            short_mission(6.0),
            AlgorithmKind::StaticBaseline,
        )
        .with_options(RunOptions {
            wall_cap_hours: 6.0,
            ..Default::default()
        })
        .run();
        assert!(out.frames_dropped > 0, "{out:?}");
        assert!(out.stalls >= 1, "emergency stall engaged");
        assert!(out.first_stall_wall_hours.is_some());
        // Accounting still conserves frames.
        assert!(out.frames_dropped + out.frames_shipped <= out.frames_written + out.frames_dropped);
    }

    #[test]
    fn wall_cap_halts_unfinishable_runs() {
        let opts = RunOptions {
            wall_cap_hours: 0.5,
            ..Default::default()
        };
        let out = Orchestrator::new(
            Site::cross_continent(),
            short_mission(60.0),
            AlgorithmKind::GreedyThreshold,
        )
        .with_options(opts)
        .run();
        assert!(!out.completed);
        assert!(out.wall_hours <= 0.5 + 1e-9);
    }

    #[test]
    fn steering_tightens_the_output_interval() {
        // Cross-continent optimization settles at OI = 25; a scientist
        // requesting 10-minute frames at hour 0.5 must pull it down.
        let mission = short_mission(12.0);
        let free = Orchestrator::new(
            Site::cross_continent(),
            mission.clone(),
            AlgorithmKind::Optimization,
        )
        .run();
        let steered = Orchestrator::new(
            Site::cross_continent(),
            mission,
            AlgorithmKind::Optimization,
        )
        .with_steering(vec![(
            0.5,
            crate::steering::SteeringCommand::RequestTemporalResolution { max_oi_min: 10.0 },
        )])
        .run();
        assert_eq!(steered.steering_commands_applied, 1);
        assert!(
            steered.frames_written > free.frames_written,
            "tighter interval means more frames: {} vs {}",
            steered.frames_written,
            free.frames_written
        );
        let oi = steered.series.get("output_interval").unwrap();
        assert!(oi.last_value().unwrap() <= 10.0 + 1e-9);
    }

    #[test]
    fn steering_pins_and_releases_resolution() {
        let mission = short_mission(8.0);
        let out = Orchestrator::new(
            Site::inter_department(),
            mission,
            AlgorithmKind::Optimization,
        )
        // The 8-simulated-hour fire mission takes only ~0.2 wall hours, so
        // the commands land early in the run.
        .with_steering(vec![
            (
                0.02,
                crate::steering::SteeringCommand::PinResolution { km: 12.0 },
            ),
            (0.1, crate::steering::SteeringCommand::Release),
        ])
        .run();
        assert!(out.completed);
        assert_eq!(out.steering_commands_applied, 2);
        // The pin forced a restart to 12 km long before the pressure
        // schedule would have (the cyclone is far above 988 hPa at 8 h).
        assert!(out.restarts >= 2, "pin + release each reconfigure");
    }

    #[test]
    fn process_kill_recovers_on_the_durable_ledger() {
        let free = Orchestrator::new(
            Site::inter_department(),
            short_mission(6.0),
            AlgorithmKind::Optimization,
        )
        .run();
        assert!(free.completed);
        assert_eq!(free.recoveries, 0);
        assert_eq!(free.journal_replays, 0);

        let killed = Orchestrator::new(
            Site::inter_department(),
            short_mission(6.0),
            AlgorithmKind::Optimization,
        )
        .with_faults(vec![
            (0.04, Fault::TornWrite),
            (0.05, Fault::ProcessKill { at_hours: 0.05 }),
        ])
        .run();
        assert!(killed.completed, "recovery finished the mission");
        assert_eq!(killed.recoveries, 1);
        assert_eq!(killed.journal_replays, 1);
        // Nothing written before the kill was lost: every frame is
        // shipped, dropped, or still held at the end.
        assert_eq!(
            killed.frames_written,
            killed.frames_shipped + killed.frames_dropped + killed.frames_in_flight,
            "conservation across the kill: {killed:?}"
        );
        // The kill costs wall time (requeue + replay), never progress.
        assert!(killed.wall_hours >= free.wall_hours);
        assert_eq!(killed.sim_minutes, free.sim_minutes);
    }

    #[test]
    fn corrupt_checkpoint_fallback_costs_extra_wall_time() {
        let plain_kill = Orchestrator::new(
            Site::inter_department(),
            short_mission(6.0),
            AlgorithmKind::Optimization,
        )
        .with_faults(vec![(0.05, Fault::ProcessKill { at_hours: 0.05 })])
        .run();
        let corrupt = Orchestrator::new(
            Site::inter_department(),
            short_mission(6.0),
            AlgorithmKind::Optimization,
        )
        .with_faults(vec![
            (0.04, Fault::CorruptCheckpoint),
            (0.05, Fault::ProcessKill { at_hours: 0.05 }),
        ])
        .run();
        assert!(plain_kill.completed && corrupt.completed);
        assert_eq!(corrupt.recoveries, 1);
        assert!(
            corrupt.wall_hours >= plain_kill.wall_hours,
            "falling back past a corrupt checkpoint re-simulates more: {} vs {}",
            corrupt.wall_hours,
            plain_kill.wall_hours
        );
    }

    #[test]
    fn restarts_happen_when_the_cyclone_intensifies() {
        // 32 simulated hours crosses the 995 hPa nest threshold (the
        // dynamic field crosses it around t ≈ 28 h), which must trigger
        // at least one reconfiguration restart.
        let out = Orchestrator::new(
            Site::inter_department(),
            short_mission(32.0),
            AlgorithmKind::Optimization,
        )
        .run();
        assert!(out.completed);
        assert!(out.restarts >= 1, "nest spawn requires a restart");
        // Output interval stayed within mission bounds throughout.
        let oi = out.series.get("output_interval").unwrap();
        assert!(oi.min_value().unwrap() >= 3.0 - 1e-9);
        assert!(oi.max_value().unwrap() <= 25.0 + 1e-9);
    }
}
