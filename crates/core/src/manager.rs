//! The application manager.
//!
//! "The application manager is the primary component that makes our
//! framework adaptive to resource configuration changes. It invokes a
//! decision algorithm periodically ... The decision algorithm considers as
//! input the bandwidth of the network between the climate simulation and
//! visualization sites, the available free disk space, and the resolutions
//! of climate simulations." It also raises the CRITICAL flag when free
//! disk is very low.

use crate::config::ApplicationConfig;
use crate::decision::{
    AlgorithmKind, BindingConstraint, DecisionAlgorithm, DecisionInputs, CRITICAL_FREE_PERCENT,
};
use perfmodel::ProcTable;
use resources::{BandwidthProbe, Disk, Network};
use serde::{Deserialize, Serialize};

/// Per-epoch context the orchestrator supplies (everything that depends on
/// the current resolution and nest state).
#[derive(Debug, Clone)]
pub struct EpochContext<'a> {
    /// Bytes of one frame at the current resolution/nest state.
    pub frame_bytes: u64,
    /// Seconds of parallel I/O per frame.
    pub io_secs_per_frame: f64,
    /// Profiled time-per-step table at the current resolution/nest state.
    pub proc_table: &'a ProcTable,
    /// Integration step, simulated seconds.
    pub dt_sim_secs: f64,
    /// Output-interval bounds, simulated minutes.
    pub min_oi_min: f64,
    /// See [`crate::decision::DecisionInputs::max_oi_min`].
    pub max_oi_min: f64,
    /// Disk-overflow horizon, wall seconds.
    pub horizon_secs: f64,
}

/// Measured bandwidth below this fraction of the best ever observed
/// marks an epoch as *degraded*: the link has lost most of its capacity
/// and the decision algorithm is in the store-and-forward regime, holding
/// frames on disk (wider output interval) instead of dropping them.
const DEGRADED_BANDWIDTH_FRACTION: f64 = 0.25;

/// The durable part of the manager's epoch state — what a checkpoint
/// carries across a process death. The bandwidth probe's moving average
/// is deliberately volatile: a fresh incarnation re-measures the link on
/// its first epoch, exactly as the paper's manager does at startup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManagerState {
    /// Decision epochs run so far.
    pub epochs: u64,
    /// Best bandwidth ever measured, bytes/second.
    pub peak_bandwidth_bps: f64,
    /// Epochs that ran under a badly degraded link.
    pub degraded_epochs: u32,
}

/// The manager: owns the decision algorithm and the bandwidth probe.
pub struct ApplicationManager {
    algorithm: Box<dyn DecisionAlgorithm + Send>,
    probe: BandwidthProbe,
    epochs: u64,
    peak_bandwidth_bps: f64,
    degraded_epochs: u32,
}

impl ApplicationManager {
    /// Manager running the given decision algorithm.
    pub fn new(kind: AlgorithmKind) -> Self {
        ApplicationManager {
            algorithm: kind.build(),
            probe: BandwidthProbe::new(),
            epochs: 0,
            peak_bandwidth_bps: 0.0,
            degraded_epochs: 0,
        }
    }

    /// Snapshot the durable epoch state for a checkpoint.
    pub fn state(&self) -> ManagerState {
        ManagerState {
            epochs: self.epochs,
            peak_bandwidth_bps: self.peak_bandwidth_bps,
            degraded_epochs: self.degraded_epochs,
        }
    }

    /// Rebuild a manager from checkpointed state. The decision algorithm
    /// and bandwidth probe start fresh (both are stateless across epochs
    /// for decision purposes); the epoch counters continue where the dead
    /// incarnation stopped.
    pub fn restore(kind: AlgorithmKind, state: ManagerState) -> Self {
        ApplicationManager {
            algorithm: kind.build(),
            probe: BandwidthProbe::new(),
            epochs: state.epochs,
            peak_bandwidth_bps: state.peak_bandwidth_bps,
            degraded_epochs: state.degraded_epochs,
        }
    }

    /// Name of the active decision algorithm.
    pub fn algorithm_name(&self) -> &'static str {
        self.algorithm.name()
    }

    /// Number of decision epochs run so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Last averaged bandwidth observation, bytes/second.
    pub fn observed_bandwidth_bps(&self) -> Option<f64> {
        self.probe.average_bps()
    }

    /// Best bandwidth ever measured, bytes/second (0 until the first
    /// epoch runs). The QoS controller normalizes its link signal
    /// against this.
    pub fn peak_bandwidth_bps(&self) -> f64 {
        self.peak_bandwidth_bps
    }

    /// Which constraint bound the most recent decision (LP method only).
    pub fn last_binding(&self) -> Option<BindingConstraint> {
        self.algorithm.last_binding()
    }

    /// Epochs that ran under a badly degraded link (below a quarter of
    /// the best bandwidth ever measured).
    pub fn degraded_epochs(&self) -> u32 {
        self.degraded_epochs
    }

    /// One decision epoch: measure bandwidth (the paper's 1 GB timing),
    /// read free disk (`df`), run the algorithm, and assemble the next
    /// application configuration. Resolution and nest state pass through
    /// from `current` — they follow the pressure schedule, not the
    /// algorithm.
    pub fn epoch(
        &mut self,
        disk: &Disk,
        network: &mut Network,
        ctx: &EpochContext<'_>,
        current: &ApplicationConfig,
    ) -> ApplicationConfig {
        self.epochs += 1;
        let bandwidth_bps = self.probe.measure(network);
        if bandwidth_bps > self.peak_bandwidth_bps {
            self.peak_bandwidth_bps = bandwidth_bps;
        } else if bandwidth_bps < self.peak_bandwidth_bps * DEGRADED_BANDWIDTH_FRACTION {
            self.degraded_epochs += 1;
        }
        let free_pct = disk.free_percent();
        let inputs = DecisionInputs {
            free_disk_percent: free_pct,
            free_disk_bytes: disk.free(),
            disk_capacity_bytes: disk.capacity(),
            bandwidth_bps,
            frame_bytes: ctx.frame_bytes,
            io_secs_per_frame: ctx.io_secs_per_frame,
            proc_table: ctx.proc_table,
            current,
            dt_sim_secs: ctx.dt_sim_secs,
            min_oi_min: ctx.min_oi_min,
            max_oi_min: ctx.max_oi_min,
            horizon_secs: ctx.horizon_secs,
        };
        let (num_procs, output_interval_min) = self.algorithm.decide(&inputs);
        // Output intervals are whole simulated minutes (as in the paper:
        // 3, 25, ...), rounded *up*: the algorithms compute the highest
        // safe output frequency, so quantization must not exceed it.
        // Quantizing also keeps an epoch-to-epoch jitter of a fraction of
        // a minute from triggering needless restarts.
        let mut output_interval_min = output_interval_min
            .ceil()
            .clamp(ctx.min_oi_min, ctx.max_oi_min);
        // QoS deadband: a reconfiguration costs a checkpoint-restart, so
        // interval nudges smaller than two simulated minutes (bandwidth-
        // probe noise, epoch-to-epoch drift of the disk term) are not
        // worth acting on — this is what keeps the optimization method's
        // visualization cadence steady between genuine regime changes.
        if (output_interval_min - current.output_interval_min).abs() < 2.0 {
            output_interval_min = current.output_interval_min;
        }
        ApplicationConfig {
            num_procs,
            output_interval_min,
            resolution_km: current.resolution_km,
            nest_active: current.nest_active,
            critical: free_pct <= CRITICAL_FREE_PERCENT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfmodel::ProcTable;

    fn ctx(table: &ProcTable) -> EpochContext<'_> {
        EpochContext {
            frame_bytes: 100_000_000,
            io_secs_per_frame: 0.7,
            proc_table: table,
            dt_sim_secs: 144.0,
            min_oi_min: 3.0,
            max_oi_min: 25.0,
            horizon_secs: 20.0 * 3600.0,
        }
    }

    fn table() -> ProcTable {
        ProcTable::from_entries(vec![(1, 40.0), (12, 6.0), (48, 2.5)])
    }

    #[test]
    fn epoch_produces_config_and_counts() {
        let t = table();
        let mut mgr = ApplicationManager::new(AlgorithmKind::Optimization);
        assert_eq!(mgr.algorithm_name(), "optimization");
        assert_eq!(mgr.epochs(), 0);
        assert!(mgr.observed_bandwidth_bps().is_none());

        let disk = Disk::new(1_000_000_000);
        let mut net = Network::ideal(7e6);
        let current = ApplicationConfig::initial(48, 3.0, 24.0);
        let cfg = mgr.epoch(&disk, &mut net, &ctx(&t), &current);
        assert_eq!(mgr.epochs(), 1);
        assert!(mgr.observed_bandwidth_bps().is_some());
        assert!(!cfg.critical, "empty disk is not critical");
        assert_eq!(cfg.resolution_km, 24.0, "resolution passes through");
        assert!((3.0..=25.0).contains(&cfg.output_interval_min));
    }

    #[test]
    fn critical_flag_raised_at_ten_percent() {
        let t = table();
        let mut mgr = ApplicationManager::new(AlgorithmKind::GreedyThreshold);
        let mut disk = Disk::new(1_000_000_000);
        disk.write(920_000_000).unwrap(); // 8% free
        let mut net = Network::ideal(7e6);
        let current = ApplicationConfig::initial(48, 3.0, 24.0);
        let cfg = mgr.epoch(&disk, &mut net, &ctx(&t), &current);
        assert!(cfg.critical);
    }

    #[test]
    fn manager_state_roundtrips_through_serialization() {
        let t = table();
        let mut mgr = ApplicationManager::new(AlgorithmKind::Optimization);
        let disk = Disk::new(1_000_000_000);
        let mut net = Network::ideal(7e6);
        let current = ApplicationConfig::initial(48, 3.0, 24.0);
        for _ in 0..3 {
            mgr.epoch(&disk, &mut net, &ctx(&t), &current);
        }
        let state = mgr.state();
        assert_eq!(state.epochs, 3);
        assert!(state.peak_bandwidth_bps > 0.0);

        let json = serde_json::to_string(&state).unwrap();
        let back: ManagerState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, state);

        let restored = ApplicationManager::restore(AlgorithmKind::Optimization, back);
        assert_eq!(restored.epochs(), 3);
        assert_eq!(restored.state(), state);
        assert!(
            restored.observed_bandwidth_bps().is_none(),
            "probe restarts cold"
        );
    }

    #[test]
    fn nest_state_passes_through() {
        let t = table();
        let mut mgr = ApplicationManager::new(AlgorithmKind::GreedyThreshold);
        let disk = Disk::new(1_000_000_000);
        let mut net = Network::ideal(7e6);
        let mut current = ApplicationConfig::initial(48, 3.0, 18.0);
        current.nest_active = true;
        let cfg = mgr.epoch(&disk, &mut net, &ctx(&t), &current);
        assert!(cfg.nest_active);
        assert_eq!(cfg.resolution_km, 18.0);
    }
}
