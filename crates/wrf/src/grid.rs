//! Dense 2-D scalar field storage with bilinear sampling.

use serde::{Deserialize, Serialize};

/// A row-major `ny × nx` field of `f64` values.
///
/// Index convention throughout the crate: `(i, j)` = (column, row) =
/// (west–east, south–north); storage is row-major with `j` slowest, so a
/// row is contiguous — the natural layout for the row-band parallel
/// decomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid2 {
    nx: usize,
    ny: usize,
    data: Vec<f64>,
}

impl Grid2 {
    /// New zero-filled grid.
    ///
    /// # Panics
    /// If either extent is zero.
    pub fn zeros(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid extents must be positive");
        Grid2 {
            nx,
            ny,
            data: vec![0.0; nx * ny],
        }
    }

    /// Build by evaluating `f(i, j)` at every point.
    pub fn from_fn(nx: usize, ny: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut g = Self::zeros(nx, ny);
        for j in 0..ny {
            for i in 0..nx {
                g.data[j * nx + i] = f(i, j);
            }
        }
        g
    }

    /// Points west–east.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Points south–north.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false (extents are positive by construction); present for
    /// clippy's `len`-without-`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Value at `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nx && j < self.ny);
        self.data[j * self.nx + i]
    }

    /// Mutable value at `(i, j)`.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut f64 {
        debug_assert!(i < self.nx && j < self.ny);
        &mut self.data[j * self.nx + i]
    }

    /// Set `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        *self.at_mut(i, j) = v;
    }

    /// Raw data, row-major.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Raw mutable data, row-major.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// One row as a slice.
    pub fn row(&self, j: usize) -> &[f64] {
        &self.data[j * self.nx..(j + 1) * self.nx]
    }

    /// Fill every point with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Change the extents in place, reusing the existing allocation when
    /// it is large enough. Values are unspecified afterwards — intended
    /// for scratch buffers whose every cell is about to be overwritten.
    pub fn reshape(&mut self, nx: usize, ny: usize) {
        assert!(nx > 0 && ny > 0, "grid extents must be positive");
        self.nx = nx;
        self.ny = ny;
        self.data.resize(nx * ny, 0.0);
    }

    /// Minimum value and its `(i, j)` location (first occurrence).
    pub fn min_with_pos(&self) -> (f64, usize, usize) {
        let (idx, &v) = self
            .data
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite field values"))
            .expect("grids are non-empty");
        (v, idx % self.nx, idx / self.nx)
    }

    /// Maximum value over all points.
    pub fn max_value(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Bilinear sample at fractional coordinates `(x, y)` in grid units
    /// (point `(i, j)` sits at `(i as f64, j as f64)`), clamped to the
    /// domain so samples just outside the edge take the edge value.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let x = x.clamp(0.0, (self.nx - 1) as f64);
        let y = y.clamp(0.0, (self.ny - 1) as f64);
        let i0 = x.floor() as usize;
        let j0 = y.floor() as usize;
        let i1 = (i0 + 1).min(self.nx - 1);
        let j1 = (j0 + 1).min(self.ny - 1);
        let fx = x - i0 as f64;
        let fy = y - j0 as f64;
        let top = self.at(i0, j1) * (1.0 - fx) + self.at(i1, j1) * fx;
        let bot = self.at(i0, j0) * (1.0 - fx) + self.at(i1, j0) * fx;
        bot * (1.0 - fy) + top * fy
    }

    /// Resample onto a new grid of `(nx, ny)` points spanning the same
    /// physical extent (used when the simulation resolution changes).
    pub fn resample(&self, nx: usize, ny: usize) -> Grid2 {
        assert!(nx > 0 && ny > 0);
        let sx = if nx > 1 {
            (self.nx - 1) as f64 / (nx - 1) as f64
        } else {
            0.0
        };
        let sy = if ny > 1 {
            (self.ny - 1) as f64 / (ny - 1) as f64
        } else {
            0.0
        };
        Grid2::from_fn(nx, ny, |i, j| self.sample(i as f64 * sx, j as f64 * sy))
    }

    /// Mean of all values.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Sum of all values (mass diagnostic for conservation tests).
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_roundtrip() {
        let mut g = Grid2::zeros(4, 3);
        g.set(2, 1, 7.5);
        assert_eq!(g.at(2, 1), 7.5);
        assert_eq!(g.data()[4 + 2], 7.5);
        assert_eq!(g.len(), 12);
    }

    #[test]
    fn from_fn_layout() {
        let g = Grid2::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(g.row(0), &[0.0, 1.0, 2.0]);
        assert_eq!(g.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn min_with_pos_finds_first_minimum() {
        let mut g = Grid2::zeros(3, 3);
        g.set(1, 2, -5.0);
        let (v, i, j) = g.min_with_pos();
        assert_eq!((v, i, j), (-5.0, 1, 2));
    }

    #[test]
    fn max_value_works() {
        let g = Grid2::from_fn(3, 3, |i, j| (i * j) as f64);
        assert_eq!(g.max_value(), 4.0);
    }

    #[test]
    fn bilinear_sample_interpolates() {
        let g = Grid2::from_fn(2, 2, |i, j| (i + 2 * j) as f64); // 0 1 / 2 3
        assert_eq!(g.sample(0.0, 0.0), 0.0);
        assert_eq!(g.sample(1.0, 1.0), 3.0);
        assert_eq!(g.sample(0.5, 0.5), 1.5);
        assert_eq!(g.sample(0.5, 0.0), 0.5);
    }

    #[test]
    fn sample_clamps_outside_domain() {
        let g = Grid2::from_fn(2, 2, |i, _| i as f64);
        assert_eq!(g.sample(-3.0, 0.0), 0.0);
        assert_eq!(g.sample(5.0, 0.5), 1.0);
    }

    #[test]
    fn resample_identity() {
        let g = Grid2::from_fn(5, 4, |i, j| (i * 3 + j) as f64);
        let r = g.resample(5, 4);
        assert_eq!(g, r);
    }

    #[test]
    fn resample_preserves_linear_fields() {
        // A plane is reproduced exactly by bilinear resampling.
        let g = Grid2::from_fn(5, 5, |i, j| 2.0 * i as f64 + 3.0 * j as f64);
        let r = g.resample(9, 9);
        for j in 0..9 {
            for i in 0..9 {
                let want = 2.0 * (i as f64 * 0.5) + 3.0 * (j as f64 * 0.5);
                assert!((r.at(i, j) - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mean_and_sum() {
        let g = Grid2::from_fn(2, 2, |i, j| (1 + i + 2 * j) as f64); // 1 2 3 4
        assert_eq!(g.sum(), 10.0);
        assert_eq!(g.mean(), 2.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        Grid2::zeros(0, 3);
    }
}
