//! Portable f64×4 lanes for the vectorized kernels.
//!
//! No nightly features, no intrinsics: [`F64x4`] is a plain `[f64; 4]`
//! with element-wise arithmetic written as fixed-count loops, the shape
//! LLVM's autovectorizer reliably lowers to packed SSE2/AVX instructions
//! on every x86-64 baseline (and to NEON on aarch64). The point is not to
//! hand-schedule instructions but to present the optimizer with
//! branch-free, stride-1, four-wide arithmetic — and to give the solver a
//! *named*, documented lane layout its bitwise-parity contract can be
//! stated against (see DESIGN.md §17).
//!
//! # Reduction-order contract
//!
//! [`F64x4::reduce`] always sums as `(l0 + l1) + (l2 + l3)`. The lanes
//! kernels accumulate their per-row finite probes into one `F64x4`
//! accumulator across the row's lane blocks, reduce it with exactly that
//! tree, and add edge/remainder terms in left-to-right order. Row
//! decomposition (bands across ranks, tiles within a band) never splits a
//! row, so a row's probe is a pure function of the row's inputs and `nx` —
//! which is what makes the pooled lanes engine bitwise-identical to the
//! lane-ordered serial reference at every team size.

/// Four f64 lanes with element-wise arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct F64x4(pub [f64; 4]);

impl F64x4 {
    /// Lane width.
    pub const LANES: usize = 4;

    /// All lanes set to `v`.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        F64x4([v; 4])
    }

    /// Load four consecutive values from `s` (must have `len >= 4`).
    #[inline(always)]
    pub fn load(s: &[f64]) -> Self {
        F64x4([s[0], s[1], s[2], s[3]])
    }

    /// Store the lanes into the first four slots of `out`.
    #[inline(always)]
    pub fn store(self, out: &mut [f64]) {
        out[..4].copy_from_slice(&self.0);
    }

    /// Element-wise square root (lowers to `sqrtpd`).
    #[inline(always)]
    pub fn sqrt(self) -> Self {
        F64x4([
            self.0[0].sqrt(),
            self.0[1].sqrt(),
            self.0[2].sqrt(),
            self.0[3].sqrt(),
        ])
    }

    /// Per-lane `mask ? t : f` — compiles to compare + blend, no branches.
    #[inline(always)]
    pub fn select(mask: [bool; 4], t: Self, f: Self) -> Self {
        let mut out = [0.0; 4];
        for l in 0..4 {
            out[l] = if mask[l] { t.0[l] } else { f.0[l] };
        }
        F64x4(out)
    }

    /// Per-lane `self >= 0.0`.
    #[inline(always)]
    pub fn ge_zero(self) -> [bool; 4] {
        [
            self.0[0] >= 0.0,
            self.0[1] >= 0.0,
            self.0[2] >= 0.0,
            self.0[3] >= 0.0,
        ]
    }

    /// Per-lane `self <= other`.
    #[inline(always)]
    pub fn le(self, other: Self) -> [bool; 4] {
        [
            self.0[0] <= other.0[0],
            self.0[1] <= other.0[1],
            self.0[2] <= other.0[2],
            self.0[3] <= other.0[3],
        ]
    }

    /// Per-lane `self < other`.
    #[inline(always)]
    pub fn lt(self, other: Self) -> [bool; 4] {
        [
            self.0[0] < other.0[0],
            self.0[1] < other.0[1],
            self.0[2] < other.0[2],
            self.0[3] < other.0[3],
        ]
    }

    /// Horizontal sum in the *fixed* tree order `(l0 + l1) + (l2 + l3)`.
    ///
    /// This order is part of the kernels' bitwise-parity contract — see
    /// the module docs. Never "optimize" it to a serial fold.
    #[inline(always)]
    pub fn reduce(self) -> f64 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }
}

macro_rules! lane_op {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl std::ops::$trait for F64x4 {
            type Output = F64x4;
            #[inline(always)]
            fn $fn(self, rhs: F64x4) -> F64x4 {
                let mut out = [0.0; 4];
                for l in 0..4 {
                    out[l] = self.0[l] $op rhs.0[l];
                }
                F64x4(out)
            }
        }
    };
}

lane_op!(Add, add, +);
lane_op!(Sub, sub, -);
lane_op!(Mul, mul, *);
lane_op!(Div, div, /);

impl std::ops::Neg for F64x4 {
    type Output = F64x4;
    #[inline(always)]
    fn neg(self) -> F64x4 {
        let mut out = self.0;
        for v in &mut out {
            *v = -*v;
        }
        F64x4(out)
    }
}

// Argument-reduction constants for `exp4` (Cody–Waite split of ln 2, so
// `x − k·ln2` loses no bits for |k| up to ~2^20).
const LOG2_E: f64 = std::f64::consts::LOG2_E;
// The extra digits are the published Cody–Waite values; they round to the
// intended f64 pair and are kept verbatim for auditability.
#[allow(clippy::excessive_precision)]
const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
#[allow(clippy::excessive_precision)]
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
/// 1.5·2^52 — adding then subtracting it rounds to the nearest integer in
/// the current (round-to-nearest) mode, branch-free.
const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;
/// Saturation bound: `exp4` returns 0 below −708 and +∞ above +708
/// (slightly inside the true f64 exp range, trading the subnormal tail
/// for a branch-free scale step). The kernels only ever pass arguments in
/// (−60, 0], far from either bound.
const EXP_SAT: f64 = 708.0;

/// Taylor coefficients of `exp(r)` for `r ∈ [−ln2/2, ln2/2]`; the degree-12
/// truncation error is below 2·10⁻¹⁶ relative on that interval.
const EXP_POLY: [f64; 13] = [
    1.0,
    1.0,
    1.0 / 2.0,
    1.0 / 6.0,
    1.0 / 24.0,
    1.0 / 120.0,
    1.0 / 720.0,
    1.0 / 5040.0,
    1.0 / 40320.0,
    1.0 / 362880.0,
    1.0 / 3628800.0,
    1.0 / 39916800.0,
    1.0 / 479001600.0,
];

/// Branch-free four-lane `exp`, accurate to ≲10⁻¹⁴ relative on
/// `[−EXP_SAT, EXP_SAT]`, saturating (0 / +∞) outside and propagating NaN.
///
/// Classic `exp = 2^k · exp(r)` with `k = round(x / ln2)` (magic-number
/// rounding), a Cody–Waite reduced remainder, a degree-12 Horner
/// polynomial, and the power of two assembled straight into the exponent
/// bits — every step is plain lane arithmetic the autovectorizer can pack.
#[inline(always)]
pub(crate) fn exp4(x: F64x4) -> F64x4 {
    let mut out = [0.0; 4];
    for (slot, &v) in out.iter_mut().zip(x.0.iter()) {
        let c = v.clamp(-EXP_SAT, EXP_SAT);
        let kf = (c * LOG2_E + ROUND_MAGIC) - ROUND_MAGIC;
        let r = (c - kf * LN2_HI) - kf * LN2_LO;
        let mut p = EXP_POLY[12];
        let mut d = 11usize;
        loop {
            p = p * r + EXP_POLY[d];
            if d == 0 {
                break;
            }
            d -= 1;
        }
        let bits = (((kf as i64) + 1023) as u64) << 52;
        let scaled = p * f64::from_bits(bits);
        // Saturate outside the clamp window; NaN fails both compares and
        // falls through as the (NaN) computed value.
        *slot = if v < -EXP_SAT {
            0.0
        } else if v > EXP_SAT {
            f64::INFINITY
        } else {
            scaled
        };
    }
    F64x4(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_is_elementwise() {
        let a = F64x4([1.0, 2.0, 3.0, 4.0]);
        let b = F64x4([10.0, 20.0, 30.0, 40.0]);
        assert_eq!((a + b).0, [11.0, 22.0, 33.0, 44.0]);
        assert_eq!((b - a).0, [9.0, 18.0, 27.0, 36.0]);
        assert_eq!((a * b).0, [10.0, 40.0, 90.0, 160.0]);
        assert_eq!((b / a).0, [10.0, 10.0, 10.0, 10.0]);
        assert_eq!((-a).0, [-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(F64x4::splat(9.0).0, [9.0; 4]);
        assert_eq!(a.sqrt().0[3], 2.0);
    }

    #[test]
    fn load_store_roundtrip() {
        let src = [5.0, 6.0, 7.0, 8.0, 9.0];
        let v = F64x4::load(&src[1..]);
        let mut dst = [0.0; 6];
        v.store(&mut dst[2..]);
        assert_eq!(&dst[2..6], &src[1..5]);
    }

    #[test]
    fn select_and_compares() {
        let v = F64x4([-1.0, 0.0, 2.0, -0.0]);
        assert_eq!(v.ge_zero(), [false, true, true, true]);
        assert_eq!(v.lt(F64x4::splat(0.5)), [true, true, false, true]);
        assert_eq!(v.le(F64x4::splat(0.0)), [true, true, false, true]);
        let t = F64x4::splat(1.0);
        let f = F64x4::splat(-1.0);
        assert_eq!(
            F64x4::select([true, false, true, false], t, f).0,
            [1.0, -1.0, 1.0, -1.0]
        );
        // Select must mask out NaN in the unchosen lane.
        let bad = F64x4::splat(f64::NAN);
        let picked = F64x4::select([true; 4], t, bad);
        assert_eq!(picked.0, [1.0; 4]);
    }

    #[test]
    fn reduce_uses_the_documented_tree_order() {
        // Values chosen so (l0+l1)+(l2+l3) differs in the last bits from
        // the serial fold ((l0+l1)+l2)+l3 — the contract is the tree.
        let v = F64x4([1.0, 1e16, -1e16, 1.0]);
        let tree = (v.0[0] + v.0[1]) + (v.0[2] + v.0[3]);
        let serial = ((v.0[0] + v.0[1]) + v.0[2]) + v.0[3];
        assert_eq!(v.reduce(), tree);
        assert_ne!(tree, serial, "test values must distinguish the orders");
    }

    #[test]
    fn exp4_matches_libm_closely() {
        let mut worst = 0.0f64;
        let mut x = -60.0;
        while x <= 30.0 {
            let got = exp4(F64x4::splat(x)).0[0];
            let want = x.exp();
            let rel = (got - want).abs() / want;
            worst = worst.max(rel);
            x += 0.017;
        }
        assert!(worst < 1e-13, "worst relative error {worst:.3e}");
    }

    #[test]
    fn exp4_mixed_lanes_and_special_values() {
        let v = exp4(F64x4([0.0, 1.0, -700.0, 700.0]));
        assert_eq!(v.0[0], 1.0);
        assert!((v.0[1] - std::f64::consts::E).abs() < 1e-14);
        assert!((v.0[2] / (-700.0f64).exp() - 1.0).abs() < 1e-12);
        assert!((v.0[3] / (700.0f64).exp() - 1.0).abs() < 1e-12);

        let sat = exp4(F64x4([-1e9, 1e9, f64::NEG_INFINITY, f64::INFINITY]));
        assert_eq!(sat.0[0], 0.0);
        assert_eq!(sat.0[1], f64::INFINITY);
        assert_eq!(sat.0[2], 0.0);
        assert_eq!(sat.0[3], f64::INFINITY);

        let nan = exp4(F64x4::splat(f64::NAN));
        assert!(nan.0.iter().all(|v| v.is_nan()), "NaN propagates");
    }

    #[test]
    fn exp4_is_deterministic_across_calls() {
        let x = F64x4([-3.25, -0.5, -17.125, -42.0]);
        assert_eq!(exp4(x).0, exp4(x).0);
    }
}
