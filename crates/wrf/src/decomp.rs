//! MPI-style domain decomposition rules.
//!
//! "WRF simulations have limitations in the number of cores that can be
//! used depending on the grid size. Specifically, each MPI process should
//! have at least 6x6 parent domain grid points and 9x9 nest domain grid
//! points to process." This module answers which processor counts a given
//! (parent, nest) grid pair admits — the discrete processor space the
//! decision algorithms search.

/// All `(px, py)` factorizations of `p`, px ascending.
pub fn factor_pairs(p: usize) -> Vec<(usize, usize)> {
    assert!(p > 0, "processor count must be positive");
    let mut out = Vec::new();
    for px in 1..=p {
        if p.is_multiple_of(px) {
            out.push((px, p / px));
        }
    }
    out
}

/// The most-square valid decomposition of an `nx × ny` grid over `procs`
/// ranks with at least `min_pts × min_pts` points per rank, or `None` when
/// no factorization qualifies.
pub fn best_decomposition(
    nx: usize,
    ny: usize,
    procs: usize,
    min_pts: usize,
) -> Option<(usize, usize)> {
    factor_pairs(procs)
        .into_iter()
        .filter(|&(px, py)| nx / px >= min_pts && ny / py >= min_pts)
        .min_by_key(|&(px, py)| {
            // Squareness: minimize |log(aspect)| without floats — use the
            // larger/smaller ratio scaled.
            let a = px.max(py);
            let b = px.min(py);
            (a * 1000) / b
        })
}

/// True when `procs` ranks can decompose the grid legally.
pub fn is_valid(nx: usize, ny: usize, procs: usize, min_pts: usize) -> bool {
    best_decomposition(nx, ny, procs, min_pts).is_some()
}

/// Every processor count in `1..=max_procs` for which the parent grid
/// decomposes with ≥ `min_parent_pts`² points per rank **and** (when a
/// nest is given) the nest grid decomposes with ≥ `min_nest_pts`² points
/// per rank.
pub fn allowed_proc_counts(
    parent: (usize, usize),
    min_parent_pts: usize,
    nest: Option<((usize, usize), usize)>,
    max_procs: usize,
) -> Vec<usize> {
    (1..=max_procs)
        .filter(|&p| {
            is_valid(parent.0, parent.1, p, min_parent_pts)
                && nest.is_none_or(|((nnx, nny), min_nest)| is_valid(nnx, nny, p, min_nest))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MIN_NEST_POINTS_PER_RANK, MIN_PARENT_POINTS_PER_RANK};

    #[test]
    fn factor_pairs_of_12() {
        assert_eq!(
            factor_pairs(12),
            vec![(1, 12), (2, 6), (3, 4), (4, 3), (6, 2), (12, 1)]
        );
    }

    #[test]
    fn best_decomposition_prefers_square() {
        assert_eq!(best_decomposition(100, 100, 16, 6), Some((4, 4)));
        assert_eq!(best_decomposition(100, 100, 12, 6), Some((3, 4)));
    }

    #[test]
    fn decomposition_respects_min_points() {
        // 12×12 grid, 6-point minimum: only 1, 2, or 4 ranks (2×2) work.
        assert!(is_valid(12, 12, 1, 6));
        assert!(is_valid(12, 12, 2, 6));
        assert!(is_valid(12, 12, 4, 6));
        assert!(
            !is_valid(12, 12, 8, 6),
            "would need a 2×4 split → 3 rows/rank"
        );
        assert!(!is_valid(12, 12, 9, 6));
    }

    #[test]
    fn allowed_counts_intersect_parent_and_nest_rules() {
        // Parent 60×60 (6-pt rule): supports up to 100 ranks (10×10).
        // Nest 27×27 (9-pt rule): supports at most 9 ranks (3×3).
        let with_nest = allowed_proc_counts((60, 60), 6, Some(((27, 27), 9)), 128);
        assert!(with_nest.contains(&1));
        assert!(with_nest.contains(&9));
        assert!(!with_nest.contains(&16), "nest rule caps the count");
        let without = allowed_proc_counts((60, 60), 6, None, 128);
        assert!(without.contains(&100));
        assert!(without.len() > with_nest.len());
    }

    #[test]
    fn paper_nest_grid_caps_cores() {
        // The paper's minimum nest is 100×127 with the 9×9 rule; the parent
        // at 24 km is ~270×230 with the 6×6 rule. The combination must
        // still admit the experiments' 48–90 core range.
        let counts = allowed_proc_counts(
            (270, 230),
            MIN_PARENT_POINTS_PER_RANK,
            Some(((100, 127), MIN_NEST_POINTS_PER_RANK)),
            128,
        );
        assert!(counts.contains(&48), "fire's 48 cores are legal");
        assert!(counts.contains(&90), "gg-blr's 90 cores are legal");
        assert!(counts.contains(&56), "moria's 56 cores are legal");
    }

    #[test]
    fn one_rank_is_always_legal_for_big_grids() {
        assert!(is_valid(10, 10, 1, 6));
        assert!(!is_valid(5, 10, 1, 6), "grid smaller than the minimum");
    }
}
