//! Persistent-rank physics engine: a long-lived worker team for the
//! integrator.
//!
//! The historical fast path ([`crate::par::step_spawning`]) spawned one OS
//! thread per band *per pass per step* — two spawn/join rounds every step,
//! plus a fresh `Fields::zeros` allocation. At WRF-like step times of a few
//! milliseconds, thread creation is a first-order cost and the reason the
//! seed profiling table showed *flat* scaling. This module replaces it with
//! the structure a real MPI dycore uses:
//!
//! - **One team, spawned once.** A [`WorkerPool`] owns `team − 1` parked
//!   OS threads; the caller's thread acts as the last team member. The
//!   team persists across steps, epochs, and (via [`WorkerPool::resize`])
//!   reconfigurations.
//! - **Jobs, not threads.** Each step publishes one type-erased job
//!   (raw pointers to the step inputs and the four output arrays) under a
//!   mutex + condvar, bumps an epoch counter, and wakes the team.
//! - **A reusable sense-reversing barrier** separates the fused
//!   continuity+tracer pass from the momentum pass (which reads the *new*
//!   eta), and a second crossing ends the step. No thread is created or
//!   destroyed anywhere on the hot path.
//!
//! # Safety model
//!
//! The job carries `*const StepInputs<'static>` (lifetime-erased) and
//! `*mut f64` output pointers. This is sound because [`WorkerPool::step`]
//! does not return until every team member has crossed the final barrier,
//! so all worker access to the borrowed inputs and outputs is strictly
//! contained within the call; the bands handed to the team are disjoint
//! row ranges of the outputs; and the barrier crossings give the necessary
//! happens-before edges (pass 1 writes of `eta` → pass 2 reads, all
//! writes → the caller's reads after return).
//!
//! # Parity
//!
//! Every band runs exactly the serial kernels *of the selected path*
//! ([`KernelPath`]) on its rows, so results are **bitwise identical** to
//! that path's serial reference for every team size: the scalar path
//! against `solver::step_serial`, the lanes path against the lane-ordered
//! serial reference (`solver::step_serial_lanes_into`), whose per-row
//! probe slots make even the finite probe's bits independent of the band
//! and tile decomposition. That property is load-bearing: the adaptive
//! layer changes the processor count mid-run and the restart logic replays
//! trajectories on different worker counts; parity makes both invisible to
//! the physics.
//!
//! Within a band, the lanes path sweeps in L2-sized row tiles
//! (`par::row_tiles`) — bit-neutral, since rows are independent
//! within a pass and tiles never split a row.
//!
//! # Sizing
//!
//! [`WorkerPool::new`] clamps the team to `std::thread::available_parallelism`
//! — oversubscribing cores can only add scheduling noise, and parity means
//! the clamp never changes results. Tests that must exercise real
//! multi-thread interleavings regardless of host size can use
//! [`WorkerPool::with_exact_team`].

use crate::fields::Fields;
use crate::geom::DomainGeom;
use crate::par::{band_ranges, row_tiles};
use crate::solver::{
    step_eta_q_rows, step_eta_q_rows_lanes, step_serial_into, step_serial_lanes_into, step_uv_rows,
    step_uv_rows_lanes, KernelPath, LaneScratch, PhysicsParams, StepInputs,
};
use crate::vortex::{VortexParams, VortexState};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A reusable sense-reversing barrier for a fixed party count.
///
/// `std::sync::Barrier` would also work, but the explicit sense-reversing
/// form keeps the protocol visible (it is the same algorithm WRF-class
/// codes use inside their OpenMP runtimes) and lets the party count be
/// checked against the team size at construction.
struct SenseBarrier {
    parties: usize,
    /// (arrived count, current sense).
    state: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl SenseBarrier {
    fn new(parties: usize) -> Self {
        assert!(parties >= 1);
        SenseBarrier {
            parties,
            state: Mutex::new((0, false)),
            cv: Condvar::new(),
        }
    }

    /// Block until all parties have arrived. Reusable immediately: the
    /// sense flips each generation, so a fast thread re-entering the next
    /// crossing cannot be confused with a slow thread still leaving the
    /// previous one.
    fn wait(&self) {
        let mut g = self.state.lock().expect("barrier lock");
        let sense = g.1;
        g.0 += 1;
        if g.0 == self.parties {
            g.0 = 0;
            g.1 = !sense;
            self.cv.notify_all();
        } else {
            while g.1 == sense {
                g = self.cv.wait(g).expect("barrier wait");
            }
        }
    }
}

/// One step's worth of work, type-erased for the parked team.
///
/// All pointers are owned by the `step` call that published the job and
/// outlive every worker access (see the module-level safety model).
#[derive(Clone, Copy)]
struct Job {
    inp: *const StepInputs<'static>,
    eta: *mut f64,
    u: *mut f64,
    v: *mut f64,
    q: *mut f64,
    /// One finite-probe slot per team member (scalar path).
    probes: *mut f64,
    /// One finite-probe slot per grid *row* (lanes path): members write the
    /// disjoint slots of their band, the caller reduces in ascending row
    /// order so the probe's bits are team-size-invariant.
    probe_rows: *mut f64,
    nx: usize,
    ny: usize,
    team: usize,
    path: KernelPath,
}

// Safety: the raw pointers are only dereferenced between the job's
// publication and the final barrier crossing of the same step, during
// which the owning `step` frame keeps all of them valid; band disjointness
// prevents data races (see module docs).
unsafe impl Send for Job {}

struct JobSlot {
    /// Incremented once per published job; workers run a job exactly once.
    epoch: u64,
    shutdown: bool,
    job: Option<Job>,
}

struct Shared {
    slot: Mutex<JobSlot>,
    start: Condvar,
    barrier: SenseBarrier,
}

/// Run this member's bands for one job: fused continuity+tracer pass,
/// barrier, momentum pass (reading the completed new eta), barrier.
///
/// `scratch` is the member's persistent lane scratch (unused on the
/// scalar path); keeping it on the worker avoids re-allocating the column
/// tables every step.
///
/// # Safety
/// Caller must guarantee the job's pointers are valid for the duration of
/// the call and that no other member uses the same `index`.
unsafe fn run_member(job: &Job, index: usize, barrier: &SenseBarrier, scratch: &mut LaneScratch) {
    let bands = band_ranges(job.ny, job.team);
    let inp: &StepInputs<'_> = &*job.inp;
    let mut probe = 0.0;

    if let Some(&(j0, j1)) = bands.get(index) {
        match job.path {
            KernelPath::Scalar => {
                let len = (j1 - j0) * job.nx;
                let off = j0 * job.nx;
                let eta = std::slice::from_raw_parts_mut(job.eta.add(off), len);
                let q = std::slice::from_raw_parts_mut(job.q.add(off), len);
                probe += step_eta_q_rows(inp, j0, j1, eta, q);
            }
            KernelPath::Lanes => {
                // Column tables once per step per member, then tile sweeps.
                scratch.prepare(inp);
                for (t0, t1) in row_tiles(j0, j1, job.nx) {
                    let len = (t1 - t0) * job.nx;
                    let off = t0 * job.nx;
                    let eta = std::slice::from_raw_parts_mut(job.eta.add(off), len);
                    let q = std::slice::from_raw_parts_mut(job.q.add(off), len);
                    let rows = std::slice::from_raw_parts_mut(job.probe_rows.add(t0), t1 - t0);
                    step_eta_q_rows_lanes(inp, scratch, t0, t1, eta, q, rows);
                }
            }
        }
    }
    barrier.wait();
    if let Some(&(j0, j1)) = bands.get(index) {
        // The new eta is complete and no longer written: shared read view.
        let eta_new = std::slice::from_raw_parts(job.eta as *const f64, job.nx * job.ny);
        match job.path {
            KernelPath::Scalar => {
                let len = (j1 - j0) * job.nx;
                let off = j0 * job.nx;
                let u = std::slice::from_raw_parts_mut(job.u.add(off), len);
                let v = std::slice::from_raw_parts_mut(job.v.add(off), len);
                probe += step_uv_rows(inp, eta_new, j0, j1, u, v);
            }
            KernelPath::Lanes => {
                for (t0, t1) in row_tiles(j0, j1, job.nx) {
                    let len = (t1 - t0) * job.nx;
                    let off = t0 * job.nx;
                    let u = std::slice::from_raw_parts_mut(job.u.add(off), len);
                    let v = std::slice::from_raw_parts_mut(job.v.add(off), len);
                    let rows = std::slice::from_raw_parts_mut(job.probe_rows.add(t0), t1 - t0);
                    step_uv_rows_lanes(inp, scratch, eta_new, t0, t1, u, v, rows);
                }
            }
        }
    }
    *job.probes.add(index) = probe;
    barrier.wait();
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    let mut seen = 0u64;
    let mut scratch = LaneScratch::default();
    loop {
        let job = {
            let mut g = shared.slot.lock().expect("job slot lock");
            loop {
                if g.shutdown {
                    return;
                }
                if g.epoch != seen {
                    seen = g.epoch;
                    break g.job.expect("epoch bumped with a job published");
                }
                g = shared.start.wait(g).expect("job slot wait");
            }
        };
        // Safety: the publishing `step` frame keeps the job's pointers
        // alive until after the final barrier, and `index` is unique.
        unsafe { run_member(&job, index, &shared.barrier, &mut scratch) };
    }
}

/// A persistent team of integrator ranks. See the module docs.
pub struct WorkerPool {
    /// Worker count the caller asked for (before the host-size clamp).
    requested: usize,
    /// Actual team size, including the caller's thread.
    team: usize,
    clamp: bool,
    /// Kernel implementation to run. Carried per job, so changing it never
    /// requires a team rebuild.
    path: KernelPath,
    /// `None` when `team == 1` (pure serial — no sync machinery at all).
    shared: Option<Arc<Shared>>,
    handles: Vec<JoinHandle<()>>,
    /// Per-member finite probes, reused across steps (scalar path).
    probes: Vec<f64>,
    /// Per-row finite probes, reused across steps (lanes path).
    probe_rows: Vec<f64>,
    /// The caller-thread member's lane scratch.
    caller_scratch: LaneScratch,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("requested", &self.requested)
            .field("team", &self.team)
            .field("path", &self.path)
            .finish()
    }
}

fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

impl WorkerPool {
    /// A pool of `workers` ranks, clamped to the host's available
    /// parallelism (oversubscription cannot help and parity makes the
    /// clamp semantically invisible). Runs the default kernel path.
    pub fn new(workers: usize) -> Self {
        Self::build(workers, true, KernelPath::default())
    }

    /// A clamped pool pinned to a specific kernel path (the profiling
    /// binary uses this to time scalar vs lanes on identical teams).
    pub fn with_kernel_path(workers: usize, path: KernelPath) -> Self {
        Self::build(workers, true, path)
    }

    /// A pool with exactly `workers` ranks, no host clamp — for tests
    /// that must exercise real multi-thread interleavings even on small
    /// hosts. Runs the default kernel path.
    pub fn with_exact_team(workers: usize) -> Self {
        Self::build(workers, false, KernelPath::default())
    }

    /// An unclamped pool pinned to a specific kernel path.
    pub fn with_exact_team_path(workers: usize, path: KernelPath) -> Self {
        Self::build(workers, false, path)
    }

    fn build(workers: usize, clamp: bool, path: KernelPath) -> Self {
        let requested = workers.max(1);
        let team = if clamp {
            requested.min(host_parallelism())
        } else {
            requested
        };
        let (shared, handles) = if team > 1 {
            let shared = Arc::new(Shared {
                slot: Mutex::new(JobSlot {
                    epoch: 0,
                    shutdown: false,
                    job: None,
                }),
                start: Condvar::new(),
                barrier: SenseBarrier::new(team),
            });
            let handles = (0..team - 1)
                .map(|index| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("wrf-rank-{index}"))
                        .spawn(move || worker_loop(shared, index))
                        .expect("spawn integrator rank")
                })
                .collect();
            (Some(shared), handles)
        } else {
            (None, Vec::new())
        };
        WorkerPool {
            requested,
            team,
            clamp,
            path,
            shared,
            handles,
            probes: vec![0.0; team],
            probe_rows: Vec::new(),
            caller_scratch: LaneScratch::default(),
        }
    }

    /// Worker count the caller asked for.
    pub fn workers(&self) -> usize {
        self.requested
    }

    /// Actual team size after the host clamp (includes the caller).
    pub fn team_size(&self) -> usize {
        self.team
    }

    /// The kernel path this pool runs.
    pub fn kernel_path(&self) -> KernelPath {
        self.path
    }

    /// Switch kernel paths. Takes effect on the next step; the team is
    /// untouched (the path rides in the published job).
    pub fn set_kernel_path(&mut self, path: KernelPath) {
        self.path = path;
    }

    /// Retarget the pool to `workers` ranks. A no-op when the effective
    /// team size is unchanged; otherwise the old team is shut down and a
    /// new one spawned (reconfiguration cost, never per-step cost).
    pub fn resize(&mut self, workers: usize) {
        let requested = workers.max(1);
        let team = if self.clamp {
            requested.min(host_parallelism())
        } else {
            requested
        };
        if team == self.team {
            self.requested = requested;
            return;
        }
        self.shutdown();
        *self = Self::build(requested, self.clamp, self.path);
    }

    fn shutdown(&mut self) {
        if let Some(shared) = &self.shared {
            {
                let mut g = shared.slot.lock().expect("job slot lock");
                g.shutdown = true;
            }
            shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            h.join().expect("integrator rank panicked");
        }
        self.shared = None;
    }

    /// Advance one integration step, writing the new state into `out`
    /// (reshaped if needed; a warm buffer makes the step allocation-free).
    /// Returns the finite probe — non-finite iff some written value was.
    ///
    /// Results are bitwise identical to the selected path's serial
    /// reference for every team size.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        old: &Fields,
        vortex: &VortexState,
        phys: &PhysicsParams,
        vparams: &VortexParams,
        geom: &DomainGeom,
        dt_secs: f64,
        out: &mut Fields,
    ) -> f64 {
        let inp = StepInputs {
            old,
            vortex,
            phys,
            vparams,
            geom,
            dt_secs,
        };
        if self.team <= 1 {
            return match self.path {
                KernelPath::Scalar => step_serial_into(&inp, out),
                KernelPath::Lanes => step_serial_lanes_into(
                    &inp,
                    &mut self.caller_scratch,
                    &mut self.probe_rows,
                    out,
                ),
            };
        }
        out.shape_like(old);
        let (nx, ny) = (old.nx(), old.ny());
        self.probes.fill(0.0);
        self.probe_rows.clear();
        self.probe_rows.resize(ny, 0.0);
        let job = Job {
            // Lifetime erasure only — the pointee lives on this frame and
            // outlives every use (see module docs).
            inp: (&inp as *const StepInputs<'_>).cast::<StepInputs<'static>>(),
            eta: out.eta.data_mut().as_mut_ptr(),
            u: out.u.data_mut().as_mut_ptr(),
            v: out.v.data_mut().as_mut_ptr(),
            q: out.q.data_mut().as_mut_ptr(),
            probes: self.probes.as_mut_ptr(),
            probe_rows: self.probe_rows.as_mut_ptr(),
            nx,
            ny,
            team: self.team,
            path: self.path,
        };
        let shared = self.shared.as_ref().expect("team > 1 has workers");
        {
            let mut g = shared.slot.lock().expect("job slot lock");
            g.epoch += 1;
            g.job = Some(job);
        }
        shared.start.notify_all();
        // The caller's thread is team member `team − 1`.
        // Safety: pointers in `job` stay valid for this whole call; the
        // final barrier inside guarantees every worker is done with them
        // before we continue.
        unsafe {
            run_member(
                &job,
                self.team - 1,
                &shared.barrier,
                &mut self.caller_scratch,
            )
        };
        // Workers are parked again (their epoch matches): clear the slot so
        // the raw pointers do not dangle past this frame.
        shared.slot.lock().expect("job slot lock").job = None;
        match self.path {
            KernelPath::Scalar => self.probes.iter().sum(),
            // Ascending-row reduction — identical bits to the serial lanes
            // reference at every team size.
            KernelPath::Lanes => self.probe_rows.iter().sum(),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::step_serial;

    fn setup() -> (Fields, VortexState, PhysicsParams, VortexParams, DomainGeom) {
        let geom = DomainGeom::bay_of_bengal();
        let phys = PhysicsParams::bay_of_bengal();
        let vparams = VortexParams::aila();
        let vortex = VortexState::genesis(&vparams, &geom);
        let mut fields = Fields::zeros(36, 30, 192.0);
        for j in 0..fields.ny() {
            for i in 0..fields.nx() {
                let (x, y) = (fields.x_km(i), fields.y_km(j));
                fields
                    .eta
                    .set(i, j, vortex.target_eta(x, y, &vparams) * 0.5);
                let (u, v) = vortex.target_uv(x, y, &vparams);
                fields.u.set(i, j, u * 0.5);
                fields.v.set(i, j, v * 0.5);
            }
        }
        (fields, vortex, phys, vparams, geom)
    }

    fn serial_reference(
        fields: &Fields,
        vortex: &VortexState,
        phys: &PhysicsParams,
        vparams: &VortexParams,
        geom: &DomainGeom,
        dt: f64,
    ) -> Fields {
        step_serial(&StepInputs {
            old: fields,
            vortex,
            phys,
            vparams,
            geom,
            dt_secs: dt,
        })
    }

    fn lanes_reference(
        fields: &Fields,
        vortex: &VortexState,
        phys: &PhysicsParams,
        vparams: &VortexParams,
        geom: &DomainGeom,
        dt: f64,
    ) -> (Fields, f64) {
        let inp = StepInputs {
            old: fields,
            vortex,
            phys,
            vparams,
            geom,
            dt_secs: dt,
        };
        let mut out = Fields::zeros(fields.nx(), fields.ny(), fields.dx_km);
        let mut scratch = LaneScratch::default();
        let mut rows = Vec::new();
        let probe = step_serial_lanes_into(&inp, &mut scratch, &mut rows, &mut out);
        (out, probe)
    }

    #[test]
    fn pooled_step_matches_serial_bitwise_for_all_team_sizes() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let (serial, serial_probe) = lanes_reference(&fields, &vortex, &phys, &vparams, &geom, dt);
        for team in [1usize, 2, 3, 4, 7, 8] {
            let mut pool = WorkerPool::with_exact_team(team);
            assert_eq!(pool.kernel_path(), KernelPath::Lanes);
            let mut out = Fields::zeros(1, 1, 1.0);
            let probe = pool.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
            assert_eq!(serial, out, "team = {team}");
            // The lanes probe is part of the parity contract: identical
            // *bits*, not merely finite, at every team size.
            assert_eq!(probe.to_bits(), serial_probe.to_bits(), "team = {team}");
        }
    }

    /// Regression: a scalar-path pool still matches the original serial
    /// kernels byte for byte at every team size.
    #[test]
    fn scalar_pool_still_matches_original_serial() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let serial = serial_reference(&fields, &vortex, &phys, &vparams, &geom, dt);
        for team in [1usize, 2, 3, 5, 8] {
            let mut pool = WorkerPool::with_exact_team_path(team, KernelPath::Scalar);
            let mut out = Fields::zeros(1, 1, 1.0);
            let probe = pool.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
            assert_eq!(serial, out, "team = {team}");
            assert!(probe.is_finite());
        }
    }

    /// Switching paths on a live pool takes effect immediately and each
    /// path keeps matching its own reference.
    #[test]
    fn set_kernel_path_switches_references() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let scalar = serial_reference(&fields, &vortex, &phys, &vparams, &geom, dt);
        let (lanes, _) = lanes_reference(&fields, &vortex, &phys, &vparams, &geom, dt);
        let mut pool = WorkerPool::with_exact_team(3);
        let mut out = Fields::zeros(1, 1, 1.0);
        pool.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
        assert_eq!(lanes, out);
        pool.set_kernel_path(KernelPath::Scalar);
        pool.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
        assert_eq!(scalar, out);
        pool.set_kernel_path(KernelPath::Lanes);
        pool.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
        assert_eq!(lanes, out);
    }

    #[test]
    fn pool_is_reusable_across_steps_and_grids() {
        let (mut fields, vortex, phys, vparams, geom) = setup();
        let mut pool = WorkerPool::with_exact_team(3);
        let mut out = Fields::zeros(1, 1, 1.0);
        for _ in 0..5 {
            let dt = 6.0 * fields.dx_km;
            let (serial, _) = lanes_reference(&fields, &vortex, &phys, &vparams, &geom, dt);
            pool.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
            assert_eq!(serial, out);
            std::mem::swap(&mut fields, &mut out);
        }
        // Same pool, different grid shape: `out` reshapes in place.
        let smaller = fields.resample(20, 17, 320.0);
        let dt = 6.0 * smaller.dx_km;
        let (serial, _) = lanes_reference(&smaller, &vortex, &phys, &vparams, &geom, dt);
        pool.step(&smaller, &vortex, &phys, &vparams, &geom, dt, &mut out);
        assert_eq!(serial, out);
    }

    #[test]
    fn resize_changes_team_and_preserves_results() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let (serial, serial_probe) = lanes_reference(&fields, &vortex, &phys, &vparams, &geom, dt);
        let mut pool = WorkerPool::with_exact_team(2);
        let mut out = Fields::zeros(1, 1, 1.0);
        for team in [4usize, 1, 3, 2] {
            pool.resize(team);
            assert_eq!(pool.team_size(), team);
            assert_eq!(pool.kernel_path(), KernelPath::Lanes, "resize keeps path");
            let probe = pool.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
            assert_eq!(serial, out, "after resize to {team}");
            assert_eq!(probe.to_bits(), serial_probe.to_bits());
        }
    }

    #[test]
    fn resize_to_same_size_is_a_noop() {
        let mut pool = WorkerPool::with_exact_team(2);
        pool.resize(2);
        assert_eq!(pool.team_size(), 2);
        assert_eq!(pool.workers(), 2);
    }

    #[test]
    fn new_clamps_to_host_parallelism() {
        let pool = WorkerPool::new(4096);
        assert_eq!(pool.workers(), 4096);
        assert!(pool.team_size() <= host_parallelism());
    }

    #[test]
    fn more_ranks_than_rows_is_fine() {
        let (fields, vortex, phys, vparams, geom) = setup();
        let dt = 6.0 * fields.dx_km;
        let (serial, _) = lanes_reference(&fields, &vortex, &phys, &vparams, &geom, dt);
        // team > ny: trailing members idle at the barriers.
        let mut pool = WorkerPool::with_exact_team(40);
        let mut out = Fields::zeros(1, 1, 1.0);
        pool.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
        assert_eq!(serial, out);
    }

    #[test]
    fn probe_detects_blowup_without_field_scan() {
        let (mut fields, vortex, phys, vparams, geom) = setup();
        fields.u.set(7, 9, f64::NAN);
        let dt = 6.0 * fields.dx_km;
        let mut pool = WorkerPool::with_exact_team(3);
        let mut out = Fields::zeros(1, 1, 1.0);
        let probe = pool.step(&fields, &vortex, &phys, &vparams, &geom, dt, &mut out);
        assert!(!probe.is_finite());
    }

    #[test]
    fn sense_barrier_reusable_many_generations() {
        let barrier = Arc::new(SenseBarrier::new(3));
        let counter = Arc::new(Mutex::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let barrier = Arc::clone(&barrier);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    *counter.lock().unwrap() += 1;
                    barrier.wait();
                    barrier.wait();
                }
            }));
        }
        for gen in 1..=50 {
            barrier.wait();
            // Between the two crossings all increments of this generation
            // are visible and no thread has started the next one.
            assert_eq!(*counter.lock().unwrap(), 2 * gen);
            barrier.wait();
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
